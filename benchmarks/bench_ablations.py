"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not in the paper's evaluation, but each sweep isolates one design decision:

* index fanout k (the paper fixes k=64) — query cost vs ingest cost trade-off,
* compression codec for chunk payloads (zlib default vs delta variants),
* AEAD choice for chunk payloads (AES-GCM native, AES-GCM pure-Python,
  ChaCha20-Poly1305),
* index-cache size (the Fig. 7c small-cache effect in isolation).
"""

from __future__ import annotations

import pytest

from repro.crypto.chacha import chacha_decrypt, chacha_encrypt
from repro.crypto.gcm import aead_decrypt, aead_encrypt
from repro.index.cache import NodeCache
from repro.index.node import plaintext_combiner
from repro.index.tree import AggregationIndex
from repro.storage.memory import MemoryStore
from repro.timeseries.compression import get_codec
from repro.timeseries.point import DataPoint
from repro.util.encoding import pack_varint_list, unpack_varint_list

from conftest import scaled

PAYLOAD_POINTS = [DataPoint(timestamp=20 * i, value=500 + (i % 37)) for i in range(500)]
PAYLOAD_BYTES = get_codec("zlib").compress(PAYLOAD_POINTS)


def _encode(cells):
    return pack_varint_list(cells)


def _decode(blob):
    values, _ = unpack_varint_list(blob, 0)
    return values


def _build_index(fanout: int, num_windows: int, cache_bytes: int = 64 * 1024 * 1024):
    index = AggregationIndex(
        stream_uuid="ablation",
        store=MemoryStore(),
        combiner=plaintext_combiner(),
        encode_cells=_encode,
        decode_cells=_decode,
        fanout=fanout,
        cache=NodeCache(capacity_bytes=cache_bytes),
        max_windows=1 << 30,
    )
    for window in range(num_windows):
        index.append([window % 100, 1])
    return index


# --- fanout sweep -----------------------------------------------------------------


@pytest.mark.parametrize("fanout", [2, 8, 64, 256])
def test_ablation_fanout_query(benchmark, fanout):
    benchmark.group = "ablation-fanout-query"
    num_windows = scaled(2048)
    index = _build_index(fanout, num_windows)
    benchmark(lambda: index.query_range(1, num_windows - 1))


@pytest.mark.parametrize("fanout", [2, 8, 64, 256])
def test_ablation_fanout_ingest(benchmark, fanout):
    benchmark.group = "ablation-fanout-ingest"
    index = _build_index(fanout, scaled(256))
    benchmark(lambda: index.append([7, 1]))


# --- compression codec sweep -------------------------------------------------------


@pytest.mark.parametrize("codec_name", ["none", "zlib", "delta", "delta-zlib"])
def test_ablation_codec_compress(benchmark, codec_name):
    benchmark.group = "ablation-codec"
    codec = get_codec(codec_name)
    benchmark(lambda: codec.compress(PAYLOAD_POINTS))


@pytest.mark.parametrize("codec_name", ["none", "zlib", "delta", "delta-zlib"])
def test_ablation_codec_ratio(codec_name):
    from repro.timeseries.compression import compression_ratio

    ratio = compression_ratio(PAYLOAD_POINTS, codec_name)
    assert ratio >= 0.9  # no codec may blow the payload up


# --- AEAD choice -------------------------------------------------------------------


def test_ablation_aead_aesgcm_native(benchmark):
    benchmark.group = "ablation-aead"
    key = b"k" * 16
    blob = aead_encrypt(key, PAYLOAD_BYTES)
    benchmark(lambda: aead_decrypt(key, blob))


def test_ablation_aead_aesgcm_pure_python(benchmark):
    benchmark.group = "ablation-aead"
    key = b"k" * 16
    blob = aead_encrypt(key, PAYLOAD_BYTES, force_pure_python=True)
    benchmark.pedantic(
        lambda: aead_decrypt(key, blob, force_pure_python=True), rounds=3, iterations=1
    )


def test_ablation_aead_chacha20poly1305(benchmark):
    benchmark.group = "ablation-aead"
    key = b"k" * 32
    blob = chacha_encrypt(key, PAYLOAD_BYTES)
    benchmark.pedantic(lambda: chacha_decrypt(key, blob), rounds=3, iterations=1)


# --- cache size sweep -----------------------------------------------------------------


@pytest.mark.parametrize("cache_kib", [1, 64, 4096])
def test_ablation_cache_size(benchmark, cache_kib):
    benchmark.group = "ablation-cache"
    num_windows = scaled(2048)
    index = _build_index(64, num_windows, cache_bytes=cache_kib * 1024)
    benchmark(lambda: index.query_range(1, num_windows - 1))
