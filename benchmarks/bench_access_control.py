"""§6.2 — crypto-enforced access control: TimeCrypt vs the ABE baseline.

Paper: granting chunk-level access with ABE (Sieve-style) costs ~53 ms per
chunk to protect and ~13 ms per chunk to decrypt (80-bit security, one
attribute), while TimeCrypt derives a key from a 2^30-key tree in ~2.5 µs,
walks the dual key regression in ~2.7 ms worst case, and decrypts with one
addition and one subtraction (~2 ns).

The ABE figures here come from the calibrated cost model documented in
DESIGN.md §3 (real pairings are out of scope offline); the functional
attribute-gated layer is measured separately so both the modelled and the
measured values are visible in the report.
"""

from __future__ import annotations

from repro.crypto.abe import ABEAuthority, ABEPrincipal, wrap_chunk_key
from repro.crypto.heac import HEACCipher
from repro.crypto.keyregression import DualKeyRegression
from repro.crypto.keytree import KeyDerivationTree


def test_timecrypt_key_derivation(benchmark):
    """Deriving one chunk key from a 2^30-key tree (log2(n) PRG calls, cold cache)."""
    benchmark.group = "access-key-derivation"
    tree = KeyDerivationTree(seed=b"a" * 16, height=30, cache_levels=0)
    benchmark(lambda: tree.leaf((1 << 30) - 1))


def test_timecrypt_dual_key_regression_worst_case(benchmark):
    """Worst-case dual-key-regression walk for a resolution keystream."""
    benchmark.group = "access-key-derivation"
    regression = DualKeyRegression(length=4096)
    token = regression.share(0, 4095)
    benchmark(lambda: DualKeyRegression.derive_from_token(token, 2048))


def test_timecrypt_decrypt(benchmark):
    """TimeCrypt chunk decryption: one addition and one subtraction."""
    benchmark.group = "access-decrypt"
    cipher = HEACCipher(KeyDerivationTree(seed=b"a" * 16, height=30))
    ciphertext = cipher.encrypt(5, 0)
    benchmark(lambda: cipher.decrypt(ciphertext))


def test_abe_functional_layer_unwrap(benchmark):
    """The measured (functional) cost of the ABE stand-in's per-chunk unwrap."""
    benchmark.group = "access-decrypt"
    authority = ABEAuthority(master_secret=b"m" * 16)
    principal = ABEPrincipal("doc")
    principal.add_key(authority.issue_key("doc", 0, 1 << 20))
    wrappings = wrap_chunk_key(authority, 12345, [(0, 1 << 20)])
    benchmark(lambda: principal.unwrap(wrappings, 12345))


def test_abe_modelled_costs_vs_timecrypt():
    """The §6.2 comparison using the calibrated ABE pairing cost model."""
    from repro.bench.harness import measure

    authority = ABEAuthority(master_secret=b"m" * 16)
    num_chunks = 100
    for chunk in range(num_chunks):
        authority.chunk_kek(chunk)  # charges the modelled encrypt cost

    principal = ABEPrincipal("doc")
    principal.add_key(authority.issue_key("doc", 0, num_chunks))
    wrappings = {chunk: wrap_chunk_key(authority, chunk, [(0, num_chunks)]) for chunk in range(num_chunks)}
    for chunk in range(num_chunks):
        principal.unwrap(wrappings[chunk], chunk)

    abe_decrypt_per_chunk = principal.cost_model.modelled_decrypt_seconds / num_chunks
    abe_encrypt_per_chunk = authority.cost_model.modelled_encrypt_seconds / num_chunks

    tree = KeyDerivationTree(seed=b"a" * 16, height=30, cache_levels=0)
    cipher = HEACCipher(tree)
    timecrypt_derivation = measure(
        "tc-derive", lambda: tree.leaf((1 << 30) - 1), repetitions=200
    ).mean_seconds
    ciphertext = cipher.encrypt(5, 0)
    timecrypt_decrypt = measure("tc-dec", lambda: cipher.decrypt(ciphertext), repetitions=200).mean_seconds

    # Paper shape: ABE is orders of magnitude more expensive per chunk.
    assert abe_encrypt_per_chunk == 0.053
    assert abe_decrypt_per_chunk == 0.013
    assert abe_decrypt_per_chunk > 100 * timecrypt_decrypt
    assert abe_encrypt_per_chunk > 100 * timecrypt_derivation
