"""Batched GGM keystream derivation and bulk-ingest throughput.

Tracks the two hot-path claims of the batch fast path introduced with
``leaf_range`` / ``encrypt_windows`` / ``append_many``:

1. **Key derivation** — deriving 2^14 sequential keystream keys from a
   height-30 tree via ``KeyDerivationTree.leaf_range`` must be ≥ 5× faster
   than the per-leaf loop (the per-leaf walk costs O(height) PRG calls per
   key; the subtree cover amortizes to ~1).
2. **Bulk ingest** — end-to-end ``TimeCrypt.insert_records`` (batch
   encryption + ``ServerEngine.insert_chunks`` + ``append_many``) must give
   ≥ 2× the ingest throughput of the per-record scalar pipeline.

Run as a script to print the tables and refresh the ``BENCH_batch.json``
baseline (merged via :func:`repro.bench.reporting.merge_json_report`, which
the Fig. 7 batch-size sweep shares):

    PYTHONPATH=src python benchmarks/bench_batch_derivation.py

Quick mode for CI-style trend tracking: ``BENCH_SCALE=0.05`` shrinks the
ingest workload (the derivation workload is pinned at 2^14 keys so the
headline ratio stays comparable across runs), and ``--smoke`` shrinks both
for CI smoke jobs whose only goal is a valid baseline file.  The assertions
also run under plain pytest: ``pytest benchmarks/bench_batch_derivation.py``.
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path

from repro import ServerEngine, TimeCrypt
from repro.bench.harness import measure
from repro.bench.reporting import ResultTable, format_duration, merge_json_report
from repro.crypto.keytree import KeyDerivationTree
from repro.crypto.prf import DEFAULT_PRG, available_prgs
from repro.timeseries.stream import StreamConfig

from conftest import scaled

#: The acceptance workload: 2^14 sequential keys from a height-30 tree.
NUM_KEYS = 1 << 14
TREE_HEIGHT = 30

#: Bulk-ingest workload: small chunks so per-chunk overhead dominates,
#: mirroring high-rate ingest with short windows.
INGEST_CHUNKS = scaled(1024, minimum=64)
POINTS_PER_CHUNK = 4
CHUNK_INTERVAL_MS = 1_000

_DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batch.json"


def measure_derivation(prg: str = DEFAULT_PRG, num_keys: int = NUM_KEYS):
    """(scalar, batch) measurements for deriving ``num_keys`` sequential keys."""
    seed = b"b" * 16
    scalar_tree = KeyDerivationTree(seed=seed, height=TREE_HEIGHT, prg=prg)
    batch_tree = KeyDerivationTree(seed=seed, height=TREE_HEIGHT, prg=prg)
    scalar = measure(
        f"{prg}-scalar", lambda: list(scalar_tree.keys(0, num_keys)), repetitions=3, warmup=1
    )
    batch = measure(
        f"{prg}-batch", lambda: batch_tree.leaf_range(0, num_keys), repetitions=3, warmup=1
    )
    return scalar, batch


def _ingest_records(num_chunks: int = None):
    step = CHUNK_INTERVAL_MS // POINTS_PER_CHUNK
    total = (num_chunks if num_chunks is not None else INGEST_CHUNKS) * CHUNK_INTERVAL_MS
    return [(t, float((t // step) % 100)) for t in range(0, total, step)]


def _ingest_stack(batch: bool):
    server = ServerEngine()
    owner = TimeCrypt(server=server, owner_id="bench")
    config = StreamConfig(chunk_interval=CHUNK_INTERVAL_MS, key_tree_height=TREE_HEIGHT)
    uuid = owner.create_stream(metric="batch-bench", config=config)
    if not batch:
        # The scalar baseline: per-chunk delivery and per-chunk index appends.
        owner._streams[uuid].writer.batch_sink = None
    return owner, uuid


def measure_ingest(rounds: int = 3, num_chunks: int = None):
    """Best-of-``rounds`` wall-clock seconds for (scalar, batch) bulk ingest."""
    records = _ingest_records(num_chunks)
    scalar_best = float("inf")
    batch_best = float("inf")
    for _ in range(rounds):
        owner, uuid = _ingest_stack(batch=False)
        begin = time.perf_counter()
        for timestamp, value in records:
            owner.insert_record(uuid, timestamp, value)
        owner.flush(uuid)
        scalar_best = min(scalar_best, time.perf_counter() - begin)

        owner, uuid = _ingest_stack(batch=True)
        begin = time.perf_counter()
        owner.insert_records(uuid, records)
        owner.flush(uuid)
        batch_best = min(batch_best, time.perf_counter() - begin)
    return scalar_best, batch_best, len(records)


# ---------------------------------------------------------------------------
# Assertions (collected by pytest, reused by the script)
# ---------------------------------------------------------------------------


def test_leaf_range_speedup():
    """leaf_range derives 2^14 sequential keys ≥ 5× faster than the per-leaf loop."""
    scalar, batch = measure_derivation()
    speedup = scalar.mean_seconds / batch.mean_seconds
    assert speedup >= 5.0, (
        f"leaf_range speedup {speedup:.1f}x below the 5x target "
        f"(scalar {scalar.mean_seconds:.3f}s, batch {batch.mean_seconds:.3f}s)"
    )


def test_batch_ingest_speedup():
    """Bulk insert_records ingests ≥ 2× faster than the per-record pipeline."""
    scalar_s, batch_s, _num_records = measure_ingest()
    speedup = scalar_s / batch_s
    assert speedup >= 2.0, (
        f"bulk-ingest speedup {speedup:.1f}x below the 2x target "
        f"(scalar {scalar_s:.3f}s, batch {batch_s:.3f}s)"
    )


def test_batch_ingest_equals_scalar_results():
    """Sanity: both pipelines must answer queries identically (same plaintext data)."""
    records = _ingest_records()[: 16 * POINTS_PER_CHUNK]
    answers = []
    for batch in (False, True):
        owner, uuid = _ingest_stack(batch=batch)
        if batch:
            owner.insert_records(uuid, records)
        else:
            for timestamp, value in records:
                owner.insert_record(uuid, timestamp, value)
        owner.flush(uuid)
        answers.append(
            owner.get_stat_range(uuid, 0, records[-1][0] + 1, operators=("sum", "count", "mean"))
        )
    assert answers[0] == answers[1]


# ---------------------------------------------------------------------------
# Script entry point: tables + BENCH_batch.json baseline
# ---------------------------------------------------------------------------


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description="Batched GGM derivation + bulk ingest baseline")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced-iteration CI mode: fewer keys/chunks, default PRG only",
    )
    args = parser.parse_args(argv)
    num_keys = 1 << 10 if args.smoke else NUM_KEYS
    num_chunks = 64 if args.smoke else INGEST_CHUNKS
    results = {"smoke": args.smoke}

    table = ResultTable(
        title=f"Batched key derivation — {num_keys} sequential keys, height {TREE_HEIGHT}",
        columns=["prg", "scalar total", "batch total", "per-key (batch)", "speedup"],
    )
    derivation_results = {}
    for prg in available_prgs():
        if prg == "aes":  # pure-python AES: minutes per run, not informative here
            continue
        if args.smoke and prg != DEFAULT_PRG:
            continue
        scalar, batch = measure_derivation(prg, num_keys=num_keys)
        speedup = scalar.mean_seconds / batch.mean_seconds
        derivation_results[prg] = {
            "num_keys": num_keys,
            "tree_height": TREE_HEIGHT,
            "scalar_seconds": scalar.mean_seconds,
            "batch_seconds": batch.mean_seconds,
            "speedup": round(speedup, 2),
        }
        table.add_row(
            prg,
            format_duration(scalar.mean_seconds),
            format_duration(batch.mean_seconds),
            format_duration(batch.mean_seconds / num_keys),
            f"{speedup:.1f}x",
        )
    table.add_note("target: >= 5x for the default PRG")
    table.print()
    results["leaf_range_derivation"] = derivation_results

    scalar_s, batch_s, num_records = measure_ingest(num_chunks=num_chunks)
    speedup = scalar_s / batch_s
    ingest_table = ResultTable(
        title=f"Bulk ingest — {num_chunks} chunks x {POINTS_PER_CHUNK} points, height {TREE_HEIGHT}",
        columns=["path", "total", "records/s", "speedup"],
    )
    ingest_table.add_row("per-record (scalar)", format_duration(scalar_s), f"{num_records / scalar_s:,.0f}", "1.0x")
    ingest_table.add_row("insert_records (batch)", format_duration(batch_s), f"{num_records / batch_s:,.0f}", f"{speedup:.1f}x")
    ingest_table.add_note("target: >= 2x via encrypt_chunks + insert_chunks + append_many")
    ingest_table.print()
    results["bulk_ingest"] = {
        "chunks": num_chunks,
        "points_per_chunk": POINTS_PER_CHUNK,
        "records": num_records,
        "scalar_seconds": scalar_s,
        "batch_seconds": batch_s,
        "scalar_records_per_s": round(num_records / scalar_s, 1),
        "batch_records_per_s": round(num_records / batch_s, 1),
        "speedup": round(speedup, 2),
    }

    output = os.environ.get("BENCH_OUTPUT", str(_DEFAULT_OUTPUT))
    print(f"baseline written to {merge_json_report(output, results)}")


if __name__ == "__main__":
    main()
