"""§6.3 — DevOps (data-center CPU monitoring) end-to-end performance.

Paper: with the TSBS-style CPU workload (10 metrics, 100 hosts, 10 s data
rate, one-minute chunks of 6 records) the plaintext setting reaches 60.6k
records/s ingest and 40.4k ops/s queries, and TimeCrypt matches it with only
a 0.75 % slowdown; queries ask for average CPU utilisation and the fraction
of machines above 50 % utilisation over up to 16 h windows.

The scaled-down run replays a few hosts' streams through TimeCrypt and the
plaintext baseline and issues the same two query shapes (mean utilisation,
histogram bin counts above the 50 % boundary).
"""

from __future__ import annotations


from repro import ServerEngine, TimeCrypt
from repro.core.plaintext import PlaintextTimeSeriesStore
from repro.workloads.devops import DevOpsWorkload
from repro.workloads.generator import LoadGenerator

from conftest import scaled

NUM_HOSTS = scaled(4)
DURATION_SECONDS = scaled(3600)
CHUNK_INTERVAL_MS = 60_000


def _records():
    workload = DevOpsWorkload(num_hosts=max(NUM_HOSTS, 1), seed=23)
    return {f"host-{host}": list(workload.records(host, DURATION_SECONDS)) for host in range(NUM_HOSTS)}


class _RenamingStore:
    def __init__(self, store, mapping):
        self._store = store
        self._mapping = mapping

    def insert_record(self, uuid, timestamp, value):
        self._store.insert_record(self._mapping[uuid], timestamp, value)

    def flush(self, uuid):
        self._store.flush(self._mapping[uuid])

    def get_stat_range(self, uuid, start, end, operators=("mean", "freq")):
        return self._store.get_stat_range(self._mapping[uuid], start, end, operators=operators)


def _build(store_cls):
    config = DevOpsWorkload.stream_config(CHUNK_INTERVAL_MS)
    if store_cls is TimeCrypt:
        store = TimeCrypt(server=ServerEngine(), owner_id="ops")
    else:
        store = PlaintextTimeSeriesStore()
    mapping = {f"host-{host}": store.create_stream(metric="cpu", config=config) for host in range(NUM_HOSTS)}
    return store, mapping


def _run(store, mapping, label):
    generator = LoadGenerator(
        store=_RenamingStore(store, mapping),
        stream_records=_records(),
        read_write_ratio=4,
        chunk_interval=CHUNK_INTERVAL_MS,
        query_operators=("mean", "freq"),
    )
    return generator.run(label=label)


def test_devops_timecrypt(benchmark):
    benchmark.group = "devops-e2e"
    store, mapping = _build(TimeCrypt)
    report = benchmark.pedantic(lambda: _run(store, mapping, "timecrypt"), rounds=1, iterations=1)
    assert report.records_written == NUM_HOSTS * DURATION_SECONDS // 10


def test_devops_plaintext(benchmark):
    benchmark.group = "devops-e2e"
    store, mapping = _build(PlaintextTimeSeriesStore)
    report = benchmark.pedantic(lambda: _run(store, mapping, "plaintext"), rounds=1, iterations=1)
    assert report.records_written == NUM_HOSTS * DURATION_SECONDS // 10


def test_devops_query_semantics():
    """The two paper queries: average utilisation and share of hosts above 50 %."""
    store, mapping = _build(TimeCrypt)
    _run(store, mapping, "warm-up")
    end_time = DURATION_SECONDS * 1000
    above_50 = 0
    total = 0
    for uuid in mapping.values():
        stats = store.get_stat_range(uuid, 0, end_time, operators=("mean", "freq", "count"))
        assert 0.0 <= stats["mean"] <= 100.0
        bins = stats["freq"]
        # Histogram boundaries are (25, 50, 75) in fixed-point (2500/5000/7500):
        # bins[2] + bins[3] count samples at or above 50 % utilisation.
        above_50 += bins[2] + bins[3]
        total += stats["count"]
    assert 0 <= above_50 <= total
