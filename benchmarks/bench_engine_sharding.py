"""Horizontal engine sharding: aggregate throughput vs. engine count.

PR 6 put N ``ServerEngine`` processes behind a consistent-hash stream
router.  Each engine serialises its work behind one dispatch lock, so a
single engine's throughput is capped by the sum of per-request service
times — including every storage round trip it waits on.  Sharding buys
throughput by *overlapping* those waits across engines.  Two claims are
measured over real TCP sockets (loopback, in-process servers):

1. **Aggregate throughput** — the same mirrored workload (ingest batches,
   then a mixed read phase) is replayed against 1, 2, and 4 sharded
   engines through a routing-aware :class:`ShardedServerClient`.  With a
   storage tier that charges a realistic per-round-trip latency, 4 engines
   must sustain ≥ 2× the single-engine aggregate ingest rate.
2. **Scan offload** — ``delete_stream`` against a remote storage node
   costs a constant number of wire round trips through the
   ``kv_delete_prefix`` offload, independent of how many chunks the
   stream accumulated; the legacy page-the-keyspace-through-the-engine
   path grows with keyspace size.

The storage model: engines talk to a remote storage tier, so every bulk
storage operation costs a wire round trip (single-digit milliseconds).
``_LatencyStore`` charges that latency with a plain ``time.sleep`` — which
releases the GIL, exactly like a real socket wait — so on a single CPU
the measured speedup comes from engines overlapping storage waits, not
from phantom parallelism the host cannot deliver.

Run as a script to print the tables and refresh ``BENCH_sharding.json``:

    PYTHONPATH=src python benchmarks/bench_engine_sharding.py

``--smoke`` shrinks the workload for CI smoke jobs; ``BENCH_SCALE``
scales the full run.  The assertions also run under plain pytest:
``pytest benchmarks/bench_engine_sharding.py``.
"""

from __future__ import annotations

import argparse
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import ServerEngine, StreamConfig, TimeCrypt
from repro.access.keystore import TokenStore
from repro.bench.reporting import ResultTable, format_duration, write_json_report
from repro.net.client import ShardedServerClient
from repro.net.messages import ShardRoutingTable
from repro.server.router import deploy_sharded_engines
from repro.storage.memory import MemoryStore
from repro.storage.node import StorageNodeServer
from repro.storage.remote import RemoteKeyValueStore
from repro.util.timeutil import TimeRange

from conftest import scaled

#: Modelled storage-tier round-trip time charged per bulk storage op.
STORAGE_RTT_S = 0.010

#: Streams per shard at the widest deployment (4 engines x 2 = 8 streams).
STREAMS_PER_SHARD = 2
CHUNKS_PER_STREAM = scaled(64, minimum=16)
CHUNKS_PER_BATCH = 8
CHUNK_INTERVAL_MS = 1_000
POINTS_PER_CHUNK = 4
QUERY_ROUNDS = scaled(4, minimum=2)
ENGINE_COUNTS = (1, 2, 4)

#: delete_stream round-trip probe: a small and a 12x larger keyspace.
DELETE_SIZES = (2, 24)
LEGACY_SCAN_PAGE = 8

_DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sharding.json"


class _LatencyStore(MemoryStore):
    """A MemoryStore that charges one storage-tier round trip per bulk op.

    The sleep happens *before* the in-memory work and outside the store's
    internal lock, so concurrent engines overlap their waits — the same
    behaviour a real :class:`RemoteKeyValueStore` has while blocked on a
    socket.  Scalar ops stay free: the engine's hot paths are batched, and
    charging ``contains``/``get`` would just tax untimed setup.
    """

    def multi_get(self, keys):
        time.sleep(STORAGE_RTT_S)
        return super().multi_get(keys)

    def multi_put(self, items):
        time.sleep(STORAGE_RTT_S)
        return super().multi_put(items)

    def multi_delete(self, keys):
        time.sleep(STORAGE_RTT_S)
        return super().multi_delete(keys)

    def delete_prefixes(self, prefixes):
        time.sleep(STORAGE_RTT_S)
        return super().delete_prefixes(prefixes)


def _records(num_chunks: int) -> List[Tuple[int, float]]:
    step = CHUNK_INTERVAL_MS // POINTS_PER_CHUNK
    return [(t, float((t // step) % 100)) for t in range(0, num_chunks * CHUNK_INTERVAL_MS, step)]


def _encrypted_streams(num_streams: int, num_chunks: int):
    """Encrypt streams once with a scratch engine; replay the bytes everywhere.

    Every engine count sees the identical ciphertext workload, so the
    throughput comparison isolates the engine tier.
    """
    server = ServerEngine()
    owner = TimeCrypt(server=server, owner_id="bench")
    streams = []
    for index in range(num_streams):
        config = StreamConfig(chunk_interval=CHUNK_INTERVAL_MS, index_fanout=4)
        uuid = owner.create_stream(metric=f"shard-bench-{index}", config=config)
        owner.insert_records(uuid, _records(num_chunks))
        owner.flush(uuid)
        chunks = [server.get_chunk(uuid, position) for position in range(num_chunks)]
        streams.append((server.stream_metadata(uuid), chunks))
    return streams


def _balanced_streams(per_shard: int, num_chunks: int, shard_names: List[str]):
    """Exactly ``per_shard`` streams per named shard, encrypted once.

    Ownership depends only on the uuid and the shard *names*, so placement
    can be checked against a dummy table before any server exists.  The
    bench measures engine-tier scaling under an even key distribution —
    the steady state consistent hashing converges to over many streams —
    so a skewed draw of a handful of random uuids shouldn't decide the
    result: keep drawing streams until every shard owns ``per_shard``.
    """
    probe = ShardRoutingTable([(name, "127.0.0.1", 1) for name in shard_names], epoch=1)
    buckets: Dict[str, List] = {name: [] for name in shard_names}
    for _attempt in range(64 * per_shard * len(shard_names)):
        if all(len(bucket) >= per_shard for bucket in buckets.values()):
            return [stream for name in shard_names for stream in buckets[name][:per_shard]]
        (stream,) = _encrypted_streams(1, num_chunks)
        buckets[probe.owner_of(stream[0].uuid)].append(stream)
    raise AssertionError("could not draw a balanced stream set across shards")


def _run_threads(workers) -> None:
    errors: List[BaseException] = []

    def _guard(fn):
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            errors.append(exc)

    threads = [threading.Thread(target=_guard, args=(fn,)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def _run_sharded_workload(num_engines: int, streams, query_rounds: int) -> Dict[str, float]:
    """Replay the workload against ``num_engines`` sharded engines.

    One writer thread per stream drives ingest through a shared
    routing-aware client (concurrent in-flight requests are the client's
    job); the read phase mixes raw range reads and statistical queries.
    """
    shared = _LatencyStore()
    engines = {
        f"engine-{index}": ServerEngine(store=shared, token_store=TokenStore(store=shared))
        for index in range(num_engines)
    }
    router, shards = deploy_sharded_engines(engines)
    try:
        host, port = router.address
        with ShardedServerClient(host, port, timeout=30.0) as client:
            for metadata, _chunks in streams:
                client.create_stream(metadata)

            def _writer(chunks):
                def run():
                    for offset in range(0, len(chunks), CHUNKS_PER_BATCH):
                        client.insert_chunks(chunks[offset : offset + CHUNKS_PER_BATCH])

                return run

            begin = time.perf_counter()
            _run_threads([_writer(chunks) for _metadata, chunks in streams])
            ingest_elapsed = time.perf_counter() - begin

            horizon = TimeRange(0, len(streams[0][1]) * CHUNK_INTERVAL_MS)

            def _reader(uuid, num_chunks):
                def run():
                    for _round in range(query_rounds):
                        fetched = client.get_range(uuid, horizon)
                        assert len(fetched) == num_chunks
                        result = client.stat_range(uuid, horizon)
                        assert result.num_windows == num_chunks

                return run

            begin = time.perf_counter()
            _run_threads([_reader(metadata.uuid, len(chunks)) for metadata, chunks in streams])
            query_elapsed = time.perf_counter() - begin

            spread = len({client.routing_table.owner_of(m.uuid) for m, _chunks in streams})
    finally:
        router.stop()
        for shard in shards.values():
            shard.stop()

    total_records = sum(len(chunks) for _metadata, chunks in streams) * POINTS_PER_CHUNK
    total_queries = len(streams) * query_rounds * 2
    return {
        "engines": num_engines,
        "streams": len(streams),
        "shard_spread": spread,
        "ingest_seconds": ingest_elapsed,
        "ingest_records_per_s": total_records / ingest_elapsed if ingest_elapsed else 0.0,
        "query_seconds": query_elapsed,
        "queries_per_s": total_queries / query_elapsed if query_elapsed else 0.0,
    }


def _run_delete_round_trips(num_chunks: int, prefix_ops: bool) -> Dict[str, float]:
    """Wire round trips to delete a ``num_chunks``-chunk stream remotely."""
    node = StorageNodeServer(MemoryStore()).start()
    try:
        host, port = node.address
        remote = RemoteKeyValueStore(
            host, port, timeout=10.0, prefix_ops=prefix_ops, scan_page_size=LEGACY_SCAN_PAGE
        )
        try:
            engine = ServerEngine(store=remote, token_store=TokenStore(store=remote))
            (metadata, chunks), = _encrypted_streams(1, num_chunks)
            engine.create_stream(metadata)
            engine.insert_chunks(chunks)
            keyspace = len(node.store)
            remote.wire_stats.reset()
            engine.delete_stream(metadata.uuid)
            return {
                "chunks": num_chunks,
                "keyspace_keys": keyspace,
                "round_trips": remote.wire_stats.round_trips,
            }
        finally:
            remote.close()
    finally:
        node.stop()


# ---------------------------------------------------------------------------
# Assertions (collected by pytest, reused by the script)
# ---------------------------------------------------------------------------


def test_four_engines_double_aggregate_ingest():
    """4 sharded engines sustain ≥2x the 1-engine aggregate ingest rate."""
    streams = _balanced_streams(
        STREAMS_PER_SHARD, min(CHUNKS_PER_STREAM, 32), [f"engine-{i}" for i in range(4)]
    )
    single = _run_sharded_workload(1, streams, query_rounds=2)
    quad = _run_sharded_workload(4, streams, query_rounds=2)
    assert quad["shard_spread"] == 4
    speedup = quad["ingest_records_per_s"] / single["ingest_records_per_s"]
    assert speedup >= 2.0, (
        f"4-engine aggregate ingest {speedup:.2f}x the single-engine rate, "
        f"below the 2x target ({single['ingest_records_per_s']:.0f} vs "
        f"{quad['ingest_records_per_s']:.0f} records/s)"
    )


def test_delete_stream_round_trips_constant_under_offload():
    """Offloaded delete_stream wire cost is independent of keyspace size."""
    offload = [_run_delete_round_trips(size, prefix_ops=True) for size in DELETE_SIZES]
    legacy = [_run_delete_round_trips(size, prefix_ops=False) for size in DELETE_SIZES]
    assert offload[0]["round_trips"] == offload[1]["round_trips"], offload
    assert offload[1]["round_trips"] <= 4, offload
    assert legacy[1]["round_trips"] > legacy[0]["round_trips"], legacy
    assert legacy[1]["round_trips"] > offload[1]["round_trips"], (legacy, offload)


# ---------------------------------------------------------------------------
# Script entry point: tables + BENCH_sharding.json baseline
# ---------------------------------------------------------------------------


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced-iteration CI mode: tiny workload, same assertions",
    )
    parser.add_argument(
        "--output",
        default=os.environ.get("BENCH_OUTPUT", str(_DEFAULT_OUTPUT)),
        help="path of the JSON baseline to write",
    )
    args = parser.parse_args(argv)
    chunks_per_stream = 16 if args.smoke else CHUNKS_PER_STREAM
    query_rounds = 2 if args.smoke else QUERY_ROUNDS

    results: Dict[str, object] = {"smoke": args.smoke, "storage_rtt_ms": STORAGE_RTT_S * 1e3}

    streams = _balanced_streams(
        STREAMS_PER_SHARD, chunks_per_stream, [f"engine-{i}" for i in range(max(ENGINE_COUNTS))]
    )
    runs = [_run_sharded_workload(count, streams, query_rounds) for count in ENGINE_COUNTS]
    baseline: Optional[Dict[str, float]] = next(r for r in runs if r["engines"] == 1)

    shard_table = ResultTable(
        title=(
            f"Aggregate throughput vs. engine count — {len(streams)} streams x "
            f"{chunks_per_stream} chunks, {STORAGE_RTT_S * 1e3:.0f}ms storage RTT, real TCP sockets"
        ),
        columns=["engines", "ingest records/s", "ingest wall", "mixed queries/s", "query wall", "vs 1 engine"],
    )
    for run in runs:
        speedup = run["ingest_records_per_s"] / baseline["ingest_records_per_s"]
        shard_table.add_row(
            f"{run['engines']}",
            f"{run['ingest_records_per_s']:.0f}",
            format_duration(run["ingest_seconds"]),
            f"{run['queries_per_s']:.1f}",
            format_duration(run["query_seconds"]),
            f"{speedup:.2f}x",
        )
    quad = next(r for r in runs if r["engines"] == max(ENGINE_COUNTS))
    ingest_speedup = quad["ingest_records_per_s"] / baseline["ingest_records_per_s"]
    shard_table.add_note(
        f"{max(ENGINE_COUNTS)}-engine aggregate ingest: {ingest_speedup:.2f}x (target >= 2x); "
        "engines overlap storage waits, the router adds no hot-path hop"
    )
    shard_table.print()

    delete_rows: Dict[str, List[Dict[str, float]]] = {
        "offload": [_run_delete_round_trips(size, prefix_ops=True) for size in DELETE_SIZES],
        "legacy": [_run_delete_round_trips(size, prefix_ops=False) for size in DELETE_SIZES],
    }
    delete_table = ResultTable(
        title="delete_stream wire round trips vs. keyspace size (remote storage node)",
        columns=["path", f"{DELETE_SIZES[0]}-chunk stream", f"{DELETE_SIZES[1]}-chunk stream"],
    )
    for label, rows in (
        ("legacy scan-page wire", delete_rows["legacy"]),
        ("kv_delete_prefix offload", delete_rows["offload"]),
    ):
        delete_table.add_row(label, *(f"{row['round_trips']:.0f}" for row in rows))
    delete_table.add_note("offload target: constant round trips, independent of keyspace size")
    delete_table.print()

    results["sharding"] = {
        "streams": len(streams),
        "chunks_per_stream": chunks_per_stream,
        "chunks_per_batch": CHUNKS_PER_BATCH,
        "query_rounds": query_rounds,
        "runs": runs,
        "ingest_speedup_4x1": round(ingest_speedup, 2),
    }
    results["delete_round_trips"] = delete_rows

    print(f"baseline written to {write_json_report(args.output, results)}")


if __name__ == "__main__":
    main()
