"""Figure 5 — statistical query latency over varying interval sizes [0, 2^x].

Paper: with a 64-ary index, plaintext and TimeCrypt stay in the tens of
microseconds across all interval lengths (with a step pattern as fewer tree
levels are traversed), while the strawman constructions show a sawtooth in
the tens of milliseconds from expensive on-the-fly homomorphic additions.

The pytest-benchmark entries measure TimeCrypt vs plaintext at a sweep of
interval lengths; the strawman is covered at a reduced sweep because each
Paillier aggregation costs milliseconds even at small scale.
"""

from __future__ import annotations

import pytest


# Interval exponents: [0, 2^x] windows.  The paper sweeps x up to 26 with 100M
# chunks; we sweep up to the size of the pre-ingested benchmark stream.
EXPONENTS = [0, 2, 4, 6, 8, 10, 11]


@pytest.mark.parametrize("exponent", EXPONENTS)
def test_fig5_timecrypt(benchmark, timecrypt_with_data, bench_config, exponent):
    benchmark.group = f"fig5-x{exponent:02d}"
    owner, uuid, num_chunks = timecrypt_with_data
    windows = min(2**exponent, num_chunks - 1) or 1
    end = windows * bench_config.chunk_interval
    benchmark(lambda: owner.get_stat_range(uuid, 0, end, operators=("sum",)))


@pytest.mark.parametrize("exponent", EXPONENTS)
def test_fig5_plaintext(benchmark, plaintext_with_data, bench_config, exponent):
    benchmark.group = f"fig5-x{exponent:02d}"
    store, uuid, num_chunks = plaintext_with_data
    windows = min(2**exponent, num_chunks - 1) or 1
    end = windows * bench_config.chunk_interval
    benchmark(lambda: store.get_stat_range(uuid, 0, end, operators=("sum",)))


@pytest.mark.parametrize("exponent", [0, 2, 4, 6])
def test_fig5_paillier(benchmark, paillier_store, bench_config, exponent):
    benchmark.group = f"fig5-x{exponent:02d}"
    store, uuid = paillier_store
    windows = min(2**exponent, store.num_windows(uuid) - 1) or 1
    end = windows * bench_config.chunk_interval
    benchmark.pedantic(
        lambda: store.get_stat_range(uuid, 0, end, operators=("sum",)), rounds=5, iterations=1
    )


def test_fig5_latency_flat_for_aligned_ranges(timecrypt_with_data, bench_config):
    """The number of index nodes touched grows logarithmically, not linearly."""
    owner, uuid, num_chunks = timecrypt_with_data
    server = owner.server
    nodes_touched = []
    for exponent in (2, 6, 10):
        windows = min(2**exponent, num_chunks)
        result = server.stat_range_windows(uuid, 0, windows)
        nodes_touched.append(result.num_index_nodes)
    # Query size grows 256x; node count must grow far slower than linearly.
    assert nodes_touched[-1] <= nodes_touched[0] * 64
    assert nodes_touched[-1] < 2 * (bench_config.index_fanout - 1) * 4
