"""Figure 6 — key-derivation cost vs. keystream size for different PRGs.

Paper: deriving a single key from a tree with n leaves costs log2(n) PRG
evaluations; with AES-NI this is ~2.5 µs even at 2^30 keys, with SHA-256 and
software AES proportionally slower.  The figure sweeps the keystream size
from 2^0 to 2^60 keys.

We sweep tree heights and the available PRG backends ("aes-ni" uses the
native ``cryptography`` AES as the hardware stand-in, "aes" is the pure
Python block cipher, plus the SHA-256 and BLAKE2b hash constructions).
"""

from __future__ import annotations

import pytest

from repro.crypto.keytree import KeyDerivationTree
from repro.crypto.prf import available_prgs

HEIGHTS = [5, 10, 20, 30, 40, 50, 60]

#: Pure-python AES is very slow; restrict it to shallow trees to keep runs short.
_SLOW_PRGS = {"aes"}


def _prg_heights():
    for prg in available_prgs():
        for height in HEIGHTS:
            if prg in _SLOW_PRGS and height > 20:
                continue
            yield prg, height


@pytest.mark.parametrize("prg,height", list(_prg_heights()))
def test_fig6_single_key_derivation(benchmark, prg, height):
    """Cost of deriving one key from a tree with 2^height leaves (cold cache)."""
    benchmark.group = f"fig6-height{height:02d}"
    tree = KeyDerivationTree(seed=b"f" * 16, height=height, prg=prg, cache_levels=0)
    target = (1 << height) - 1  # the deepest, right-most leaf: log2(n) PRG calls
    benchmark(lambda: tree.leaf(target))


def test_fig6_cost_grows_logarithmically():
    """Doubling the keystream size adds one PRG call, not double the work."""
    from repro.bench.harness import measure

    timings = {}
    for height in (10, 20, 40):
        tree = KeyDerivationTree(seed=b"f" * 16, height=height, prg="blake2", cache_levels=0)
        target = (1 << height) - 1
        timings[height] = measure(f"h{height}", lambda t=tree, x=target: t.leaf(x), repetitions=200).mean_seconds
    # 2^40 keys vs 2^10 keys: 4x the tree depth must cost roughly 4x, far from 2^30x.
    assert timings[40] < 10 * timings[10]


def test_fig6_sequential_derivation_amortises_with_cache():
    """With the hot-path cache, sequential key derivation is near O(1) per key."""
    from repro.bench.harness import measure

    cold = KeyDerivationTree(seed=b"f" * 16, height=30, prg="blake2", cache_levels=0)
    warm = KeyDerivationTree(seed=b"f" * 16, height=30, prg="blake2", cache_levels=24)
    counter_cold = iter(range(10**6))
    counter_warm = iter(range(10**6))
    cold_time = measure("cold", lambda: cold.leaf(next(counter_cold)), repetitions=500).mean_seconds
    warm_time = measure("warm", lambda: warm.leaf(next(counter_warm)), repetitions=500).mean_seconds
    assert warm_time <= cold_time
