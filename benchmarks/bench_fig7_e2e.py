"""Figure 7 — end-to-end ingest/query throughput and latency (mHealth load).

Paper: with the mHealth workload (Δ=10 s, 50 Hz, 4:1 read:write ratio across
1200 streams) TimeCrypt's ingest and statistical-query throughput are within
1.8 % of plaintext, while EC-ElGamal and Paillier are 20x / 52x slower; with
an extremely small (1 MB) index cache both plaintext and TimeCrypt slow down
similarly due to cache misses (Fig. 7c).

This benchmark runs a scaled-down single-process version of the same load:
identical record streams replayed through TimeCrypt, the plaintext baseline,
and the Paillier strawman (tiny stream count), plus small-cache variants.
The assertions check the paper's relative ordering; pytest-benchmark rows
report the per-configuration run times.
"""

from __future__ import annotations


from repro import ServerEngine, TimeCrypt
from repro.core.plaintext import PlaintextTimeSeriesStore
from repro.core.strawman import StrawmanStore
from repro.workloads.generator import LoadGenerator
from repro.workloads.mhealth import MHealthWorkload

from conftest import scaled

#: Scaled-down load: a couple of streams, under a minute of 50 Hz data each.
#: Raise BENCH_SCALE for longer, closer-to-paper runs.
NUM_STREAMS = scaled(2)
DURATION_SECONDS = scaled(40)
CHUNK_INTERVAL_MS = 10_000


def _mhealth_records(num_streams: int, duration_seconds: int):
    workload = MHealthWorkload(seed=13)
    metrics = MHealthWorkload.metric_names()
    return {
        f"stream-{index}": list(workload.records(metrics[index % len(metrics)], duration_seconds))
        for index in range(num_streams)
    }


def _build_timecrypt(index_cache_bytes: int = 64 * 1024 * 1024):
    server = ServerEngine(index_cache_bytes=index_cache_bytes)
    owner = TimeCrypt(server=server, owner_id="bench")
    mapping = {}
    for index in range(NUM_STREAMS):
        metric = MHealthWorkload.metric_names()[index % 12]
        config = MHealthWorkload.stream_config(metric, CHUNK_INTERVAL_MS)
        mapping[f"stream-{index}"] = owner.create_stream(metric=metric, config=config)
    return owner, mapping


def _build_plaintext(index_cache_bytes: int = 64 * 1024 * 1024):
    store = PlaintextTimeSeriesStore(index_cache_bytes=index_cache_bytes)
    mapping = {}
    for index in range(NUM_STREAMS):
        metric = MHealthWorkload.metric_names()[index % 12]
        config = MHealthWorkload.stream_config(metric, CHUNK_INTERVAL_MS)
        mapping[f"stream-{index}"] = store.create_stream(metric=metric, config=config)
    return store, mapping


class _RenamingStore:
    """Adapts generator stream names to the store's UUIDs."""

    def __init__(self, store, mapping):
        self._store = store
        self._mapping = mapping

    def insert_record(self, uuid, timestamp, value):
        self._store.insert_record(self._mapping[uuid], timestamp, value)

    def flush(self, uuid):
        self._store.flush(self._mapping[uuid])

    def get_stat_range(self, uuid, start, end, operators=("sum", "count", "mean")):
        return self._store.get_stat_range(self._mapping[uuid], start, end, operators=operators)


def _run_load(store, mapping, label):
    generator = LoadGenerator(
        store=_RenamingStore(store, mapping),
        stream_records=_mhealth_records(NUM_STREAMS, DURATION_SECONDS),
        read_write_ratio=4,
        chunk_interval=CHUNK_INTERVAL_MS,
    )
    return generator.run(label=label)


def test_fig7_timecrypt_load(benchmark):
    benchmark.group = "fig7-e2e"
    owner, mapping = _build_timecrypt()
    report = benchmark.pedantic(lambda: _run_load(owner, mapping, "timecrypt"), rounds=1, iterations=1)
    assert report.records_written == NUM_STREAMS * DURATION_SECONDS * 50


def test_fig7_plaintext_load(benchmark):
    benchmark.group = "fig7-e2e"
    store, mapping = _build_plaintext()
    report = benchmark.pedantic(lambda: _run_load(store, mapping, "plaintext"), rounds=1, iterations=1)
    assert report.records_written == NUM_STREAMS * DURATION_SECONDS * 50


def test_fig7_timecrypt_bulk_ingest(benchmark):
    """Ingest-only throughput through the bulk path.

    ``insert_records`` encrypts all completed chunks per call in one HEAC key
    batch and folds them into the index via ``insert_chunks``/``append_many``
    — the write side of Fig. 7 without the interleaved queries.  Compare with
    the per-record ingest embedded in the mixed-load rows above.
    """
    benchmark.group = "fig7-e2e"
    owner, mapping = _build_timecrypt()
    stream_records = _mhealth_records(NUM_STREAMS, DURATION_SECONDS)

    def run():
        total = 0
        for name, records in stream_records.items():
            owner.insert_records(mapping[name], records)
            owner.flush(mapping[name])
            total += len(records)
        return total

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert total == NUM_STREAMS * DURATION_SECONDS * 50


def test_fig7_timecrypt_small_cache(benchmark):
    """The 1 MB index-cache variant of Fig. 7c."""
    benchmark.group = "fig7-e2e"
    owner, mapping = _build_timecrypt(index_cache_bytes=1024 * 1024)
    benchmark.pedantic(lambda: _run_load(owner, mapping, "timecrypt-1MB-cache"), rounds=1, iterations=1)


def test_fig7_plaintext_small_cache(benchmark):
    benchmark.group = "fig7-e2e"
    store, mapping = _build_plaintext(index_cache_bytes=1024 * 1024)
    benchmark.pedantic(lambda: _run_load(store, mapping, "plaintext-1MB-cache"), rounds=1, iterations=1)


def test_fig7_relative_ordering():
    """TimeCrypt tracks plaintext closely; the Paillier strawman is far slower.

    The paper reports a 1.8 % slowdown for TimeCrypt on the JVM with AES-NI.
    Interpreted Python inflates TimeCrypt's constant factors, so the check
    here is the ordering and a generous bound, not the 1.8 % figure itself.
    """
    owner, tc_mapping = _build_timecrypt()
    tc_report = _run_load(owner, tc_mapping, "timecrypt")

    plain, pl_mapping = _build_plaintext()
    plain_report = _run_load(plain, pl_mapping, "plaintext")

    assert tc_report.ingest_throughput > 0 and plain_report.ingest_throughput > 0
    slowdown = plain_report.ingest_throughput / tc_report.ingest_throughput
    assert slowdown < 25.0, f"TimeCrypt ingest unexpectedly slow ({slowdown:.1f}x plaintext)"

    # A tiny Paillier strawman run: one stream, a fraction of the duration.
    strawman = StrawmanStore(scheme_name="paillier", paillier_bits=512)
    records = _mhealth_records(1, max(10, DURATION_SECONDS // 6))["stream-0"]
    uuid = strawman.create_stream(config=MHealthWorkload.stream_config("heart_rate"))
    generator = LoadGenerator(
        store=strawman,
        stream_records={uuid: records},
        read_write_ratio=4,
        chunk_interval=CHUNK_INTERVAL_MS,
    )
    strawman_report = generator.run(label="paillier")
    assert strawman_report.ingest_throughput < tc_report.ingest_throughput
