"""Figure 7 — end-to-end ingest/query throughput and latency (mHealth load).

Paper: with the mHealth workload (Δ=10 s, 50 Hz, 4:1 read:write ratio across
1200 streams) TimeCrypt's ingest and statistical-query throughput are within
1.8 % of plaintext, while EC-ElGamal and Paillier are 20x / 52x slower; with
an extremely small (1 MB) index cache both plaintext and TimeCrypt slow down
similarly due to cache misses (Fig. 7c).

This benchmark runs a scaled-down single-process version of the same load:
identical record streams replayed through TimeCrypt, the plaintext baseline,
and the Paillier strawman (tiny stream count), plus small-cache variants.
The assertions check the paper's relative ordering; pytest-benchmark rows
report the per-configuration run times.

Run as a script for the **ingest-batch-size sweep**: the
``LoadGenerator.ingest_batch_size`` knob is swept over client-side batch
sizes and the throughput-vs-batch-size curve is merged into
``BENCH_batch.json`` (alongside the derivation micro-benchmark's groups):

    PYTHONPATH=src python benchmarks/bench_fig7_e2e.py

``--smoke`` shrinks the sweep for CI smoke jobs.
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path
from typing import Dict

from repro import ServerEngine, TimeCrypt
from repro.bench.reporting import ResultTable, format_duration, merge_json_report
from repro.core.plaintext import PlaintextTimeSeriesStore
from repro.core.strawman import StrawmanStore
from repro.workloads.generator import LoadGenerator
from repro.workloads.mhealth import MHealthWorkload

from conftest import scaled

#: Scaled-down load: a couple of streams, under a minute of 50 Hz data each.
#: Raise BENCH_SCALE for longer, closer-to-paper runs.
NUM_STREAMS = scaled(2)
DURATION_SECONDS = scaled(40)
CHUNK_INTERVAL_MS = 10_000


def _mhealth_records(num_streams: int, duration_seconds: int):
    workload = MHealthWorkload(seed=13)
    metrics = MHealthWorkload.metric_names()
    return {
        f"stream-{index}": list(workload.records(metrics[index % len(metrics)], duration_seconds))
        for index in range(num_streams)
    }


def _build_timecrypt(index_cache_bytes: int = 64 * 1024 * 1024, num_streams: int = None):
    server = ServerEngine(index_cache_bytes=index_cache_bytes)
    owner = TimeCrypt(server=server, owner_id="bench")
    mapping = {}
    for index in range(NUM_STREAMS if num_streams is None else num_streams):
        metric = MHealthWorkload.metric_names()[index % 12]
        config = MHealthWorkload.stream_config(metric, CHUNK_INTERVAL_MS)
        mapping[f"stream-{index}"] = owner.create_stream(metric=metric, config=config)
    return owner, mapping


def _build_plaintext(index_cache_bytes: int = 64 * 1024 * 1024):
    store = PlaintextTimeSeriesStore(index_cache_bytes=index_cache_bytes)
    mapping = {}
    for index in range(NUM_STREAMS):
        metric = MHealthWorkload.metric_names()[index % 12]
        config = MHealthWorkload.stream_config(metric, CHUNK_INTERVAL_MS)
        mapping[f"stream-{index}"] = store.create_stream(metric=metric, config=config)
    return store, mapping


class _RenamingStore:
    """Adapts generator stream names to the store's UUIDs."""

    def __init__(self, store, mapping):
        self._store = store
        self._mapping = mapping

    def insert_record(self, uuid, timestamp, value):
        self._store.insert_record(self._mapping[uuid], timestamp, value)

    def flush(self, uuid):
        self._store.flush(self._mapping[uuid])

    def get_stat_range(self, uuid, start, end, operators=("sum", "count", "mean")):
        return self._store.get_stat_range(self._mapping[uuid], start, end, operators=operators)


def _run_load(store, mapping, label):
    generator = LoadGenerator(
        store=_RenamingStore(store, mapping),
        stream_records=_mhealth_records(NUM_STREAMS, DURATION_SECONDS),
        read_write_ratio=4,
        chunk_interval=CHUNK_INTERVAL_MS,
    )
    return generator.run(label=label)


def test_fig7_timecrypt_load(benchmark):
    benchmark.group = "fig7-e2e"
    owner, mapping = _build_timecrypt()
    report = benchmark.pedantic(lambda: _run_load(owner, mapping, "timecrypt"), rounds=1, iterations=1)
    assert report.records_written == NUM_STREAMS * DURATION_SECONDS * 50


def test_fig7_plaintext_load(benchmark):
    benchmark.group = "fig7-e2e"
    store, mapping = _build_plaintext()
    report = benchmark.pedantic(lambda: _run_load(store, mapping, "plaintext"), rounds=1, iterations=1)
    assert report.records_written == NUM_STREAMS * DURATION_SECONDS * 50


def test_fig7_timecrypt_bulk_ingest(benchmark):
    """Ingest-only throughput through the bulk path.

    ``insert_records`` encrypts all completed chunks per call in one HEAC key
    batch and folds them into the index via ``insert_chunks``/``append_many``
    — the write side of Fig. 7 without the interleaved queries.  Compare with
    the per-record ingest embedded in the mixed-load rows above.
    """
    benchmark.group = "fig7-e2e"
    owner, mapping = _build_timecrypt()
    stream_records = _mhealth_records(NUM_STREAMS, DURATION_SECONDS)

    def run():
        total = 0
        for name, records in stream_records.items():
            owner.insert_records(mapping[name], records)
            owner.flush(mapping[name])
            total += len(records)
        return total

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert total == NUM_STREAMS * DURATION_SECONDS * 50


def test_fig7_timecrypt_small_cache(benchmark):
    """The 1 MB index-cache variant of Fig. 7c."""
    benchmark.group = "fig7-e2e"
    owner, mapping = _build_timecrypt(index_cache_bytes=1024 * 1024)
    benchmark.pedantic(lambda: _run_load(owner, mapping, "timecrypt-1MB-cache"), rounds=1, iterations=1)


def test_fig7_plaintext_small_cache(benchmark):
    benchmark.group = "fig7-e2e"
    store, mapping = _build_plaintext(index_cache_bytes=1024 * 1024)
    benchmark.pedantic(lambda: _run_load(store, mapping, "plaintext-1MB-cache"), rounds=1, iterations=1)


def test_fig7_relative_ordering():
    """TimeCrypt tracks plaintext closely; the Paillier strawman is far slower.

    The paper reports a 1.8 % slowdown for TimeCrypt on the JVM with AES-NI.
    Interpreted Python inflates TimeCrypt's constant factors, so the check
    here is the ordering and a generous bound, not the 1.8 % figure itself.
    """
    owner, tc_mapping = _build_timecrypt()
    tc_report = _run_load(owner, tc_mapping, "timecrypt")

    plain, pl_mapping = _build_plaintext()
    plain_report = _run_load(plain, pl_mapping, "plaintext")

    assert tc_report.ingest_throughput > 0 and plain_report.ingest_throughput > 0
    slowdown = plain_report.ingest_throughput / tc_report.ingest_throughput
    assert slowdown < 25.0, f"TimeCrypt ingest unexpectedly slow ({slowdown:.1f}x plaintext)"

    # A tiny Paillier strawman run: one stream, a fraction of the duration.
    strawman = StrawmanStore(scheme_name="paillier", paillier_bits=512)
    records = _mhealth_records(1, max(10, DURATION_SECONDS // 6))["stream-0"]
    uuid = strawman.create_stream(config=MHealthWorkload.stream_config("heart_rate"))
    generator = LoadGenerator(
        store=strawman,
        stream_records={uuid: records},
        read_write_ratio=4,
        chunk_interval=CHUNK_INTERVAL_MS,
    )
    strawman_report = generator.run(label="paillier")
    assert strawman_report.ingest_throughput < tc_report.ingest_throughput


# ---------------------------------------------------------------------------
# Ingest-batch-size sweep (script entry point): throughput vs. batch size
# ---------------------------------------------------------------------------

#: Client-side batch sizes (records per ``insert_records`` call) swept by the
#: script.  1 is the paper's per-record replay; larger batches exercise the
#: bulk encrypt + coalesced storage + single-wire-op pipeline end to end.
SWEEP_BATCH_SIZES = (1, 8, 32, 128, 512)

_BATCH_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_batch.json"


def _run_sweep_point(batch_size: int, num_streams: int, duration_seconds: int) -> Dict[str, float]:
    owner, mapping = _build_timecrypt(num_streams=num_streams)
    generator = LoadGenerator(
        store=_RenamingStore(owner, mapping),
        stream_records=_mhealth_records(num_streams, duration_seconds),
        read_write_ratio=4,
        chunk_interval=CHUNK_INTERVAL_MS,
        ingest_batch_size=batch_size,
    )
    report = generator.run(label=f"batch-{batch_size}")
    return {
        "batch_size": batch_size,
        "ingest_records_per_s": round(report.ingest_throughput, 1),
        "query_ops_per_s": round(report.query_throughput, 1),
        "records_written": report.records_written,
        "seconds": report.duration_seconds,
    }


def run_batch_size_sweep(num_streams: int, duration_seconds: int) -> Dict[str, object]:
    """Sweep ``ingest_batch_size``; returns the JSON-safe result group."""
    points = [
        _run_sweep_point(batch_size, num_streams, duration_seconds)
        for batch_size in SWEEP_BATCH_SIZES
    ]
    baseline = points[0]["ingest_records_per_s"]
    table = ResultTable(
        title=(
            f"Fig. 7 ingest throughput vs. client batch size — "
            f"{num_streams} streams x {duration_seconds}s mHealth"
        ),
        columns=["batch size", "ingest records/s", "speedup vs 1", "wall clock"],
    )
    for point in points:
        speedup = point["ingest_records_per_s"] / baseline if baseline else 0.0
        table.add_row(
            f"{point['batch_size']}",
            f"{point['ingest_records_per_s']:.0f}",
            f"{speedup:.2f}x",
            format_duration(point["seconds"]),
        )
    table.add_note("batch size 1 = the paper's per-record replay (Fig. 7 heavy load)")
    table.print()
    return {
        "num_streams": num_streams,
        "duration_seconds": duration_seconds,
        "chunk_interval_ms": CHUNK_INTERVAL_MS,
        "points": points,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description="Fig. 7 ingest-batch-size sweep")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced-iteration CI mode: one short stream, same sweep shape",
    )
    parser.add_argument(
        "--output",
        default=os.environ.get("BENCH_OUTPUT", str(_BATCH_BASELINE)),
        help="JSON baseline to merge the sweep into (default: BENCH_batch.json)",
    )
    args = parser.parse_args(argv)
    num_streams = 1 if args.smoke else NUM_STREAMS
    duration_seconds = 10 if args.smoke else DURATION_SECONDS
    sweep = run_batch_size_sweep(num_streams, duration_seconds)
    sweep["smoke"] = args.smoke
    path = merge_json_report(args.output, {"fig7_batch_size_sweep": sweep})
    print(f"baseline written to {path}")


if __name__ == "__main__":
    main()
