"""Figure 8 — mHealth dashboard views: one month of data at varying granularity.

Paper: plotting one month of heart-rate data (121M records) at minute
granularity requires decrypting ~40,320 individual aggregates and costs
~1.5x plaintext; at hour/day/week/month granularity the number of decrypted
aggregates (and the overhead) drops sharply, down to ~1.01x for a single
month-wide aggregate.

We ingest a scaled-down "month" (the chunk count is reduced, the
chunk-to-granularity ratios preserved) and time the dashboard series query at
each granularity for TimeCrypt and the plaintext baseline.
"""

from __future__ import annotations

import pytest

from repro import ServerEngine, TimeCrypt, TimeCryptConsumer, Principal
from repro.core.plaintext import PlaintextTimeSeriesStore
from repro.workloads.mhealth import MHealthWorkload

from conftest import scaled

CHUNK_INTERVAL_MS = 10_000
#: Scaled month: number of 10 s chunks ingested (the real month has ~260k).
MONTH_CHUNKS = scaled(2048)
#: Dashboard granularities in chunk multiples (minute=6, hour=360, day=8640, ...).
GRANULARITIES = {
    "minute": 6,
    "hour": 360,
    "day": 8_640,
    "week": 60_480,
    "month": MONTH_CHUNKS,
}


def _synthetic_month_records():
    """One value per chunk window keeps ingest fast while preserving query shape."""
    workload = MHealthWorkload(seed=21)
    values = [60 + (i % 40) for i in range(MONTH_CHUNKS)]
    return [(i * CHUNK_INTERVAL_MS, float(v)) for i, v in enumerate(values)], workload


@pytest.fixture(scope="module")
def month_deployment():
    records, _workload = _synthetic_month_records()
    config = MHealthWorkload.stream_config("heart_rate", CHUNK_INTERVAL_MS)
    server = ServerEngine()
    owner = TimeCrypt(server=server, owner_id="user")
    uuid = owner.create_stream(metric="heart_rate", config=config)
    owner.insert_records(uuid, records)
    owner.flush(uuid)
    # The dashboard consumer holds a full-resolution grant over the month.
    viewer = Principal.create("dashboard")
    owner.register_principal(viewer)
    end_time = MONTH_CHUNKS * CHUNK_INTERVAL_MS
    owner.grant_access(uuid, "dashboard", 0, end_time)
    consumer = TimeCryptConsumer(server=server, principal=viewer)
    consumer.fetch_access(uuid, config)

    plaintext = PlaintextTimeSeriesStore()
    plain_uuid = plaintext.create_stream(config=config)
    plaintext.insert_records(plain_uuid, records)
    plaintext.flush(plain_uuid)
    return consumer, uuid, plaintext, plain_uuid, end_time


@pytest.mark.parametrize("granularity", list(GRANULARITIES))
def test_fig8_timecrypt_views(benchmark, month_deployment, granularity):
    benchmark.group = f"fig8-{granularity}"
    consumer, uuid, _plain, _plain_uuid, end_time = month_deployment
    chunks = min(GRANULARITIES[granularity], MONTH_CHUNKS)
    interval = chunks * CHUNK_INTERVAL_MS
    benchmark.pedantic(
        lambda: consumer.get_stat_series(uuid, 0, end_time, interval, operators=("mean",)),
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("granularity", list(GRANULARITIES))
def test_fig8_plaintext_views(benchmark, month_deployment, granularity):
    benchmark.group = f"fig8-{granularity}"
    _consumer, _uuid, plaintext, plain_uuid, end_time = month_deployment
    chunks = min(GRANULARITIES[granularity], MONTH_CHUNKS)
    interval = chunks * CHUNK_INTERVAL_MS
    benchmark.pedantic(
        lambda: plaintext.get_stat_series(plain_uuid, 0, end_time, interval, operators=("mean",)),
        rounds=3,
        iterations=1,
    )


def test_fig8_overhead_shrinks_with_granularity(month_deployment):
    """The TimeCrypt/plaintext ratio is largest at fine granularity (many decryptions)."""
    import time

    consumer, uuid, plaintext, plain_uuid, end_time = month_deployment

    def time_views(run, interval):
        start = time.perf_counter()
        run(interval)
        return time.perf_counter() - start

    fine_interval = GRANULARITIES["minute"] * CHUNK_INTERVAL_MS
    coarse_interval = MONTH_CHUNKS * CHUNK_INTERVAL_MS

    tc_fine = time_views(lambda i: consumer.get_stat_series(uuid, 0, end_time, i, operators=("mean",)), fine_interval)
    tc_coarse = time_views(lambda i: consumer.get_stat_series(uuid, 0, end_time, i, operators=("mean",)), coarse_interval)
    pl_fine = time_views(lambda i: plaintext.get_stat_series(plain_uuid, 0, end_time, i, operators=("mean",)), fine_interval)
    pl_coarse = time_views(lambda i: plaintext.get_stat_series(plain_uuid, 0, end_time, i, operators=("mean",)), coarse_interval)

    # Fine granularity touches many more aggregates than coarse, for both systems.
    assert tc_fine > tc_coarse
    assert pl_fine > pl_coarse
    # The number of returned points matches the expected bucket count.
    series = consumer.get_stat_series(uuid, 0, end_time, fine_interval, operators=("count",))
    assert len(series) == MONTH_CHUNKS // GRANULARITIES["minute"]
