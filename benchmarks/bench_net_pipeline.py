"""Wire round trips over a real socket: pipelined v2 vs. the scalar wire.

PR 1 batched key derivation, PR 2 batched storage round trips; this
benchmark tracks the network half — the seam where a
:class:`~repro.net.client.RemoteServerClient` used to undo both wins by
shipping one operation per locked round trip.  Three claims are measured
over a real TCP socket (loopback, in-process server):

1. **Ingest** — an N-chunk ingest batch must cost ≤ 2 wire round trips
   through the pipelined client (one ``insert_chunks`` frame per delivered
   batch, plus the final flush), a ≥ 10× reduction vs. the scalar wire
   (one ``insert_chunk`` round trip per chunk).
2. **Queries** — a raw range read covering the whole stream and a
   statistical range query each cost one round trip, however many chunks
   or index nodes they touch.
3. **Grant bursts** — onboarding a cohort of K principals costs ≤ 2 round
   trips through ``put_grants`` (vs. K through scalar ``put_grant``), and a
   K-principal grant *pickup* collapses into one round trip through
   ``pipeline()``.

Run as a script to print the tables and refresh ``BENCH_net.json``:

    PYTHONPATH=src python benchmarks/bench_net_pipeline.py

``--smoke`` shrinks the workload for CI smoke jobs (round-trip counts are
deterministic, so the assertions still hold); ``BENCH_SCALE`` scales the
full run.  The assertions also run under plain pytest:
``pytest benchmarks/bench_net_pipeline.py``.
"""

from __future__ import annotations

import argparse
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

from repro import Principal, ServerEngine, TimeCrypt
from repro.bench.reporting import ResultTable, format_duration, write_json_report
from repro.net.client import RemoteServerClient
from repro.net.server import TimeCryptTCPServer
from repro.timeseries.stream import StreamConfig
from repro.util.timeutil import TimeRange

from conftest import scaled

#: Ingest workload: short chunks so per-chunk wire overhead dominates.
INGEST_CHUNKS = scaled(256, minimum=64)
POINTS_PER_CHUNK = 4
CHUNK_INTERVAL_MS = 1_000
#: Client-side ingest batch: chunks delivered per ``insert_records`` call.
CHUNKS_PER_BATCH = 32
TREE_HEIGHT = 30

GRANT_BURST = scaled(24, minimum=8)

_DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_net.json"


@contextmanager
def _remote_stack(**client_kwargs) -> Iterator[RemoteServerClient]:
    """A fresh engine behind a real TCP server, plus one connected client."""
    engine = ServerEngine()
    with TimeCryptTCPServer(engine) as server:
        host, port = server.address
        with RemoteServerClient(host, port, **client_kwargs) as remote:
            yield remote


def _ingest_records(num_chunks: int) -> List[Tuple[int, float]]:
    step = CHUNK_INTERVAL_MS // POINTS_PER_CHUNK
    return [
        (t, float((t // step) % 100))
        for t in range(0, num_chunks * CHUNK_INTERVAL_MS, step)
    ]


def _stream_config() -> StreamConfig:
    return StreamConfig(chunk_interval=CHUNK_INTERVAL_MS, key_tree_height=TREE_HEIGHT)


def _run_ingest(remote: RemoteServerClient, num_chunks: int, scalar_wire: bool) -> Dict[str, float]:
    """Ingest ``num_chunks`` chunks; returns wall clock and wire counters.

    ``scalar_wire`` reproduces the pre-pipelining behaviour — every chunk
    shipped as its own ``insert_chunk`` round trip — by disabling the
    writer's bulk delivery path against the *same* server, so the
    comparison isolates wire batching from everything else.
    """
    owner = TimeCrypt(server=remote, owner_id="bench")
    uuid = owner.create_stream(metric="net-bench", config=_stream_config())
    if scalar_wire:
        owner._streams[uuid].writer.batch_sink = None
    records = _ingest_records(num_chunks)
    batch_records = CHUNKS_PER_BATCH * POINTS_PER_CHUNK
    num_batches = 0
    remote.wire_stats.reset()
    begin = time.perf_counter()
    for offset in range(0, len(records), batch_records):
        owner.insert_records(uuid, records[offset : offset + batch_records])
        num_batches += 1
    owner.flush(uuid)
    elapsed = time.perf_counter() - begin
    round_trips = remote.wire_stats.round_trips
    return {
        "seconds": elapsed,
        "records_per_s": len(records) / elapsed if elapsed else 0.0,
        "wire_round_trips": round_trips,
        "round_trips_per_batch": round_trips / num_batches,
        "num_batches": num_batches,
        "num_chunks": num_chunks,
        "uuid": uuid,
    }


def _run_queries(remote: RemoteServerClient, uuid: str, num_chunks: int) -> Dict[str, float]:
    remote.wire_stats.reset()
    chunks = remote.get_range(uuid, TimeRange(0, num_chunks * CHUNK_INTERVAL_MS))
    range_round_trips = remote.wire_stats.round_trips
    remote.wire_stats.reset()
    result = remote.stat_range(uuid, TimeRange(0, num_chunks * CHUNK_INTERVAL_MS))
    stat_round_trips = remote.wire_stats.round_trips
    return {
        "chunks_fetched": len(chunks),
        "range_round_trips": range_round_trips,
        "plan_nodes": result.num_index_nodes,
        "stat_round_trips": stat_round_trips,
    }


def _run_grant_burst(remote: RemoteServerClient, num_principals: int, batched: bool) -> Dict[str, float]:
    owner = TimeCrypt(server=remote, owner_id="bench")
    uuid = owner.create_stream(metric="grant-bench", config=_stream_config())
    owner.insert_records(uuid, _ingest_records(4))
    owner.flush(uuid)
    cohort = [Principal.create(f"principal-{index}") for index in range(num_principals)]
    for principal in cohort:
        owner.register_principal(principal)
    horizon = 4 * CHUNK_INTERVAL_MS
    remote.wire_stats.reset()
    begin = time.perf_counter()
    if batched:
        owner.grant_access_many(
            uuid, [(p.principal_id, 0, horizon, None) for p in cohort]
        )
    else:
        for principal in cohort:
            owner.grant_access(uuid, principal.principal_id, 0, horizon)
    issue_elapsed = time.perf_counter() - begin
    issue_round_trips = remote.wire_stats.round_trips
    # Grant pickup: K fetch_grants, pipelined into one round trip when batched.
    remote.wire_stats.reset()
    if batched:
        with remote.pipeline() as batch:
            handles = [batch.fetch_grants(uuid, p.principal_id) for p in cohort]
        pickups = [handle.result() for handle in handles]
    else:
        pickups = [remote.fetch_grants(uuid, p.principal_id) for p in cohort]
    pickup_round_trips = remote.wire_stats.round_trips
    assert all(len(sealed) >= 1 for sealed in pickups)
    return {
        "principals": num_principals,
        "issue_seconds": issue_elapsed,
        "issue_round_trips": issue_round_trips,
        "pickup_round_trips": pickup_round_trips,
    }


# ---------------------------------------------------------------------------
# Assertions (collected by pytest, reused by the script)
# ---------------------------------------------------------------------------


def test_ingest_round_trip_reduction():
    """Pipelined wire: ≥10× fewer round trips per ingest batch than scalar."""
    num_chunks = min(INGEST_CHUNKS, 128)
    with _remote_stack() as remote:
        batched = _run_ingest(remote, num_chunks, scalar_wire=False)
    with _remote_stack() as remote:
        scalar = _run_ingest(remote, num_chunks, scalar_wire=True)
    reduction = scalar["round_trips_per_batch"] / batched["round_trips_per_batch"]
    assert batched["round_trips_per_batch"] <= 2.0, batched
    assert reduction >= 10.0, (
        f"wire round-trip reduction {reduction:.1f}x below the 10x target "
        f"(scalar {scalar['round_trips_per_batch']:.1f}, batched "
        f"{batched['round_trips_per_batch']:.1f} per ingest batch)"
    )


def test_query_round_trips_are_constant():
    """A whole-stream range read and a stat query cost one round trip each."""
    num_chunks = min(INGEST_CHUNKS, 128)
    with _remote_stack() as remote:
        ingest = _run_ingest(remote, num_chunks, scalar_wire=False)
        queries = _run_queries(remote, ingest["uuid"], num_chunks)
    assert queries["chunks_fetched"] == num_chunks
    assert queries["range_round_trips"] <= 2
    assert queries["plan_nodes"] > 1
    assert queries["stat_round_trips"] == 1


def test_grant_burst_round_trips():
    """A K-principal grant burst costs ≤2 round trips; pickup pipelines to 1."""
    cohort = min(GRANT_BURST, 12)
    with _remote_stack() as remote:
        batched = _run_grant_burst(remote, cohort, batched=True)
    with _remote_stack() as remote:
        scalar = _run_grant_burst(remote, cohort, batched=False)
    assert batched["issue_round_trips"] <= 2
    assert batched["pickup_round_trips"] == 1
    assert scalar["issue_round_trips"] >= cohort
    assert scalar["pickup_round_trips"] == cohort


# ---------------------------------------------------------------------------
# Script entry point: tables + BENCH_net.json baseline
# ---------------------------------------------------------------------------


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced-iteration CI mode: tiny workload, same assertions",
    )
    parser.add_argument(
        "--output",
        default=os.environ.get("BENCH_OUTPUT", str(_DEFAULT_OUTPUT)),
        help="path of the JSON baseline to write",
    )
    args = parser.parse_args(argv)
    num_chunks = 64 if args.smoke else INGEST_CHUNKS
    cohort = 8 if args.smoke else GRANT_BURST

    results: Dict[str, object] = {"smoke": args.smoke}

    with _remote_stack() as remote:
        batched = _run_ingest(remote, num_chunks, scalar_wire=False)
        queries = _run_queries(remote, batched["uuid"], num_chunks)
    with _remote_stack() as remote:
        scalar = _run_ingest(remote, num_chunks, scalar_wire=True)
    reduction = scalar["round_trips_per_batch"] / batched["round_trips_per_batch"]
    batched.pop("uuid")
    scalar.pop("uuid")

    ingest_table = ResultTable(
        title=(
            f"Wire round trips per ingest batch — {num_chunks} chunks, "
            f"{CHUNKS_PER_BATCH} chunks/batch, real TCP socket"
        ),
        columns=["wire", "round trips/batch", "total", "records/s", "wall clock"],
    )
    for label, row in (("scalar insert_chunk", scalar), ("pipelined insert_chunks", batched)):
        ingest_table.add_row(
            label,
            f"{row['round_trips_per_batch']:.1f}",
            f"{row['wire_round_trips']:.0f}",
            f"{row['records_per_s']:.0f}",
            format_duration(row["seconds"]),
        )
    ingest_table.add_note(f"round-trip reduction: {reduction:.1f}x (target >= 10x)")
    ingest_table.print()

    query_table = ResultTable(
        title="Query wire round trips (whole stream)",
        columns=["query", "payload", "round trips"],
    )
    query_table.add_row(
        "get_range", f"{queries['chunks_fetched']:.0f} chunks", f"{queries['range_round_trips']:.0f}"
    )
    query_table.add_row(
        "stat_range", f"{queries['plan_nodes']:.0f} plan nodes", f"{queries['stat_round_trips']:.0f}"
    )
    query_table.add_note("target: one round trip per query, whatever the payload size")
    query_table.print()

    with _remote_stack() as remote:
        grant_batched = _run_grant_burst(remote, cohort, batched=True)
    with _remote_stack() as remote:
        grant_scalar = _run_grant_burst(remote, cohort, batched=False)
    grant_table = ResultTable(
        title=f"Grant burst — {cohort} principals over the wire",
        columns=["path", "issue round trips", "pickup round trips", "issue wall clock"],
    )
    for label, row in (
        ("scalar put_grant", grant_scalar),
        ("put_grants + pipeline", grant_batched),
    ):
        grant_table.add_row(
            label,
            f"{row['issue_round_trips']:.0f}",
            f"{row['pickup_round_trips']:.0f}",
            format_duration(row["issue_seconds"]),
        )
    grant_table.add_note(
        f"issue reduction: {grant_scalar['issue_round_trips'] / max(1, grant_batched['issue_round_trips']):.1f}x"
    )
    grant_table.print()

    results["ingest"] = {
        "chunks": num_chunks,
        "chunks_per_batch": CHUNKS_PER_BATCH,
        "scalar": scalar,
        "pipelined": batched,
        "round_trip_reduction": round(reduction, 2),
    }
    results["queries"] = queries
    results["grant_burst"] = {
        "scalar": grant_scalar,
        "batched": grant_batched,
    }

    print(f"baseline written to {write_json_report(args.output, results)}")


if __name__ == "__main__":
    main()
