"""Observability plane: tracing overhead, spans per request, scrape cost.

PR 9 added end-to-end request tracing and a unified metrics plane across
the client/router/engine/storage tiers.  Telemetry that slows the hot path
gets turned off in production, so the headline claim is *zero cost when
disabled*: with tracing off the per-frame path takes no clock reads, makes
no allocations, and records no spans.  This benchmark pins that down three
ways:

1. **Disabled-parity** (deterministic, gated): a fixed workload run with
   tracing off records exactly zero spans, and its round-trip and
   payload-copy counters are identical to the tracing-on arm — the trace
   context rides the existing header encode, costing no extra frames and
   no extra copies.
2. **Spans per request** (deterministic, gated): one traced ``stat_range``
   against an engine over a remote storage node yields one *connected*
   span tree (single root, no orphans) spanning the client, engine, and
   storage tiers, with a call-sequence-deterministic span count — the
   tracing analogue of the gated round-trips-per-query counters.
3. **Scrape cost** (deterministic, gated): ``stats`` and ``trace_dump``
   each pull a whole node's telemetry in exactly one round trip.
4. **Overhead** (wall clock, informational): ns/op for a ping workload,
   tracing off vs. on.

Run as a script to print the tables and refresh ``BENCH_obs.json``:

    PYTHONPATH=src python benchmarks/bench_observability.py

``--smoke`` shrinks only the wall-clock workload; the gated counters are
measured on fixed call sequences.  The assertions also run under pytest.
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path
from typing import Dict

from repro import ServerEngine, StreamConfig, TimeCrypt
from repro.access.keystore import TokenStore
from repro.bench.reporting import ResultTable, write_json_report
from repro.net.client import RemoteServerClient
from repro.net.framing import MEMORY_COUNTERS
from repro.net.messages import Request
from repro.net.server import TimeCryptTCPServer
from repro.obs import SPANS
from repro.storage.memory import MemoryStore
from repro.storage.node import StorageNodeServer
from repro.storage.remote import RemoteKeyValueStore
from repro.util.timeutil import TimeRange

from conftest import scaled

#: Ops for the wall-clock overhead arms (scaled; smoke shrinks it).
OVERHEAD_OPS = scaled(2000, minimum=200)
#: Ops for the deterministic parity arms (fixed: gated).
PARITY_OPS = 32
#: Chunks behind the span-tree query (fixed: gated).
TREE_CHUNKS = 8
CHUNK_INTERVAL = 1_000

_DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


# ---------------------------------------------------------------------------
# 1. Disabled-parity (deterministic)
# ---------------------------------------------------------------------------


def _parity_arm(tracing: bool) -> Dict[str, int]:
    """A fixed ping workload; spans, round trips, and wire copies recorded."""
    SPANS.clear()
    spans_before = SPANS.recorded
    engine = ServerEngine()
    with TimeCryptTCPServer(engine, tracing=tracing) as server:
        host, port = server.address
        MEMORY_COUNTERS.reset()
        with RemoteServerClient(host, port, tracing=tracing) as remote:
            for _ in range(PARITY_OPS):
                remote.ping()
            round_trips = remote.wire_stats.round_trips
        payload_copies = MEMORY_COUNTERS.payload_copies
    return {
        "ops": PARITY_OPS,
        "spans_recorded": SPANS.recorded - spans_before,
        "round_trips": round_trips,
        "payload_copies": payload_copies,
    }


def disabled_parity() -> Dict[str, object]:
    off = _parity_arm(tracing=False)
    on = _parity_arm(tracing=True)
    return {
        "off": off,
        "on": on,
        # Gated booleans: the off arm is span-free, and enabling tracing
        # changes neither the frame count nor the copy count of the same
        # call sequence (the context rides the existing header encode).
        "off_spans": off["spans_recorded"],
        "round_trip_parity": int(off["round_trips"] == on["round_trips"]),
        "copy_parity": int(off["payload_copies"] == on["payload_copies"]),
        "on_spans_per_op": on["spans_recorded"] // on["ops"],
    }


# ---------------------------------------------------------------------------
# 2. Spans per request, connected across tiers (deterministic)
# ---------------------------------------------------------------------------


def _encrypted_stream(num_chunks: int):
    scratch = ServerEngine()
    owner = TimeCrypt(server=scratch, owner_id="bench")
    config = StreamConfig(chunk_interval=CHUNK_INTERVAL, index_fanout=4)
    uuid = owner.create_stream(metric="obs-bench", config=config)
    owner.insert_records(
        uuid, [(t, float(t % 97)) for t in range(0, num_chunks * CHUNK_INTERVAL, 100)]
    )
    owner.flush(uuid)
    chunks = [scratch.get_chunk(uuid, position) for position in range(num_chunks)]
    return scratch.stream_metadata(uuid), chunks


def span_tree() -> Dict[str, object]:
    """One traced stat_range across client → engine → storage; tree shape."""
    metadata, chunks = _encrypted_stream(TREE_CHUNKS)
    backing = MemoryStore()
    with StorageNodeServer(backing, node_name="storage-0") as node:
        host, port = node.address
        store = RemoteKeyValueStore(host, port, timeout=30.0, tracing=True)
        engine = ServerEngine(store=store, token_store=TokenStore(store=store))
        with TimeCryptTCPServer(engine, node_name="engine-0", tracing=True) as server:
            with RemoteServerClient(*server.address, tracing=True) as remote:
                remote.create_stream(metadata)
                remote.insert_chunks(chunks)
                engine.reset_stream_cache()  # force the query back to storage
                SPANS.clear()
                remote.stat_range(metadata.uuid, TimeRange(0, TREE_CHUNKS * CHUNK_INTERVAL))
                spans = SPANS.spans()
                dump = remote.call_many([Request("trace_dump")])[0]

    root = next(
        span
        for span in spans
        if span["kind"] == "client" and span["op"] == "stat_range" and span["parent_id"] is None
    )
    tree = [span for span in spans if span["trace_id"] == root["trace_id"]]
    by_id = {span["span_id"]: span for span in tree}
    roots = [span for span in tree if span["parent_id"] is None]
    orphans = [
        span for span in tree if span["parent_id"] is not None and span["parent_id"] not in by_id
    ]
    tiers = sorted({span["node"].split(":")[0].split("-")[0] for span in tree})
    return {
        "query_chunks": TREE_CHUNKS,
        "spans_per_stat_range": len(tree),
        "connected": int(len(roots) == 1 and not orphans),
        "tiers": tiers,
        "storage_spans": len(
            [span for span in tree if span["kind"] == "server" and span["op"].startswith("kv_")]
        ),
        "retrievable_via_trace_dump": int(
            dump.ok
            and any(span["trace_id"] == root["trace_id"] for span in dump.result["spans"])
        ),
    }


# ---------------------------------------------------------------------------
# 3. Scrape cost (deterministic)
# ---------------------------------------------------------------------------


def scrape_cost() -> Dict[str, int]:
    """stats / trace_dump each cost one round trip, on both server tiers."""
    engine = ServerEngine()
    counters: Dict[str, int] = {}
    with TimeCryptTCPServer(engine) as server:
        with RemoteServerClient(*server.address) as remote:
            before = remote.wire_stats.round_trips
            assert remote.call_many([Request("stats")])[0].ok
            counters["engine_stats_round_trips"] = remote.wire_stats.round_trips - before
            before = remote.wire_stats.round_trips
            assert remote.call_many([Request("trace_dump")])[0].ok
            counters["engine_trace_dump_round_trips"] = remote.wire_stats.round_trips - before
    with StorageNodeServer(MemoryStore()) as node:
        with RemoteServerClient(*node.address) as remote:
            before = remote.wire_stats.round_trips
            assert remote.call_many([Request("stats")])[0].ok
            counters["storage_stats_round_trips"] = remote.wire_stats.round_trips - before
    return counters


# ---------------------------------------------------------------------------
# 4. Wall-clock overhead (informational)
# ---------------------------------------------------------------------------


def overhead(num_ops: int) -> Dict[str, Dict[str, float]]:
    arms: Dict[str, Dict[str, float]] = {}
    for label, tracing in (("off", False), ("on", True)):
        engine = ServerEngine()
        with TimeCryptTCPServer(engine, tracing=tracing) as server:
            host, port = server.address
            with RemoteServerClient(host, port, tracing=tracing) as remote:
                remote.ping()  # connection warm-up outside the window
                SPANS.clear()
                begin = time.perf_counter()
                for _ in range(num_ops):
                    remote.ping()
                elapsed = time.perf_counter() - begin
        arms[label] = {
            "ops": num_ops,
            "ns_per_op": elapsed / num_ops * 1e9,
            "ops_per_s": num_ops / elapsed if elapsed else 0.0,
        }
    off_ns, on_ns = arms["off"]["ns_per_op"], arms["on"]["ns_per_op"]
    arms["overhead_pct"] = {"value": (on_ns - off_ns) / off_ns * 100.0 if off_ns else 0.0}
    return arms


# ---------------------------------------------------------------------------
# Assertions (collected by pytest, reused by the script)
# ---------------------------------------------------------------------------


def test_tracing_off_is_free_on_the_gated_counters():
    parity = disabled_parity()
    assert parity["off_spans"] == 0
    assert parity["round_trip_parity"] == 1
    assert parity["copy_parity"] == 1
    # Tracing on: exactly one client and one server span per ping.
    assert parity["on_spans_per_op"] == 2


def test_stat_range_yields_one_connected_tree():
    tree = span_tree()
    assert tree["connected"] == 1
    assert tree["tiers"] == ["client", "engine", "storage"]
    assert tree["storage_spans"] >= 1
    assert tree["retrievable_via_trace_dump"] == 1


def test_scrapes_cost_one_round_trip():
    counters = scrape_cost()
    assert all(value == 1 for value in counters.values())


# ---------------------------------------------------------------------------
# Script entry point: tables + BENCH_obs.json baseline
# ---------------------------------------------------------------------------


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced-iteration CI mode: small wall-clock workload, same gated counters",
    )
    parser.add_argument(
        "--output",
        default=os.environ.get("BENCH_OUTPUT", str(_DEFAULT_OUTPUT)),
        help="path of the JSON baseline to write",
    )
    args = parser.parse_args(argv)
    num_ops = 200 if args.smoke else OVERHEAD_OPS

    results: Dict[str, object] = {"smoke": args.smoke}

    parity = disabled_parity()
    parity_table = ResultTable(
        title=f"Tracing-disabled parity — {PARITY_OPS} pings, library counters",
        columns=["counter", "off", "on"],
    )
    for field in ("spans_recorded", "round_trips", "payload_copies"):
        parity_table.add_row(field, str(parity["off"][field]), str(parity["on"][field]))
    parity_table.add_note("acceptance: off arm records 0 spans; frame and copy bills identical")
    parity_table.print()
    results["parity"] = parity

    tree = span_tree()
    tree_table = ResultTable(
        title=f"Span tree — one stat_range over {TREE_CHUNKS} chunks, engine over remote storage",
        columns=["counter", "value"],
    )
    tree_table.add_row("spans per stat_range", str(tree["spans_per_stat_range"]))
    tree_table.add_row("connected (one root, no orphans)", str(bool(tree["connected"])))
    tree_table.add_row("tiers in the tree", ", ".join(tree["tiers"]))
    tree_table.add_row("storage server spans", str(tree["storage_spans"]))
    tree_table.add_note("client → engine → storage, stitched by the wire trace context")
    tree_table.print()
    results["tree"] = tree

    scrapes = scrape_cost()
    scrape_table = ResultTable(
        title="Telemetry scrape cost (round trips per pull)",
        columns=["scrape", "round trips"],
    )
    for name, value in scrapes.items():
        scrape_table.add_row(name, str(value))
    scrape_table.print()
    results["scrapes"] = scrapes

    arms = overhead(num_ops)
    overhead_table = ResultTable(
        title=f"Tracing overhead — {num_ops} pings over loopback (wall clock)",
        columns=["arm", "ns/op", "ops/s"],
    )
    for label in ("off", "on"):
        overhead_table.add_row(
            label, f"{arms[label]['ns_per_op']:.0f}", f"{arms[label]['ops_per_s']:.0f}"
        )
    overhead_table.add_note(
        f"tracing-on overhead {arms['overhead_pct']['value']:+.1f}% (informational; loopback noise dominates)"
    )
    overhead_table.print()
    results["overhead"] = arms

    print(f"baseline written to {write_json_report(args.output, results)}")


if __name__ == "__main__":
    main()
