"""Round trips and throughput of the remote storage node tier.

PR 2 made cluster batches one backend call per owning node; PR 3 pipelined
the client/engine wire.  This benchmark closes the loop on the storage side:
a :class:`~repro.storage.cluster.StorageCluster` whose nodes are
:class:`~repro.storage.remote.RemoteKeyValueStore` clients talking to real
:class:`~repro.storage.node.StorageNodeServer` TCP processes, so replication
itself crosses sockets.  Three claims are measured:

1. **Cluster batches** — a ``multi_put``/``multi_get`` of N keys costs at
   most ``replication_factor``+1 wire round trips *per node* (one
   ``kv_multi_*`` request per owning replica, plus re-route slack), not
   n·RF like the scalar loop.
2. **Ingest** — end-to-end encrypted ingest through a ServerEngine backed
   by the remote cluster stays within the same per-node round-trip budget
   per delivered chunk batch, and its throughput is compared against the
   identical in-process cluster to show the socket tax.
3. **Reads and grant bursts** — a whole-stream range read, a stat query,
   and a K-principal grant burst each cost a handful of per-node round
   trips, independent of K and of the number of chunks touched.

Run as a script to print the tables and refresh ``BENCH_remote.json``:

    PYTHONPATH=src python benchmarks/bench_remote_cluster.py

``--smoke`` shrinks the workload for CI smoke jobs (round-trip counts are
deterministic, so the assertions still hold); ``BENCH_SCALE`` scales the
full run.  The assertions also run under plain pytest:
``pytest benchmarks/bench_remote_cluster.py``.
"""

from __future__ import annotations

import argparse
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

from repro import Principal, ServerEngine, TimeCrypt
from repro.access.keystore import TokenStore
from repro.bench.reporting import ResultTable, format_duration, write_json_report
from repro.storage.cluster import StorageCluster
from repro.storage.memory import MemoryStore
from repro.storage.node import StorageNodeServer
from repro.storage.remote import RemoteKeyValueStore
from repro.timeseries.stream import StreamConfig
from repro.util.timeutil import TimeRange

from conftest import scaled

NUM_NODES = 3
REPLICATION_FACTOR = 2

#: Direct KV batch workload.
KV_KEYS = scaled(2000, minimum=200)
#: Ingest workload: short chunks so per-chunk overhead dominates.
INGEST_CHUNKS = scaled(192, minimum=64)
POINTS_PER_CHUNK = 4
CHUNK_INTERVAL_MS = 1_000
CHUNKS_PER_BATCH = 32

GRANT_BURST = scaled(16, minimum=8)

_DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_remote.json"


class _RemoteCluster:
    """NUM_NODES storage-node TCP servers plus a cluster dialing them."""

    def __init__(self) -> None:
        self.backing = {f"node-{index}": MemoryStore() for index in range(NUM_NODES)}
        self.servers = {
            name: StorageNodeServer(store).start() for name, store in self.backing.items()
        }
        addresses = {name: server.address for name, server in self.servers.items()}
        self.cluster = StorageCluster(
            num_nodes=NUM_NODES,
            replication_factor=REPLICATION_FACTOR,
            store_factory=lambda name: RemoteKeyValueStore(*addresses[name], timeout=10.0),
        )

    def per_node_round_trips(self) -> Dict[str, int]:
        return {
            name: self.cluster.node_store(name).wire_stats.round_trips
            for name in self.cluster.node_names
        }

    def reset_round_trips(self) -> None:
        for name in self.cluster.node_names:
            self.cluster.node_store(name).wire_stats.reset()

    def close(self) -> None:
        self.cluster.close()
        for server in self.servers.values():
            server.stop()


@contextmanager
def _remote_cluster() -> Iterator[_RemoteCluster]:
    stack = _RemoteCluster()
    try:
        yield stack
    finally:
        stack.close()


def _ingest_records(num_chunks: int) -> List[Tuple[int, float]]:
    step = CHUNK_INTERVAL_MS // POINTS_PER_CHUNK
    return [
        (t, float((t // step) % 100)) for t in range(0, num_chunks * CHUNK_INTERVAL_MS, step)
    ]


def _stream_config() -> StreamConfig:
    return StreamConfig(chunk_interval=CHUNK_INTERVAL_MS)


def _run_kv_batches(stack: _RemoteCluster, num_keys: int, scalar: bool) -> Dict[str, float]:
    """Direct cluster write/read of ``num_keys``; per-node wire accounting."""
    items = [(f"kv/{'s' if scalar else 'b'}/{index:06d}".encode(), bytes(64)) for index in range(num_keys)]
    stack.reset_round_trips()
    begin = time.perf_counter()
    if scalar:
        for key, value in items:
            stack.cluster.put(key, value)
        for key, _value in items:
            stack.cluster.get(key)
    else:
        stack.cluster.multi_put(items)
        stack.cluster.multi_get([key for key, _ in items])
    elapsed = time.perf_counter() - begin
    per_node = stack.per_node_round_trips()
    return {
        "keys": num_keys,
        "seconds": elapsed,
        "keys_per_s": (2 * num_keys) / elapsed if elapsed else 0.0,
        "max_node_round_trips": max(per_node.values()),
        "total_round_trips": sum(per_node.values()),
    }


def _run_ingest(cluster, num_chunks: int, stack: _RemoteCluster = None) -> Dict[str, float]:
    """Encrypted ingest through an engine over ``cluster``; wire accounting optional."""
    engine = ServerEngine(store=cluster, token_store=TokenStore(cluster))
    owner = TimeCrypt(server=engine, owner_id="bench")
    uuid = owner.create_stream(metric="remote-bench", config=_stream_config())
    records = _ingest_records(num_chunks)
    batch_records = CHUNKS_PER_BATCH * POINTS_PER_CHUNK
    num_batches = 0
    if stack is not None:
        stack.reset_round_trips()
    begin = time.perf_counter()
    for offset in range(0, len(records), batch_records):
        owner.insert_records(uuid, records[offset : offset + batch_records])
        num_batches += 1
    # The batched deliveries are the claim under test; the final flush seals
    # one trailing partial chunk through the scalar path and is accounted
    # separately.
    batch_trips = max(stack.per_node_round_trips().values()) if stack is not None else 0
    owner.flush(uuid)
    elapsed = time.perf_counter() - begin
    result: Dict[str, float] = {
        "num_chunks": num_chunks,
        "num_batches": num_batches,
        "seconds": elapsed,
        "records_per_s": len(records) / elapsed if elapsed else 0.0,
        "uuid": uuid,
        "engine": engine,
        "owner": owner,
    }
    if stack is not None:
        per_node = stack.per_node_round_trips()
        result["max_node_round_trips"] = max(per_node.values())
        result["max_node_round_trips_per_batch"] = batch_trips / num_batches
        result["flush_round_trips"] = max(per_node.values()) - batch_trips
    return result


def _run_queries(stack: _RemoteCluster, engine, uuid: str, num_chunks: int) -> Dict[str, float]:
    stack.reset_round_trips()
    chunks = engine.get_range(uuid, TimeRange(0, num_chunks * CHUNK_INTERVAL_MS))
    range_trips = max(stack.per_node_round_trips().values())
    stack.reset_round_trips()
    engine.stat_range(uuid, TimeRange(0, num_chunks * CHUNK_INTERVAL_MS))
    stat_trips = max(stack.per_node_round_trips().values())
    return {
        "chunks_fetched": len(chunks),
        "range_max_node_round_trips": range_trips,
        "stat_max_node_round_trips": stat_trips,
    }


def _run_grant_burst(stack: _RemoteCluster, owner: TimeCrypt, uuid: str, cohort_size: int) -> Dict[str, float]:
    cohort = [Principal.create(f"principal-{index}") for index in range(cohort_size)]
    for principal in cohort:
        owner.register_principal(principal)
    horizon = 4 * CHUNK_INTERVAL_MS
    stack.reset_round_trips()
    begin = time.perf_counter()
    owner.grant_access_many(uuid, [(p.principal_id, 0, horizon, None) for p in cohort])
    elapsed = time.perf_counter() - begin
    per_node = stack.per_node_round_trips()
    return {
        "principals": cohort_size,
        "seconds": elapsed,
        "max_node_round_trips": max(per_node.values()),
        "total_round_trips": sum(per_node.values()),
    }


# ---------------------------------------------------------------------------
# Assertions (collected by pytest, reused by the script)
# ---------------------------------------------------------------------------


def test_cluster_batch_costs_rf_round_trips_per_node():
    """An N-key cluster batch costs ≤ RF+1 round trips per node, not n·RF."""
    num_keys = min(KV_KEYS, 400)
    with _remote_cluster() as stack:
        batched = _run_kv_batches(stack, num_keys, scalar=False)
    with _remote_cluster() as stack:
        scalar = _run_kv_batches(stack, min(num_keys, 200), scalar=True)
    # One kv_multi_put + one kv_multi_get per node (re-route slack allowed).
    assert batched["max_node_round_trips"] <= 2 * (REPLICATION_FACTOR + 1), batched
    # The scalar loop pays roughly one round trip per key per replica.
    assert scalar["total_round_trips"] >= scalar["keys"], scalar


def test_ingest_batches_stay_in_round_trip_budget():
    """Per delivered chunk batch, each node sees ≤ RF+1 wire round trips."""
    num_chunks = min(INGEST_CHUNKS, 96)
    with _remote_cluster() as stack:
        ingest = _run_ingest(stack.cluster, num_chunks, stack=stack)
        assert ingest["max_node_round_trips_per_batch"] <= REPLICATION_FACTOR + 1, ingest


def test_queries_and_grant_bursts_are_constant_round_trips():
    """Whole-stream reads and K-principal grant bursts cost O(1) trips/node."""
    num_chunks = min(INGEST_CHUNKS, 96)
    cohort = min(GRANT_BURST, 8)
    with _remote_cluster() as stack:
        ingest = _run_ingest(stack.cluster, num_chunks, stack=stack)
        queries = _run_queries(stack, ingest["engine"], ingest["uuid"], num_chunks)
        assert queries["chunks_fetched"] == num_chunks
        assert queries["range_max_node_round_trips"] <= REPLICATION_FACTOR + 1
        assert queries["stat_max_node_round_trips"] <= REPLICATION_FACTOR + 1
        burst = _run_grant_burst(stack, ingest["owner"], ingest["uuid"], cohort)
        # One token-store prefix scan page + one multi_put per node, with
        # slack for paging — but never one round trip per principal.
        assert burst["max_node_round_trips"] <= REPLICATION_FACTOR + 3, burst
        assert burst["max_node_round_trips"] < cohort


# ---------------------------------------------------------------------------
# Script entry point: tables + BENCH_remote.json baseline
# ---------------------------------------------------------------------------


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced-iteration CI mode: tiny workload, same assertions",
    )
    parser.add_argument(
        "--output",
        default=os.environ.get("BENCH_OUTPUT", str(_DEFAULT_OUTPUT)),
        help="path of the JSON baseline to write",
    )
    args = parser.parse_args(argv)
    num_keys = 200 if args.smoke else KV_KEYS
    num_chunks = 64 if args.smoke else INGEST_CHUNKS
    cohort = 8 if args.smoke else GRANT_BURST

    results: Dict[str, object] = {
        "smoke": args.smoke,
        "topology": {"nodes": NUM_NODES, "replication_factor": REPLICATION_FACTOR},
    }

    # -- direct cluster batches ---------------------------------------------------
    with _remote_cluster() as stack:
        batched = _run_kv_batches(stack, num_keys, scalar=False)
    with _remote_cluster() as stack:
        scalar = _run_kv_batches(stack, min(num_keys, max(200, num_keys // 10)), scalar=True)
    kv_table = ResultTable(
        title=(
            f"Cluster batch wire round trips — {NUM_NODES} remote TCP nodes, "
            f"RF={REPLICATION_FACTOR}"
        ),
        columns=["path", "keys", "max trips/node", "total trips", "keys/s", "wall clock"],
    )
    for label, row in (("scalar put+get loop", scalar), ("multi_put + multi_get", batched)):
        kv_table.add_row(
            label,
            f"{row['keys']:.0f}",
            f"{row['max_node_round_trips']:.0f}",
            f"{row['total_round_trips']:.0f}",
            f"{row['keys_per_s']:.0f}",
            format_duration(row["seconds"]),
        )
    kv_table.add_note(
        f"target: <= RF+1 = {REPLICATION_FACTOR + 1} round trips per node per batch, not n*RF"
    )
    kv_table.print()
    results["kv_batch"] = {"scalar": scalar, "batched": batched}

    # -- end-to-end ingest: remote vs in-process cluster --------------------------
    with _remote_cluster() as stack:
        remote_ingest = _run_ingest(stack.cluster, num_chunks, stack=stack)
        queries = _run_queries(stack, remote_ingest["engine"], remote_ingest["uuid"], num_chunks)
        burst = _run_grant_burst(stack, remote_ingest["owner"], remote_ingest["uuid"], cohort)
    inproc_cluster = StorageCluster(num_nodes=NUM_NODES, replication_factor=REPLICATION_FACTOR)
    inproc_ingest = _run_ingest(inproc_cluster, num_chunks)
    inproc_cluster.close()
    for row in (remote_ingest, inproc_ingest):
        row.pop("engine"), row.pop("owner"), row.pop("uuid")

    ingest_table = ResultTable(
        title=(
            f"Encrypted ingest through the cluster — {num_chunks} chunks, "
            f"{CHUNKS_PER_BATCH} chunks/batch"
        ),
        columns=["cluster", "records/s", "max trips/node/batch", "wall clock"],
    )
    ingest_table.add_row(
        "in-process nodes",
        f"{inproc_ingest['records_per_s']:.0f}",
        "-",
        format_duration(inproc_ingest["seconds"]),
    )
    ingest_table.add_row(
        "remote TCP nodes",
        f"{remote_ingest['records_per_s']:.0f}",
        f"{remote_ingest['max_node_round_trips_per_batch']:.2f}",
        format_duration(remote_ingest["seconds"]),
    )
    ingest_table.add_note(
        "socket tax: "
        f"{inproc_ingest['records_per_s'] / max(1.0, remote_ingest['records_per_s']):.2f}x "
        "slower than in-process at identical round-trip counts"
    )
    ingest_table.print()
    results["ingest"] = {"remote": remote_ingest, "in_process": inproc_ingest}

    query_table = ResultTable(
        title="Read path and grant burst over the remote cluster",
        columns=["operation", "payload", "max trips/node"],
    )
    query_table.add_row(
        "get_range", f"{queries['chunks_fetched']:.0f} chunks",
        f"{queries['range_max_node_round_trips']:.0f}",
    )
    query_table.add_row(
        "stat_range", "whole stream", f"{queries['stat_max_node_round_trips']:.0f}"
    )
    query_table.add_row(
        "grant burst", f"{burst['principals']:.0f} principals",
        f"{burst['max_node_round_trips']:.0f}",
    )
    query_table.add_note("targets: constant per-node round trips, independent of payload size")
    query_table.print()
    results["queries"] = queries
    results["grant_burst"] = burst

    print(f"baseline written to {write_json_report(args.output, results)}")


if __name__ == "__main__":
    main()
