"""Mixed-traffic QoS on a real socket: weighted dispatch + typed shedding.

PR 7 put a two-class scheduler and credit-based flow control into
:class:`~repro.net.server.TimeCryptTCPServer`.  Two claims are measured
over loopback TCP:

1. **Interactive latency under bulk pressure** — with flooder clients
   saturating the dispatch pool with ``insert_chunks`` batches, the p99 of
   a small ``stat_range`` must improve ≥ 3× under weighted dispatch vs.
   the legacy FIFO pool (``scheduling="fifo"``), because interactive
   frames no longer queue behind every buffered bulk frame.
2. **Typed overload shedding** — flooding a server with a tiny bulk queue
   must answer *every* correlation id: accepted requests succeed, refused
   ones get a typed ``overloaded`` with a retry hint (zero silent drops,
   zero untyped errors), liveness pings still answer, and a client with
   retry budget drains every shed request once the burst passes.

Run as a script to print the tables and refresh ``BENCH_sched.json``:

    PYTHONPATH=src python benchmarks/bench_scheduler.py

``--smoke`` shrinks the workload for CI smoke jobs; the shedding
invariants are deterministic at any scale, while the ≥ 3× p99 claim is
asserted only on full runs (wall clock is not gated in CI).  The
deterministic assertions also run under plain pytest:
``pytest benchmarks/bench_scheduler.py``.
"""

from __future__ import annotations

import argparse
import os
import threading
import time
from pathlib import Path
from typing import Dict, List

from repro import ServerEngine, TimeCrypt
from repro.bench.reporting import ResultTable, write_json_report
from repro.net.client import RemoteServerClient
from repro.net.messages import Request
from repro.net.server import TimeCryptTCPServer
from repro.timeseries.serialization import encode_encrypted_chunk
from repro.timeseries.stream import StreamConfig
from repro.util.timeutil import TimeRange

from conftest import scaled

CHUNK_INTERVAL_MS = 1_000
TREE_HEIGHT = 16

#: Latency experiment: flooder clients × chunks per delivered bulk batch.
LATENCY_WORKERS = 2
FLOOD_CLIENTS = scaled(16, minimum=6)
FLOOD_CHUNKS_PER_BATCH = 8
FLOOD_POINTS_PER_CHUNK = 8
PROBE_CHUNKS = 64
PROBE_ITERS = scaled(240, minimum=40)

#: Overload experiment: offered bulk burst against a tiny queue.
OVERLOAD_OFFERED = scaled(64, minimum=32)
OVERLOAD_QUEUE_LIMIT = 4
OVERLOAD_RETRY_AFTER_MS = 15

_DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sched.json"


def _stream_config() -> StreamConfig:
    return StreamConfig(chunk_interval=CHUNK_INTERVAL_MS, key_tree_height=TREE_HEIGHT)


def _records(start_ms: int, num_chunks: int, points_per_chunk: int) -> List[tuple]:
    step = CHUNK_INTERVAL_MS // points_per_chunk
    return [
        (t, float(t % 101))
        for t in range(start_ms, start_ms + num_chunks * CHUNK_INTERVAL_MS, step)
    ]


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


# -- experiment 1: interactive p99 under bulk flood ----------------------------------


def _flood_worker(
    host: str, port: int, index: int, stop: threading.Event, batches: List[int]
) -> None:
    """One bulk writer: its own connection, its own stream, batch after batch."""
    with RemoteServerClient(host, port, flow_control=False, overload_retries=8) as client:
        owner = TimeCrypt(server=client, owner_id=f"flood-{index}")
        uuid = owner.create_stream(metric=f"bulk-{index}", config=_stream_config())
        offset = 0
        while not stop.is_set():
            owner.insert_records(
                uuid, _records(offset, FLOOD_CHUNKS_PER_BATCH, FLOOD_POINTS_PER_CHUNK)
            )
            offset += FLOOD_CHUNKS_PER_BATCH * CHUNK_INTERVAL_MS
            batches[index] += 1


def _run_latency_arm(scheduling: str, probe_iters: int, flood_clients: int) -> Dict[str, float]:
    engine = ServerEngine()
    with TimeCryptTCPServer(
        engine, max_workers=LATENCY_WORKERS, scheduling=scheduling, bulk_queue_limit=512
    ) as server:
        host, port = server.address
        with RemoteServerClient(host, port) as probe:
            owner = TimeCrypt(server=probe, owner_id="probe")
            uuid = owner.create_stream(metric="interactive", config=_stream_config())
            owner.insert_records(uuid, _records(0, PROBE_CHUNKS, 4))
            owner.flush(uuid)
            horizon = TimeRange(0, PROBE_CHUNKS * CHUNK_INTERVAL_MS)

            stop = threading.Event()
            batches = [0] * flood_clients
            flooders = [
                threading.Thread(target=_flood_worker, args=(host, port, i, stop, batches))
                for i in range(flood_clients)
            ]
            for thread in flooders:
                thread.start()
            try:
                time.sleep(0.3)  # let the flood reach steady state
                probe.wire_stats.reset()
                latencies = []
                flood_begin = time.perf_counter()
                for _ in range(probe_iters):
                    begin = time.perf_counter()
                    probe.stat_range(uuid, horizon)
                    latencies.append(time.perf_counter() - begin)
                flood_seconds = time.perf_counter() - flood_begin + 0.3
                probe_round_trips = probe.wire_stats.round_trips
                flood_live = any(thread.is_alive() for thread in flooders)
            finally:
                stop.set()
                for thread in flooders:
                    thread.join(timeout=30)
            credits_restored = (
                probe.credit_window > 0 and probe.credits_available == probe.credit_window
            )
    return {
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "mean_ms": sum(latencies) / len(latencies) * 1e3,
        "flood_batches": sum(batches),
        "flood_batches_per_s": sum(batches) / flood_seconds,
        "flood_live_throughout": flood_live,
        "probe_round_trips_per_stat": probe_round_trips / probe_iters,
        "credits_restored": credits_restored,
    }


# -- experiment 2: typed shedding under a saturating burst ---------------------------


def _build_replay_chunks(count: int):
    """``count`` independent single-chunk streams, built offline for replay."""
    local = ServerEngine()
    owner = TimeCrypt(server=local, owner_id="burst")
    replays = []
    for index in range(count):
        uuid = owner.create_stream(metric=f"burst-{index}", config=_stream_config())
        owner.insert_records(uuid, _records(0, 1, 8))
        owner.flush(uuid)
        chunks = local.get_range(uuid, TimeRange(0, CHUNK_INTERVAL_MS))
        replays.append((local.stream_metadata(uuid), chunks))
    return replays


def _run_overload_arm(offered: int) -> Dict[str, object]:
    replays = _build_replay_chunks(offered)
    engine = ServerEngine()
    with TimeCryptTCPServer(
        engine,
        max_workers=1,
        bulk_queue_limit=OVERLOAD_QUEUE_LIMIT,
        retry_after_ms=OVERLOAD_RETRY_AFTER_MS,
    ) as server:
        host, port = server.address
        with RemoteServerClient(host, port) as setup:
            for metadata, _chunks in replays:
                setup.create_stream(metadata)
        requests = [
            Request("insert_chunks", {}, [encode_encrypted_chunk(c) for c in chunks])
            for _metadata, chunks in replays
        ]
        with RemoteServerClient(host, port, flow_control=False, overload_retries=0) as flood:
            responses = flood.call_many(requests)
            # Saturation must not read as an outage: liveness is force-admitted.
            ping_ok = flood.ping()

        ok = [i for i, r in enumerate(responses) if r.ok]
        shed = [i for i, r in enumerate(responses) if not r.ok and r.error_type == "OverloadedError"]
        other = [i for i, r in enumerate(responses) if not r.ok and r.error_type != "OverloadedError"]
        hints = {responses[i].result.get("retry_after_ms") for i in shed}
        stats = server.scheduler_stats()

        # A polite client drains the backlog once the burst passes: resends
        # paced to the advertised queue size, with the capped-backoff retry
        # budget absorbing any overlap with the still-draining worker.
        drained = 0
        if shed:
            with RemoteServerClient(host, port, overload_retries=8) as retry_client:
                for start in range(0, len(shed), OVERLOAD_QUEUE_LIMIT):
                    chunk = [requests[i] for i in shed[start : start + OVERLOAD_QUEUE_LIMIT]]
                    drained += sum(1 for r in retry_client.call_many(chunk) if r.ok)

    return {
        "offered": offered,
        "accepted": len(ok),
        "shed": len(shed),
        "unanswered": offered - len(responses),
        "untyped_errors": len(other),
        "retry_after_ms": sorted(hints) if hints else [],
        "server_shed_matches_client": stats["shed_bulk"] == len(shed),
        "max_depth_bulk": stats["max_depth_bulk"],
        "bulk_queue_limit": OVERLOAD_QUEUE_LIMIT,
        "ping_during_saturation": ping_ok,
        "drained_after_retries": drained,
        "all_drained": drained == len(shed),
    }


# -- deterministic assertions (also collected by pytest) -----------------------------


def test_overload_answers_every_correlation_id():
    outcome = _run_overload_arm(offered=24)
    assert outcome["unanswered"] == 0
    assert outcome["untyped_errors"] == 0
    assert outcome["accepted"] + outcome["shed"] == outcome["offered"]
    assert outcome["server_shed_matches_client"]
    assert outcome["max_depth_bulk"] <= OVERLOAD_QUEUE_LIMIT
    assert outcome["ping_during_saturation"]
    assert outcome["all_drained"]
    assert all(hint == OVERLOAD_RETRY_AFTER_MS for hint in outcome["retry_after_ms"])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny workload for CI")
    parser.add_argument(
        "--output",
        default=os.environ.get("BENCH_OUTPUT", str(_DEFAULT_OUTPUT)),
        help="where to write the JSON baseline",
    )
    args = parser.parse_args()

    probe_iters = 40 if args.smoke else PROBE_ITERS
    flood_clients = 6 if args.smoke else FLOOD_CLIENTS
    offered = 32 if args.smoke else OVERLOAD_OFFERED
    results: Dict[str, object] = {"smoke": bool(args.smoke)}

    arms: Dict[str, Dict[str, float]] = {}
    for scheduling in ("fifo", "weighted"):
        arms[scheduling] = _run_latency_arm(scheduling, probe_iters, flood_clients)
    improvement = arms["fifo"]["p99_ms"] / max(arms["weighted"]["p99_ms"], 1e-9)

    latency_table = ResultTable(
        title=f"stat_range latency under bulk flood ({flood_clients} writers, "
        f"{LATENCY_WORKERS} workers)",
        columns=["dispatch", "p50", "p99", "flood batches/s"],
    )
    for scheduling in ("fifo", "weighted"):
        arm = arms[scheduling]
        latency_table.add_row(
            scheduling,
            f"{arm['p50_ms']:.2f} ms",
            f"{arm['p99_ms']:.2f} ms",
            f"{arm['flood_batches_per_s']:.0f}",
        )
    latency_table.add_note(f"p99 improvement: {improvement:.1f}x (target >= 3x on full runs)")
    latency_table.print()

    overload = _run_overload_arm(offered)
    shed_table = ResultTable(
        title=f"overload shedding — {offered} bulk bursts, queue limit "
        f"{OVERLOAD_QUEUE_LIMIT}, one worker",
        columns=["outcome", "count"],
    )
    shed_table.add_row("accepted", f"{overload['accepted']}")
    shed_table.add_row("shed (typed overloaded)", f"{overload['shed']}")
    shed_table.add_row("unanswered", f"{overload['unanswered']}")
    shed_table.add_row("untyped errors", f"{overload['untyped_errors']}")
    shed_table.add_row("drained by retries", f"{overload['drained_after_retries']}")
    shed_table.add_note("every correlation id answers; sheds carry a retry-after hint")
    shed_table.print()

    # The deterministic contract holds at any scale.
    assert overload["unanswered"] == 0, "silent drop: a correlation id went unanswered"
    assert overload["untyped_errors"] == 0, "a shed surfaced as something other than overloaded"
    assert overload["server_shed_matches_client"], "server and client disagree on shed count"
    assert overload["all_drained"], "retry budget failed to drain the shed backlog"
    for scheduling in ("fifo", "weighted"):
        assert arms[scheduling]["probe_round_trips_per_stat"] == 1.0
        assert arms[scheduling]["credits_restored"]
    if not args.smoke:
        assert overload["shed"] > 0, "full-scale burst produced no sheds"
        assert improvement >= 3.0, (
            f"p99 improved only {improvement:.1f}x under weighted dispatch (target >= 3x)"
        )

    results["latency"] = {
        "workers": LATENCY_WORKERS,
        "flood_clients": flood_clients,
        "probe_iters": probe_iters,
        "fifo": arms["fifo"],
        "weighted": arms["weighted"],
        "p99_improvement": round(improvement, 2),
    }
    results["overload"] = overload
    print(f"baseline written to {write_json_report(args.output, results)}")


if __name__ == "__main__":
    main()
