"""Storage batch round trips: multi_put/multi_get as real backend primitives.

PR 1 made the cipher and index layers batch-friendly (one *logical* write
per touched node); this benchmark tracks the storage half of that story —
the write set of an ingest batch and the node cover of a range query must
land in O(1) backend round trips per backend (one ``multi_put`` /
``multi_get``, or one per healthy node on a cluster), not one round trip
per key:

1. **AppendLogStore ingest** — backend round trips per ingest batch must be
   ≥ 5× lower through the batch pipeline than through per-key puts (the
   pre-batching behaviour, reproduced by the :class:`PerKeyStore` wrapper).
2. **StorageCluster ingest** — scatter-gather groups a write set by owning
   replica: round trips per batch must be ≥ 5× lower than per-key puts.
3. **Query fetch** — a cold-cache statistical range query costs exactly one
   ``multi_get`` on a single backend (and at most one per node on a
   cluster), however many index nodes the plan touches.

Run as a script to print the tables and refresh ``BENCH_storage.json``:

    PYTHONPATH=src python benchmarks/bench_storage_batch.py

``--smoke`` shrinks the workload to a few seconds for CI smoke jobs (the
round-trip ratios are deterministic, so the assertions still hold); the
``BENCH_SCALE`` environment variable scales the full run.  The assertions
also run under plain pytest: ``pytest benchmarks/bench_storage_batch.py``.
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro import ServerEngine, TimeCrypt
from repro.bench.reporting import ResultTable, format_duration, write_json_report
from repro.storage.cluster import StorageCluster
from repro.storage.disk import AppendLogStore
from repro.storage.kv import KeyValueStore
from repro.timeseries.stream import StreamConfig

from conftest import scaled

#: Ingest workload: short chunks so per-chunk storage overhead dominates.
INGEST_CHUNKS = scaled(512, minimum=64)
POINTS_PER_CHUNK = 4
CHUNK_INTERVAL_MS = 1_000
#: Client-side ingest batch: chunks delivered per ``insert_records`` call.
CHUNKS_PER_BATCH = 32
TREE_HEIGHT = 30

CLUSTER_NODES = 3
REPLICATION_FACTOR = 2

_DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_storage.json"


class PerKeyStore(KeyValueStore):
    """Degrades every batch op to the scalar per-key loop.

    Wrapping a real backend in this reproduces the pre-batching round-trip
    pattern (one backend call per key) against the *same* storage engine, so
    the comparison isolates batching from everything else.
    """

    def __init__(self, inner: KeyValueStore) -> None:
        self._inner = inner

    def get(self, key: bytes) -> Optional[bytes]:
        return self._inner.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self._inner.put(key, value)

    def delete(self, key: bytes) -> bool:
        return self._inner.delete(key)

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        return self._inner.scan_prefix(prefix)

    def close(self) -> None:
        self._inner.close()

    # multi_get / multi_put / multi_delete deliberately NOT overridden: the
    # KeyValueStore defaults loop over the scalar ops above.


def _ingest_records(num_chunks: int):
    step = CHUNK_INTERVAL_MS // POINTS_PER_CHUNK
    return [
        (t, float((t // step) % 100))
        for t in range(0, num_chunks * CHUNK_INTERVAL_MS, step)
    ]


def _run_ingest(store: KeyValueStore, num_chunks: int) -> Tuple[float, int]:
    """Ingest ``num_chunks`` chunks in batches; returns (seconds, num_batches)."""
    server = ServerEngine(store=store)
    owner = TimeCrypt(server=server, owner_id="bench")
    config = StreamConfig(chunk_interval=CHUNK_INTERVAL_MS, key_tree_height=TREE_HEIGHT)
    uuid = owner.create_stream(metric="storage-bench", config=config)
    records = _ingest_records(num_chunks)
    batch_records = CHUNKS_PER_BATCH * POINTS_PER_CHUNK
    num_batches = 0
    begin = time.perf_counter()
    for offset in range(0, len(records), batch_records):
        owner.insert_records(uuid, records[offset : offset + batch_records])
        num_batches += 1
    owner.flush(uuid)
    elapsed = time.perf_counter() - begin
    return elapsed, num_batches


def _appendlog_round_trips(tmp: Path, num_chunks: int, per_key: bool) -> Dict[str, float]:
    suffix = "perkey" if per_key else "batch"
    inner = AppendLogStore(tmp / f"store-{suffix}.log")
    store: KeyValueStore = PerKeyStore(inner) if per_key else inner
    seconds, num_batches = _run_ingest(store, num_chunks)
    stats = inner.stats
    round_trips = stats.write_round_trips
    store.close()
    return {
        "seconds": seconds,
        "write_round_trips": round_trips,
        "round_trips_per_batch": round_trips / num_batches,
        "num_batches": num_batches,
    }


def _cluster_round_trips(num_chunks: int, per_key: bool) -> Dict[str, float]:
    cluster = StorageCluster(num_nodes=CLUSTER_NODES, replication_factor=REPLICATION_FACTOR)
    store: KeyValueStore = PerKeyStore(cluster) if per_key else cluster
    seconds, num_batches = _run_ingest(store, num_chunks)
    round_trips = sum(
        cluster.node_store(name).stats.write_round_trips for name in cluster.node_names
    )
    return {
        "seconds": seconds,
        "write_round_trips": round_trips,
        "round_trips_per_batch": round_trips / num_batches,
        "num_batches": num_batches,
    }


def _query_fetch_round_trips(num_chunks: int) -> Dict[str, float]:
    """Cold-cache query: plan nodes fetched per backend round trip."""
    cluster = StorageCluster(num_nodes=CLUSTER_NODES, replication_factor=REPLICATION_FACTOR)
    server = ServerEngine(store=cluster)
    owner = TimeCrypt(server=server, owner_id="bench")
    config = StreamConfig(chunk_interval=CHUNK_INTERVAL_MS, key_tree_height=TREE_HEIGHT)
    uuid = owner.create_stream(metric="query-bench", config=config)
    owner.insert_records(uuid, _ingest_records(num_chunks))
    owner.flush(uuid)
    # A fresh engine over the same storage starts with a cold node cache, so
    # the query's whole node cover must come from the backend.
    cold_server = ServerEngine(store=cluster)
    for name in cluster.node_names:
        cluster.node_store(name).stats.reset()
    result = cold_server.stat_range_windows(uuid, 1, num_chunks)
    per_node_gets = {
        name: cluster.node_store(name).stats.multi_gets for name in cluster.node_names
    }
    return {
        "plan_nodes": result.num_index_nodes,
        "index_store_round_trips": cold_server.query_stats.index_store_round_trips,
        "max_multi_gets_per_node": max(per_node_gets.values()),
        "total_node_round_trips": sum(per_node_gets.values()),
    }


# ---------------------------------------------------------------------------
# Assertions (collected by pytest, reused by the script)
# ---------------------------------------------------------------------------


def test_appendlog_batch_round_trips(tmp_path):
    """AppendLogStore: ≥5× fewer backend round trips per ingest batch than per-key puts."""
    num_chunks = min(INGEST_CHUNKS, 128)
    batch = _appendlog_round_trips(tmp_path, num_chunks, per_key=False)
    per_key = _appendlog_round_trips(tmp_path, num_chunks, per_key=True)
    reduction = per_key["round_trips_per_batch"] / batch["round_trips_per_batch"]
    assert reduction >= 5.0, (
        f"round-trip reduction {reduction:.1f}x below the 5x target "
        f"(per-key {per_key['round_trips_per_batch']:.1f}, batch "
        f"{batch['round_trips_per_batch']:.1f} per ingest batch)"
    )


def test_cluster_batch_round_trips():
    """StorageCluster: scatter-gather beats per-key replicated puts by ≥5×."""
    num_chunks = min(INGEST_CHUNKS, 128)
    batch = _cluster_round_trips(num_chunks, per_key=False)
    per_key = _cluster_round_trips(num_chunks, per_key=True)
    reduction = per_key["round_trips_per_batch"] / batch["round_trips_per_batch"]
    assert reduction >= 5.0, (
        f"cluster round-trip reduction {reduction:.1f}x below the 5x target"
    )


def test_query_fetch_is_one_round_trip_per_node():
    """A cold-cache range query costs ≤1 multi_get per cluster node."""
    fetch = _query_fetch_round_trips(min(INGEST_CHUNKS, 128))
    assert fetch["plan_nodes"] > 1
    assert fetch["index_store_round_trips"] == 1
    assert fetch["max_multi_gets_per_node"] <= 1


# ---------------------------------------------------------------------------
# Script entry point: tables + BENCH_storage.json baseline
# ---------------------------------------------------------------------------


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced-iteration CI mode: tiny workload, same assertions",
    )
    parser.add_argument(
        "--output",
        default=os.environ.get("BENCH_OUTPUT", str(_DEFAULT_OUTPUT)),
        help="path of the JSON baseline to write",
    )
    args = parser.parse_args(argv)
    num_chunks = 64 if args.smoke else INGEST_CHUNKS

    results: Dict[str, object] = {"smoke": args.smoke}

    with tempfile.TemporaryDirectory() as tmp:
        log_batch = _appendlog_round_trips(Path(tmp), num_chunks, per_key=False)
        log_per_key = _appendlog_round_trips(Path(tmp), num_chunks, per_key=True)
    log_reduction = log_per_key["round_trips_per_batch"] / log_batch["round_trips_per_batch"]

    cluster_batch = _cluster_round_trips(num_chunks, per_key=False)
    cluster_per_key = _cluster_round_trips(num_chunks, per_key=True)
    cluster_reduction = (
        cluster_per_key["round_trips_per_batch"] / cluster_batch["round_trips_per_batch"]
    )

    table = ResultTable(
        title=(
            f"Ingest write round trips — {num_chunks} chunks, "
            f"{CHUNKS_PER_BATCH} chunks/batch"
        ),
        columns=["backend", "path", "round trips/batch", "total", "wall clock"],
    )
    for backend, rows in (
        ("AppendLogStore", (("per-key puts", log_per_key), ("multi_put", log_batch))),
        (
            f"StorageCluster {CLUSTER_NODES}x rf={REPLICATION_FACTOR}",
            (("per-key puts", cluster_per_key), ("multi_put", cluster_batch)),
        ),
    ):
        for path_name, row in rows:
            table.add_row(
                backend,
                path_name,
                f"{row['round_trips_per_batch']:.1f}",
                f"{row['write_round_trips']:.0f}",
                format_duration(row["seconds"]),
            )
    table.add_note(
        f"reduction: {log_reduction:.1f}x (append log), {cluster_reduction:.1f}x (cluster); "
        "target >= 5x"
    )
    table.print()

    fetch = _query_fetch_round_trips(num_chunks)
    query_table = ResultTable(
        title="Cold-cache range query fetch",
        columns=["plan nodes", "multi_gets (engine)", "max per node"],
    )
    query_table.add_row(
        f"{fetch['plan_nodes']:.0f}",
        f"{fetch['index_store_round_trips']:.0f}",
        f"{fetch['max_multi_gets_per_node']:.0f}",
    )
    query_table.add_note("target: one multi_get per query per cluster node")
    query_table.print()

    results["appendlog_ingest"] = {
        "chunks": num_chunks,
        "chunks_per_batch": CHUNKS_PER_BATCH,
        "per_key": log_per_key,
        "batch": log_batch,
        "round_trip_reduction": round(log_reduction, 2),
    }
    results["cluster_ingest"] = {
        "chunks": num_chunks,
        "nodes": CLUSTER_NODES,
        "replication_factor": REPLICATION_FACTOR,
        "per_key": cluster_per_key,
        "batch": cluster_batch,
        "round_trip_reduction": round(cluster_reduction, 2),
    }
    results["query_fetch"] = fetch

    print(f"baseline written to {write_json_report(args.output, results)}")


if __name__ == "__main__":
    main()
