"""Table 2 — encrypted index micro-benchmark.

Paper columns: per-ADD cost, index size at 1M chunks, average ingest time,
and average worst-case query time, for Paillier / EC-ElGamal / TimeCrypt /
Plaintext.  Paper headline: TimeCrypt ingest and queries within ~1.3-1.8x of
plaintext; Paillier/EC-ElGamal thousands of times slower with 21-96x index
size expansion.

Here the index sizes are scaled down (pure-Python strawman ingest at 1M
chunks would take hours) but the per-chunk and per-query figures, and the
expansion ratios, reproduce the paper's ordering.
"""

from __future__ import annotations

import pytest

from repro.crypto.ecelgamal import ECElGamal
from repro.crypto.heac import HEACCipher, MODULUS
from repro.crypto.keytree import KeyDerivationTree
from repro.crypto.paillier import generate_keypair

from conftest import scaled


# --- the ADD micro-operation (Table 2, "Micro / ADD" column) -------------------


def test_add_plaintext(benchmark):
    benchmark.group = "table2-add"
    benchmark(lambda: (123456789 + 987654321) % MODULUS)


def test_add_timecrypt(benchmark):
    """HEAC addition is a modular addition — same order as plaintext."""
    benchmark.group = "table2-add"
    tree = KeyDerivationTree(seed=b"t" * 16, height=30)
    cipher = HEACCipher(tree)
    a = cipher.encrypt(123456789, 0)
    b = cipher.encrypt(987654321, 1)
    benchmark(lambda: a + b)


def test_add_paillier(benchmark):
    benchmark.group = "table2-add"
    public, _private = generate_keypair(512)
    a = public.encrypt(123456789)
    b = public.encrypt(987654321)
    benchmark(lambda: public.add(a, b))


def test_add_ecelgamal(benchmark):
    benchmark.group = "table2-add"
    scheme = ECElGamal.generate(max_plaintext=1 << 20)
    a = scheme.encrypt(1234)
    b = scheme.encrypt(5678)
    benchmark(lambda: ECElGamal.add(a, b))


# --- average ingest time (Table 2, "Average Ingest Time") -------------------------


def test_ingest_plaintext(benchmark, plaintext_with_data, bench_config):
    benchmark.group = "table2-ingest"
    store, uuid, num_chunks = plaintext_with_data
    interval = bench_config.chunk_interval
    state = {"chunk": num_chunks}

    def ingest_one_chunk():
        chunk = state["chunk"]
        store.insert_record(uuid, chunk * interval, float(chunk % 100))
        store.insert_record(uuid, (chunk + 1) * interval, 0.0)  # seals the chunk
        state["chunk"] = chunk + 2

    benchmark.pedantic(ingest_one_chunk, rounds=scaled(200), iterations=1)


def test_ingest_timecrypt(benchmark, timecrypt_with_data, bench_config):
    benchmark.group = "table2-ingest"
    owner, uuid, num_chunks = timecrypt_with_data
    interval = bench_config.chunk_interval
    state = {"chunk": num_chunks}

    def ingest_one_chunk():
        chunk = state["chunk"]
        owner.insert_record(uuid, chunk * interval, float(chunk % 100))
        owner.insert_record(uuid, (chunk + 1) * interval, 0.0)
        state["chunk"] = chunk + 2

    benchmark.pedantic(ingest_one_chunk, rounds=scaled(200), iterations=1)


def test_ingest_paillier(benchmark, paillier_store):
    benchmark.group = "table2-ingest"
    store, uuid = paillier_store
    benchmark.pedantic(lambda: store.ingest_digest(uuid, [42]), rounds=scaled(30), iterations=1)


def test_ingest_ecelgamal(benchmark, ecelgamal_store):
    benchmark.group = "table2-ingest"
    store, uuid = ecelgamal_store
    benchmark.pedantic(lambda: store.ingest_digest(uuid, [42]), rounds=scaled(30), iterations=1)


# --- average worst-case query time (Table 2, "Average Query Time") ------------------


def test_query_plaintext(benchmark, plaintext_with_data, bench_config):
    benchmark.group = "table2-query"
    store, uuid, num_chunks = plaintext_with_data
    interval = bench_config.chunk_interval
    # Worst-case alignment: a range that starts and ends off every block boundary.
    start, end = interval, (num_chunks - 1) * interval - 1
    benchmark(lambda: store.get_stat_range(uuid, start, end, operators=("sum",)))


def test_query_timecrypt(benchmark, timecrypt_with_data, bench_config):
    benchmark.group = "table2-query"
    owner, uuid, num_chunks = timecrypt_with_data
    interval = bench_config.chunk_interval
    start, end = interval, (num_chunks - 1) * interval - 1
    benchmark(lambda: owner.get_stat_range(uuid, start, end, operators=("sum",)))


def test_query_paillier(benchmark, paillier_store, bench_config):
    benchmark.group = "table2-query"
    store, uuid = paillier_store
    interval = bench_config.chunk_interval
    head = store.num_windows(uuid)
    start, end = interval, (head - 1) * interval - 1
    benchmark.pedantic(
        lambda: store.get_stat_range(uuid, start, end, operators=("sum",)),
        rounds=10,
        iterations=1,
    )


def test_query_ecelgamal(benchmark, ecelgamal_store, bench_config):
    benchmark.group = "table2-query"
    store, uuid = ecelgamal_store
    interval = bench_config.chunk_interval
    head = store.num_windows(uuid)
    start, end = interval, (head - 1) * interval - 1
    benchmark.pedantic(
        lambda: store.get_stat_range(uuid, start, end, operators=("sum",)),
        rounds=5,
        iterations=1,
    )


# --- index size expansion (Table 2, "Index - Size" column) ---------------------------


def test_index_size_expansion(timecrypt_with_data, plaintext_with_data, paillier_store, ecelgamal_store):
    """TimeCrypt has no ciphertext expansion; the strawmen inflate the index.

    The paper reports 1x (TimeCrypt, 8.1 MB for 1M chunks) vs 21x (EC-ElGamal)
    vs 96x (Paillier, at 3072-bit keys).  We verify the per-cell expansion
    ratios, which are what drive those index sizes.
    """
    owner, tc_uuid, tc_chunks = timecrypt_with_data
    plain, pl_uuid, pl_chunks = plaintext_with_data
    paillier, pa_uuid = paillier_store
    elgamal, eg_uuid = ecelgamal_store

    tc_per_chunk = owner.server.index_size_bytes(tc_uuid) / tc_chunks
    plain_per_chunk = plain.index_size_bytes(pl_uuid) / pl_chunks
    paillier_per_chunk = paillier.index_size_bytes(pa_uuid) / paillier.num_windows(pa_uuid)
    elgamal_per_chunk = elgamal.index_size_bytes(eg_uuid) / elgamal.num_windows(eg_uuid)

    # TimeCrypt's per-chunk index footprint matches plaintext (no expansion).
    assert tc_per_chunk == pytest.approx(plain_per_chunk, rel=0.25)
    # The strawmen expand the index by large factors (21x/96x in the paper; the
    # exact factor here depends on the scaled-down key sizes).
    assert paillier_per_chunk > 5 * tc_per_chunk
    assert elgamal_per_chunk > 5 * tc_per_chunk
