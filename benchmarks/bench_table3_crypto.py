"""Table 3 — encryption/decryption latency of the digest ciphers.

Paper (laptop column): TimeCrypt 5.08 µs enc/dec (hash tree with 2^30 keys),
Paillier 30 ms enc / 15 ms dec, EC-ElGamal 1.4 ms enc / 1.1 ms dec — i.e.
TimeCrypt several orders of magnitude faster.  The paper's IoT column
(OpenMote-class hardware) is ~200-300x slower than the laptop; we report that
as a documented model rather than measuring on hardware we do not have.
"""

from __future__ import annotations

from repro.crypto.ecelgamal import ECElGamal
from repro.crypto.heac import HEACCipher
from repro.crypto.keytree import KeyDerivationTree
from repro.crypto.paillier import generate_keypair

#: Paper-reported laptop-to-IoT slowdown (Table 3): ~1.08 ms / 5.08 µs ≈ 213x
#: for TimeCrypt, ~53x for Paillier, ~180x for EC-ElGamal encryption.
IOT_SLOWDOWN_MODEL = {"timecrypt": 213.0, "paillier": 53.0, "ec-elgamal": 180.0}


def test_encrypt_timecrypt(benchmark):
    """TimeCrypt encryption: two key derivations from a 2^30-key tree + one addition."""
    benchmark.group = "table3-encrypt"
    cipher = HEACCipher(KeyDerivationTree(seed=b"k" * 16, height=30, cache_levels=0))
    counter = iter(range(10**9))
    benchmark(lambda: cipher.encrypt(123456, next(counter)))


def test_encrypt_paillier(benchmark):
    benchmark.group = "table3-encrypt"
    public, _ = generate_keypair(512)
    benchmark(lambda: public.encrypt(123456))


def test_encrypt_ecelgamal(benchmark):
    benchmark.group = "table3-encrypt"
    scheme = ECElGamal.generate(max_plaintext=1 << 20)
    benchmark(lambda: scheme.encrypt(123456))


def test_decrypt_timecrypt(benchmark):
    benchmark.group = "table3-decrypt"
    cipher = HEACCipher(KeyDerivationTree(seed=b"k" * 16, height=30, cache_levels=0))
    ciphertext = cipher.encrypt(123456, 77)
    benchmark(lambda: cipher.decrypt(ciphertext))


def test_decrypt_paillier(benchmark):
    benchmark.group = "table3-decrypt"
    public, private = generate_keypair(512)
    ciphertext = public.encrypt(123456)
    benchmark(lambda: private.decrypt(ciphertext))


def test_decrypt_ecelgamal(benchmark):
    benchmark.group = "table3-decrypt"
    scheme = ECElGamal.generate(max_plaintext=1 << 20)
    ciphertext = scheme.encrypt(123456)
    benchmark(lambda: scheme.decrypt(ciphertext))


def test_relative_ordering_matches_paper():
    """TimeCrypt's enc+dec must be orders of magnitude cheaper than the strawmen."""
    import time

    def time_op(operation, repetitions):
        start = time.perf_counter()
        for _ in range(repetitions):
            operation()
        return (time.perf_counter() - start) / repetitions

    cipher = HEACCipher(KeyDerivationTree(seed=b"k" * 16, height=30, cache_levels=0))
    timecrypt = time_op(lambda: cipher.decrypt(cipher.encrypt(99, 5)), 200)

    public, private = generate_keypair(512)
    paillier = time_op(lambda: private.decrypt(public.encrypt(99)), 5)

    scheme = ECElGamal.generate(max_plaintext=1 << 16)
    elgamal = time_op(lambda: scheme.decrypt(scheme.encrypt(99)), 3)

    assert paillier > 10 * timecrypt
    assert elgamal > 10 * timecrypt
