"""Elastic cluster topology: keys moved on add/decommission, handoff cost,
and the hint-replay window versus a full ``repair_node``.

PR 4 gave the storage tier real remote nodes; this benchmark measures the
lifecycle PR 5 adds on top, over real-socket
:class:`~repro.storage.node.StorageNodeServer` processes:

1. **Scale-out** — ``add_node`` on a loaded cluster streams only the moved
   ranges: the moved-key fraction is ≈ 1/N (± virtual-token variance), and
   the destination node sees a bounded two round trips per handoff batch
   (one ``multi_get`` membership probe, one ``multi_put`` backfill — the
   old owners absorb the value reads), plus one scan page each for the
   keyspace walk and the hint-rebalance pass.
2. **Scale-in** — ``decommission_node`` returns the leaver's ranges to the
   survivors; after a full add → decommission cycle the cluster's merged
   keyspace is byte-identical to a never-resized control cluster fed the
   same writes.
3. **Hinted handoff** — writes issued while a node is down park hints on
   the survivors; ``mark_up`` replays exactly the missed writes, so the
   subsequent ``repair_node`` heals 0 keys.  The same outage without hints
   must heal everything through ``repair_node``'s full keyspace walk — the
   benchmark reports both heal windows (keys touched, wire round trips on
   the recovered node, wall clock).

Run as a script to print the tables and refresh ``BENCH_topology.json``:

    PYTHONPATH=src python benchmarks/bench_topology.py

``--smoke`` shrinks the workload for CI smoke jobs (the round-trip and
fraction assertions still hold); ``BENCH_SCALE`` scales the full run.  The
assertions also run under plain pytest:
``pytest benchmarks/bench_topology.py``.
"""

from __future__ import annotations

import argparse
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

from repro.bench.reporting import ResultTable, format_duration, write_json_report
from repro.storage.cluster import StorageCluster
from repro.storage.memory import MemoryStore
from repro.storage.node import StorageNodeServer
from repro.storage.remote import RemoteKeyValueStore

from conftest import scaled

NUM_NODES = 3
REPLICATION_FACTOR = 2
#: Keys loaded before the topology change.
TOPOLOGY_KEYS = scaled(3000, minimum=400)
#: Keys written while a replica is down (the hint window).
OUTAGE_KEYS = scaled(600, minimum=120)
VALUE_BYTES = 64
HANDOFF_BATCH = 128

_DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_topology.json"


class _ElasticStack:
    """Remote storage-node servers plus a cluster dialing them, growable."""

    def __init__(self, hinted_handoff: bool = True) -> None:
        self.backing: Dict[str, MemoryStore] = {}
        self.servers: Dict[str, StorageNodeServer] = {}
        self.addresses: Dict[str, Tuple[str, int]] = {}
        for index in range(NUM_NODES):
            self.launch(f"node-{index}")
        self.cluster = StorageCluster(
            num_nodes=NUM_NODES,
            replication_factor=REPLICATION_FACTOR,
            hinted_handoff=hinted_handoff,
            store_factory=lambda name: RemoteKeyValueStore(
                *self.addresses[name], timeout=10.0
            ),
        )

    def launch(self, name: str) -> None:
        self.backing[name] = MemoryStore()
        server = StorageNodeServer(self.backing[name]).start()
        self.servers[name] = server
        self.addresses[name] = server.address

    def kill(self, name: str) -> None:
        self.servers[name].stop()

    def restart(self, name: str) -> None:
        self.servers[name] = StorageNodeServer(
            self.backing[name], port=self.addresses[name][1]
        ).start()

    def close(self) -> None:
        self.cluster.close()
        for server in self.servers.values():
            server.stop()


@contextmanager
def _elastic_stack(hinted_handoff: bool = True) -> Iterator[_ElasticStack]:
    stack = _ElasticStack(hinted_handoff=hinted_handoff)
    try:
        yield stack
    finally:
        stack.close()


def _items(count: int, prefix: str = "k") -> List[Tuple[bytes, bytes]]:
    return [
        (f"{prefix}/{index:06d}".encode(), bytes([index % 251]) * VALUE_BYTES)
        for index in range(count)
    ]


def _run_scale_out(stack: _ElasticStack, num_keys: int) -> Dict[str, float]:
    """Load the cluster, add a remote node, account the handoff."""
    items = _items(num_keys)
    stack.cluster.multi_put(items)
    stack.launch("node-3")
    destination = RemoteKeyValueStore(*stack.addresses["node-3"], timeout=10.0)
    destination.connect()
    destination.wire_stats.reset()
    begin = time.perf_counter()
    stack.cluster.add_node("node-3", store=destination, handoff_batch_size=HANDOFF_BATCH)
    elapsed = time.perf_counter() - begin
    stats = dict(stack.cluster.last_rebalance)
    destination_trips = destination.wire_stats.round_trips  # before the read check
    fetched = stack.cluster.multi_get([key for key, _ in items])
    assert all(fetched[key] == value for key, value in items), "post-add read failed"
    batches = max(1, stats["handoff_batches"])
    return {
        "keys": num_keys,
        "moved_keys": stats["moved_keys"],
        "moved_fraction": stats["moved_keys"] / num_keys,
        # A key "moves" when its replica *set* changes; the new node joins
        # the RF-deep set of RF/(N+1) of the keyspace (its primary-ownership
        # share is the familiar 1/(N+1) — see ownership_fractions).
        "expected_fraction": REPLICATION_FACTOR / (NUM_NODES + 1),
        "copied_keys": stats["copied_keys"],
        "handoff_batches": stats["handoff_batches"],
        "destination_round_trips": destination_trips,
        "destination_round_trips_per_batch": destination_trips / batches,
        "seconds": elapsed,
    }


def _run_scale_in(stack: _ElasticStack, num_keys: int) -> Dict[str, float]:
    """Decommission the added node and check against a static control."""
    begin = time.perf_counter()
    stats = stack.cluster.decommission_node("node-3", handoff_batch_size=HANDOFF_BATCH)
    elapsed = time.perf_counter() - begin
    control = StorageCluster(num_nodes=NUM_NODES, replication_factor=REPLICATION_FACTOR)
    control.multi_put(_items(num_keys))
    identical = list(stack.cluster.scan_prefix(b"")) == list(control.scan_prefix(b""))
    control.close()
    return {
        "moved_keys": stats["moved_keys"],
        "copied_keys": stats["copied_keys"],
        "handoff_batches": stats["handoff_batches"],
        "seconds": elapsed,
        "byte_identical_to_static": identical,
    }


def _run_outage_heal(hinted: bool, num_keys: int, outage_keys: int) -> Dict[str, float]:
    """Kill a replica, write through the outage, restart, heal, account it."""
    with _elastic_stack(hinted_handoff=hinted) as stack:
        stack.cluster.multi_put(_items(num_keys, prefix="pre"))
        stack.kill("node-1")
        during = _items(outage_keys, prefix="outage")
        stack.cluster.multi_put(during)  # socket failure -> mark-down -> hints
        assert "node-1" in stack.cluster._down
        stack.restart("node-1")
        recovered = stack.cluster.node_store("node-1")
        recovered.wire_stats.reset()
        begin = time.perf_counter()
        replayed = stack.cluster.mark_up("node-1")
        replay_seconds = time.perf_counter() - begin
        replay_trips = recovered.wire_stats.round_trips
        begin = time.perf_counter()
        repaired = stack.cluster.repair_node("node-1")
        repair_seconds = time.perf_counter() - begin
        fetched = stack.cluster.multi_get([key for key, _ in during])
        assert all(fetched[key] == value for key, value in during), "post-heal read failed"
        return {
            "hinted_handoff": hinted,
            "keys_before_outage": num_keys,
            "keys_written_during_outage": outage_keys,
            "hints_replayed": replayed,
            "replay_round_trips_on_node": replay_trips,
            "replay_seconds": replay_seconds,
            "repair_healed": repaired,
            "repair_seconds": repair_seconds,
        }


# ---------------------------------------------------------------------------
# Assertions (collected by pytest, reused by the script)
# ---------------------------------------------------------------------------


def test_add_node_moves_one_over_n_with_bounded_handoff():
    num_keys = min(TOPOLOGY_KEYS, 600)
    with _elastic_stack() as stack:
        out = _run_scale_out(stack, num_keys)
    expected = out["expected_fraction"]
    assert 0.5 * expected <= out["moved_fraction"] <= 1.5 * expected, out
    # One membership multi_get + one backfill multi_put per batch, plus
    # one scan page each for the merged keyspace walk and the post-handoff
    # hint-rebalance pass (both empty on the new node).
    assert out["destination_round_trips"] <= 2 * out["handoff_batches"] + 2, out


def test_add_then_decommission_is_byte_identical_to_static():
    num_keys = min(TOPOLOGY_KEYS, 600)
    with _elastic_stack() as stack:
        _run_scale_out(stack, num_keys)
        back = _run_scale_in(stack, num_keys)
    assert back["byte_identical_to_static"], back


def test_hint_replay_leaves_repair_nothing():
    heal = _run_outage_heal(hinted=True, num_keys=200, outage_keys=80)
    assert heal["hints_replayed"] > 0, heal
    assert heal["repair_healed"] == 0, heal


def test_without_hints_repair_is_the_only_heal_path():
    heal = _run_outage_heal(hinted=False, num_keys=200, outage_keys=80)
    assert heal["hints_replayed"] == 0, heal
    assert heal["repair_healed"] > 0, heal


# ---------------------------------------------------------------------------
# Script entry point: tables + BENCH_topology.json baseline
# ---------------------------------------------------------------------------


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced-iteration CI mode: tiny workload, same assertions",
    )
    parser.add_argument(
        "--output",
        default=os.environ.get("BENCH_OUTPUT", str(_DEFAULT_OUTPUT)),
        help="path of the JSON baseline to write",
    )
    args = parser.parse_args(argv)
    num_keys = 400 if args.smoke else TOPOLOGY_KEYS
    outage_keys = 120 if args.smoke else OUTAGE_KEYS

    results: Dict[str, object] = {
        "smoke": args.smoke,
        "topology": {"nodes": NUM_NODES, "replication_factor": REPLICATION_FACTOR},
    }

    # -- scale out / scale in over real sockets -----------------------------------
    with _elastic_stack() as stack:
        out = _run_scale_out(stack, num_keys)
        back = _run_scale_in(stack, num_keys)
    assert 0.5 * out["expected_fraction"] <= out["moved_fraction"] <= 1.5 * out["expected_fraction"], out
    assert out["destination_round_trips"] <= 2 * out["handoff_batches"] + 2, out
    assert back["byte_identical_to_static"], back

    elastic_table = ResultTable(
        title=(
            f"Live topology changes — {NUM_NODES}(+1) remote TCP nodes, "
            f"RF={REPLICATION_FACTOR}, {num_keys} keys"
        ),
        columns=[
            "change", "moved keys", "fraction", "copied", "batches",
            "dest trips/batch", "wall clock",
        ],
    )
    elastic_table.add_row(
        "add_node (3→4)",
        f"{out['moved_keys']:.0f}",
        f"{out['moved_fraction']:.3f} (≈{out['expected_fraction']:.3f})",
        f"{out['copied_keys']:.0f}",
        f"{out['handoff_batches']:.0f}",
        f"{out['destination_round_trips_per_batch']:.2f}",
        format_duration(out["seconds"]),
    )
    elastic_table.add_row(
        "decommission (4→3)",
        f"{back['moved_keys']:.0f}",
        "-",
        f"{back['copied_keys']:.0f}",
        f"{back['handoff_batches']:.0f}",
        "-",
        format_duration(back["seconds"]),
    )
    elastic_table.add_note(
        "targets: moved replica-set fraction ≈ RF/N on add (primary share ≈ 1/N); "
        "≤ 2 destination round trips per "
        "handoff batch (+2 scan pages); add→decommission byte-identical to a "
        f"static cluster: {back['byte_identical_to_static']}"
    )
    elastic_table.print()
    results["scale_out"] = out
    results["scale_in"] = back

    # -- hint replay vs full repair ------------------------------------------------
    hinted = _run_outage_heal(hinted=True, num_keys=num_keys, outage_keys=outage_keys)
    unhinted = _run_outage_heal(hinted=False, num_keys=num_keys, outage_keys=outage_keys)
    assert hinted["repair_healed"] == 0 and hinted["hints_replayed"] > 0, hinted
    assert unhinted["repair_healed"] > 0, unhinted

    heal_table = ResultTable(
        title=(
            f"Outage heal window — {outage_keys} writes missed a downed replica "
            f"({num_keys} keys resident)"
        ),
        columns=[
            "mode", "hints replayed", "repair healed", "node trips (replay)",
            "replay", "repair walk",
        ],
    )
    heal_table.add_row(
        "hinted handoff",
        f"{hinted['hints_replayed']:.0f}",
        f"{hinted['repair_healed']:.0f}",
        f"{hinted['replay_round_trips_on_node']:.0f}",
        format_duration(hinted["replay_seconds"]),
        format_duration(hinted["repair_seconds"]),
    )
    heal_table.add_row(
        "repair_node only",
        f"{unhinted['hints_replayed']:.0f}",
        f"{unhinted['repair_healed']:.0f}",
        "-",
        "-",
        format_duration(unhinted["repair_seconds"]),
    )
    heal_table.add_note(
        "hint replay touches only the missed writes; the repair walk streams the "
        "whole deduplicated keyspace — hints leave it 0 keys to heal"
    )
    heal_table.print()
    results["outage_heal"] = {"hinted": hinted, "repair_only": unhinted}

    print(f"baseline written to {write_json_report(args.output, results)}")


if __name__ == "__main__":
    main()
