"""Wire memory path: copies per frame, syscalls per batch, and throughput.

PR 7 moved bytes efficiently *between* machines (scheduling, credits); this
benchmark tracks how often those bytes are copied *inside* one machine.
Before the zero-copy path, a large message was materialized at least three
times between ``Request.encode()`` and ``sendall`` (message join, frame
concat, batch join) and up to three more times on decode (assembler
copy-in, ``bytes()`` slice, per-attachment slices).  The segment encode
path plus ``sendmsg``-vectored writes and view-based decode cut that to
zero user-space copies on encode and at most one on decode — without
costing extra syscalls on small frames.

Four claims, measured two ways:

1. **Copies per frame** (deterministic, gated): the library's
   ``MEMORY_COUNTERS.payload_copies`` over fixed call sequences — legacy
   encode ≥ 2 and decode ≥ 2 vs. zero-copy encode 0 and decode ≤ 1.
2. **Syscalls per batch** (deterministic, gated): a multi-frame batch costs
   one ``sendmsg`` on the vectored path, exactly matching the one
   ``sendall`` the legacy join needed — same syscall bill, no copy.
3. **Throughput / peak memory** (wall clock, informational): bulk-ingest
   (``kv_multi_put``) and big-response (``kv_multi_get``) shapes over a real
   loopback socket, legacy vs. zero-copy arms, with ``tracemalloc`` peaks.
4. **Compression** (deterministic, gated): negotiated zlib frame
   compression engages only above the size threshold and only when both
   ends opt in, and the codec round-trips byte-identically.

Run as a script to print the tables and refresh ``BENCH_wire.json``:

    PYTHONPATH=src python benchmarks/bench_wire_memory.py

``--smoke`` shrinks only the throughput workloads; the gated counters are
measured at fixed sizes so the CI invariant gate can compare them against
the committed baseline.  The assertions also run under plain pytest.
"""

from __future__ import annotations

import argparse
import io
import os
import time
import tracemalloc
from pathlib import Path
from typing import Dict, List

from repro import ServerEngine, TimeCrypt
from repro.bench.reporting import ResultTable, write_json_report
from repro.net.client import RemoteServerClient
from repro.net.framing import (
    MEMORY_COUNTERS,
    FrameAssembler,
    FrameReader,
    encode_frame_segments_v2,
    encode_frame_v2,
    write_vectored,
)
from repro.net.messages import Request, maybe_compress_segments, retain
from repro.net.server import TimeCryptTCPServer
from repro.storage.memory import MemoryStore
from repro.storage.node import StorageNodeServer
from repro.storage.remote import RemoteKeyValueStore

from conftest import scaled

#: Attachment size for the per-frame copy accounting (fixed: gated).
COPY_PROBE_BYTES = 1 << 20
#: Frames per batch for the syscall accounting (fixed: gated).
BATCH_FRAMES = 8
#: Bulk workload for the throughput arms (scaled; smoke shrinks it).
BULK_VALUES = scaled(32, minimum=8)
BULK_VALUE_BYTES = 1 << 20
#: Small-frame workload: the no-regression check for tiny messages.
SMALL_OPS = scaled(400, minimum=100)

_DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_wire.json"


class _RecordingSink:
    """A sendmsg/write-capable sink that records bytes without a kernel."""

    def __init__(self) -> None:
        self.buffer = bytearray()

    def sendmsg(self, group) -> int:
        total = 0
        for iov in group:
            self.buffer += iov
            total += len(iov)
        return total

    def write(self, data) -> int:
        self.buffer += data
        return len(data)

    def flush(self) -> None:
        pass


def _probe_request() -> Request:
    return Request("insert_chunks", {"uuid": "bench", "count": 1}, [bytes(COPY_PROBE_BYTES)])


# ---------------------------------------------------------------------------
# 1. Copies per frame (deterministic)
# ---------------------------------------------------------------------------


def copies_per_frame() -> Dict[str, Dict[str, int]]:
    """``MEMORY_COUNTERS.payload_copies`` over one frame, per path and arm."""
    request = _probe_request()

    MEMORY_COUNTERS.reset()
    legacy_wire = encode_frame_v2(1, request.encode())
    encode_legacy = MEMORY_COUNTERS.payload_copies

    MEMORY_COUNTERS.reset()
    segments = encode_frame_segments_v2(1, request.encode_segments())
    encode_zero = MEMORY_COUNTERS.payload_copies
    assert b"".join(segments) == legacy_wire  # byte identity on the wire

    # Server-side decode: the incremental assembler feeds from the socket
    # buffer; legacy materializes bytes payloads and slice-copied attachments.
    MEMORY_COUNTERS.reset()
    (frame,) = FrameAssembler(views=False).feed(legacy_wire)
    Request.decode(frame.payload)
    server_decode_legacy = MEMORY_COUNTERS.payload_copies

    MEMORY_COUNTERS.reset()
    (frame,) = FrameAssembler(views=True).feed(legacy_wire)
    decoded = Request.decode(frame.payload)
    server_decode_zero = MEMORY_COUNTERS.payload_copies
    assert retain(decoded.attachments[0]) == request.attachments[0]

    # Client-side decode: the blocking reader pulls payloads via recv_into,
    # so the zero-copy arm touches the bytes exactly once (in the kernel).
    MEMORY_COUNTERS.reset()
    frame = FrameReader(io.BytesIO(legacy_wire), views=False).read()
    Request.decode(frame.payload)
    client_decode_legacy = MEMORY_COUNTERS.payload_copies

    MEMORY_COUNTERS.reset()
    frame = FrameReader(io.BytesIO(legacy_wire), views=True).read()
    Request.decode(frame.payload)
    client_decode_zero = MEMORY_COUNTERS.payload_copies

    MEMORY_COUNTERS.reset()
    return {
        "encode": {"legacy": encode_legacy, "zero_copy": encode_zero},
        "server_decode": {"legacy": server_decode_legacy, "zero_copy": server_decode_zero},
        "client_decode": {"legacy": client_decode_legacy, "zero_copy": client_decode_zero},
    }


# ---------------------------------------------------------------------------
# 2. Syscalls per batch (deterministic)
# ---------------------------------------------------------------------------


def syscalls_per_batch() -> Dict[str, int]:
    """Write one ``BATCH_FRAMES``-frame batch through both write paths."""
    requests = [
        Request("insert_chunks", {"uuid": "bench", "i": index}, [bytes(COPY_PROBE_BYTES)])
        for index in range(BATCH_FRAMES)
    ]

    # Legacy: every frame is a concatenation, the batch is a join, the join
    # is one sendall.  (The client adds one more counted copy for the batch
    # join; here we count the library-side encodes only.)
    MEMORY_COUNTERS.reset()
    frames = [
        encode_frame_v2(index + 1, request.encode())
        for index, request in enumerate(requests)
    ]
    legacy_copies = MEMORY_COUNTERS.payload_copies
    legacy_sink = _RecordingSink()
    legacy_sink.write(b"".join(frames))
    legacy_syscalls = 1

    # Zero-copy: flatten every frame's segments and hand them to sendmsg.
    MEMORY_COUNTERS.reset()
    segments: List = []
    for index, request in enumerate(requests):
        segments.extend(encode_frame_segments_v2(index + 1, request.encode_segments()))
    vector_sink = _RecordingSink()
    syscalls, total, coalesced = write_vectored(vector_sink, segments)
    vector_copies = MEMORY_COUNTERS.payload_copies
    assert bytes(vector_sink.buffer) == bytes(legacy_sink.buffer)

    MEMORY_COUNTERS.reset()
    return {
        "batch_frames": BATCH_FRAMES,
        "batch_bytes": total,
        "legacy_syscalls": legacy_syscalls,
        "legacy_copies": legacy_copies,
        "zero_copy_syscalls": syscalls,
        "zero_copy_copies": vector_copies,
        "headers_coalesced": coalesced,
    }


# ---------------------------------------------------------------------------
# 3. Throughput and peak memory over a real socket (informational)
# ---------------------------------------------------------------------------


def _bulk_items(num_values: int, value_bytes: int):
    return [
        (f"bulk/{index:06d}".encode(), bytes([index % 251]) * value_bytes)
        for index in range(num_values)
    ]


def run_throughput(num_values: int, value_bytes: int, zero_copy: bool) -> Dict[str, float]:
    """Bulk-ingest then big-response over loopback; wall clock + alloc peak."""
    items = _bulk_items(num_values, value_bytes)
    total_bytes = sum(len(key) + len(value) for key, value in items)
    store = MemoryStore()
    with StorageNodeServer(store, zero_copy=zero_copy) as node:
        host, port = node.address
        remote = RemoteKeyValueStore(host, port, timeout=60.0, zero_copy=zero_copy)
        try:
            tracemalloc.start()
            begin = time.perf_counter()
            remote.multi_put(items)
            ingest_elapsed = time.perf_counter() - begin
            _current, ingest_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()

            tracemalloc.start()
            begin = time.perf_counter()
            found = remote.multi_get([key for key, _value in items])
            fetch_elapsed = time.perf_counter() - begin
            _current, fetch_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert found == dict(items)  # byte identity end to end

            begin = time.perf_counter()
            for index in range(SMALL_OPS):
                remote.put(b"small/%d" % (index % 32), b"v")
            small_elapsed = time.perf_counter() - begin
        finally:
            remote.close()
    return {
        "values": num_values,
        "total_mb": total_bytes / 1e6,
        "ingest_seconds": ingest_elapsed,
        "ingest_mb_per_s": total_bytes / 1e6 / ingest_elapsed if ingest_elapsed else 0.0,
        "ingest_peak_mb": ingest_peak / 1e6,
        "fetch_seconds": fetch_elapsed,
        "fetch_mb_per_s": total_bytes / 1e6 / fetch_elapsed if fetch_elapsed else 0.0,
        "fetch_peak_mb": fetch_peak / 1e6,
        "small_ops_per_s": SMALL_OPS / small_elapsed if small_elapsed else 0.0,
    }


# ---------------------------------------------------------------------------
# 4. Compression (deterministic negotiation + codec)
# ---------------------------------------------------------------------------


def compression_counters() -> Dict[str, object]:
    """Codec ratio plus negotiated end-to-end frame counts (fixed sizes)."""
    # Codec: a redundant grant burst compresses far below 1:1.
    segments = Request(
        "put_grants", {"uuid": "s"}, [b"sealed-token-" * 600 for _ in range(4)]
    ).encode_segments()
    raw_bytes = sum(len(segment) for segment in segments)
    squeezed, compressed = maybe_compress_segments(segments)
    wire_bytes = sum(len(segment) for segment in squeezed)

    # Negotiated end to end: one compressible request frame, one
    # compressible response frame, tiny frames left alone.
    engine = ServerEngine()
    with TimeCryptTCPServer(engine, wire_compression=True) as server:
        host, port = server.address
        with RemoteServerClient(host, port, compression=True) as remote:
            owner = TimeCrypt(server=remote, owner_id="bench")
            uuid = owner.create_stream(metric="wire-bench")
            remote.wire_stats.reset()
            remote.put_grants([(uuid, f"w-{i}", b"sealed" * 1200) for i in range(8)])
            request_frames_compressed = remote.wire_stats.frames_compressed
            assert remote.fetch_grants(uuid, "w-3") == [b"sealed" * 1200]
            assert remote.ping()  # small frame: must stay uncompressed
            server_frames_compressed = server.scheduler_stats()["frames_compressed"]
    return {
        "codec_compressed": bool(compressed),
        "raw_bytes": raw_bytes,
        "wire_bytes": wire_bytes,
        "ratio": round(raw_bytes / wire_bytes, 2) if wire_bytes else 0.0,
        "request_frames_compressed": request_frames_compressed,
        "response_frames_compressed": server_frames_compressed,
    }


# ---------------------------------------------------------------------------
# Assertions (collected by pytest, reused by the script)
# ---------------------------------------------------------------------------


def test_copies_per_frame_meet_acceptance():
    """Encode: 3+ copies down to 0.  Decode: 2–3 copies down to ≤ 1."""
    copies = copies_per_frame()
    assert copies["encode"]["zero_copy"] == 0
    assert copies["encode"]["legacy"] >= 2
    assert copies["server_decode"]["zero_copy"] <= 1
    assert copies["server_decode"]["legacy"] >= 3
    assert copies["client_decode"]["zero_copy"] == 0
    assert copies["client_decode"]["legacy"] >= 2
    # Whole-path legacy bill (encode + decode) is ≥ 3 full materializations.
    assert copies["encode"]["legacy"] + copies["server_decode"]["legacy"] >= 3


def test_vectored_batch_costs_no_extra_syscalls():
    """The copy-free batch write costs exactly the legacy syscall bill."""
    syscalls = syscalls_per_batch()
    assert syscalls["zero_copy_syscalls"] <= syscalls["legacy_syscalls"]
    assert syscalls["zero_copy_copies"] == 0
    assert syscalls["legacy_copies"] >= 2 * syscalls["batch_frames"]
    # Two small segments per frame (frame header + message header) coalesce.
    assert syscalls["headers_coalesced"] == 2 * syscalls["batch_frames"]


def test_compression_engages_only_when_negotiated_and_large():
    counters = compression_counters()
    assert counters["codec_compressed"] is True
    assert counters["ratio"] > 2.0
    assert counters["request_frames_compressed"] == 1
    assert counters["response_frames_compressed"] >= 1


def test_throughput_arms_are_byte_identical():
    """Smoke-sized throughput run; the multi_get assert checks identity."""
    run_throughput(4, 1 << 18, zero_copy=True)
    run_throughput(4, 1 << 18, zero_copy=False)


# ---------------------------------------------------------------------------
# Script entry point: tables + BENCH_wire.json baseline
# ---------------------------------------------------------------------------


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced-iteration CI mode: small throughput workload, same gated counters",
    )
    parser.add_argument(
        "--output",
        default=os.environ.get("BENCH_OUTPUT", str(_DEFAULT_OUTPUT)),
        help="path of the JSON baseline to write",
    )
    args = parser.parse_args(argv)
    num_values = 8 if args.smoke else BULK_VALUES
    value_bytes = (1 << 18) if args.smoke else BULK_VALUE_BYTES

    results: Dict[str, object] = {"smoke": args.smoke}

    copies = copies_per_frame()
    copy_table = ResultTable(
        title="Full-payload copies per frame — 1 MiB attachment, library counters",
        columns=["path", "legacy", "zero-copy"],
    )
    for path in ("encode", "server_decode", "client_decode"):
        copy_table.add_row(path, str(copies[path]["legacy"]), str(copies[path]["zero_copy"]))
    copy_table.add_note("acceptance: encode 0 and decode <= 1 vs >= 3 on the legacy path")
    copy_table.print()
    results["copies"] = copies

    syscalls = syscalls_per_batch()
    syscall_table = ResultTable(
        title=f"Syscalls per {BATCH_FRAMES}-frame batch ({syscalls['batch_bytes'] >> 20} MiB)",
        columns=["path", "syscalls", "payload copies"],
    )
    syscall_table.add_row("legacy join+sendall", str(syscalls["legacy_syscalls"]), str(syscalls["legacy_copies"]))
    syscall_table.add_row("vectored sendmsg", str(syscalls["zero_copy_syscalls"]), str(syscalls["zero_copy_copies"]))
    syscall_table.add_note(f"{syscalls['headers_coalesced']} small header segments coalesced into one iovec run")
    syscall_table.print()
    results["syscalls"] = syscalls

    arms = {}
    for label, zero_copy in (("legacy", False), ("zero_copy", True)):
        arms[label] = run_throughput(num_values, value_bytes, zero_copy=zero_copy)
    throughput_table = ResultTable(
        title=(
            f"Bulk wire throughput — {arms['legacy']['total_mb']:.0f} MB over loopback "
            f"({num_values} values, tracemalloc on)"
        ),
        columns=["arm", "ingest MB/s", "ingest peak MB", "fetch MB/s", "fetch peak MB", "small ops/s"],
    )
    for label in ("legacy", "zero_copy"):
        row = arms[label]
        throughput_table.add_row(
            label,
            f"{row['ingest_mb_per_s']:.0f}",
            f"{row['ingest_peak_mb']:.1f}",
            f"{row['fetch_mb_per_s']:.0f}",
            f"{row['fetch_peak_mb']:.1f}",
            f"{row['small_ops_per_s']:.0f}",
        )
    throughput_table.add_note("arms are byte-identical (asserted in run_throughput)")
    throughput_table.print()
    results["throughput"] = arms
    results["byte_identity"] = {"identical": True}

    compression = compression_counters()
    compression_table = ResultTable(
        title="Negotiated zlib frame compression (fixed workload)",
        columns=["counter", "value"],
    )
    compression_table.add_row("codec ratio", f"{compression['ratio']:.2f}x")
    compression_table.add_row("request frames compressed", str(compression["request_frames_compressed"]))
    compression_table.add_row("response frames compressed", str(compression["response_frames_compressed"]))
    compression_table.add_note("engages only above 4 KiB and only when both ends negotiate it")
    compression_table.print()
    results["compression"] = compression

    print(f"baseline written to {write_json_report(args.output, results)}")


if __name__ == "__main__":
    main()
