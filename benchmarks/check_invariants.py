"""Deterministic perf-regression gate: smoke baselines vs. committed ones.

Wall clock on shared CI runners is noise, so the smoke job has never gated
on speed.  What *is* deterministic — at any workload scale — are the
invariant counters the benchmarks record: wire round trips per query,
per-batch round-trip overheads, shed/drain bookkeeping, replication
fan-out.  A change that silently reintroduces per-chunk round trips or
drops a correlation id moves one of these integers, on the smoke workload
just as surely as on the full one.

This script diffs each CI smoke baseline (``bench-smoke-*.json``) against
the committed full baseline (``BENCH_*.json``) on a manifest of checks:

- ``eq``    — the counter (or whole subtree) must match the committed value:
              round trips per query do not depend on workload size.
- ``le``    — the counter must not exceed the committed value (bounded
              depths and caps).
- ``delta`` — the *difference* of two counters must match the committed
              difference: ``wire_round_trips - num_batches`` is the fixed
              per-ingest overhead whatever the batch count.

``BENCH_batch.json`` is deliberately not gated — it records wall-clock
sweeps only.  Usage (paths are smoke files; committed baselines are found
next to this script's parent directory, override with ``--baseline-dir``):

    python benchmarks/check_invariants.py net=bench-smoke-net.json \
        sched=bench-smoke-sched.json ...

Exits non-zero listing every violated invariant.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple


def eq(path: str) -> Tuple[str, str, str]:
    return ("eq", path, "")


def le(path: str) -> Tuple[str, str, str]:
    return ("le", path, "")


def delta(minuend: str, subtrahend: str) -> Tuple[str, str, str]:
    return ("delta", minuend, subtrahend)


#: name -> (committed baseline filename, checks). Every path is relative to
#: the ``results`` block of the baseline JSON.
MANIFEST: Dict[str, Tuple[str, List[Tuple[str, str, str]]]] = {
    "storage": (
        "BENCH_storage.json",
        [
            eq("query_fetch.index_store_round_trips"),
            eq("query_fetch.max_multi_gets_per_node"),
            eq("query_fetch.total_node_round_trips"),
            # Fixed per-ingest overhead beyond one write round trip per batch.
            delta("appendlog_ingest.batch.write_round_trips", "appendlog_ingest.batch.num_batches"),
        ],
    ),
    "net": (
        "BENCH_net.json",
        [
            eq("queries.range_round_trips"),
            eq("queries.stat_round_trips"),
            eq("grant_burst.batched.issue_round_trips"),
            eq("grant_burst.batched.pickup_round_trips"),
            eq("ingest.scalar.round_trips_per_batch"),
            # Pipelined ingest: one frame per batch plus the final flush.
            delta("ingest.pipelined.wire_round_trips", "ingest.pipelined.num_batches"),
            # Scalar grants cost exactly one round trip per principal.
            delta("grant_burst.scalar.issue_round_trips", "grant_burst.scalar.principals"),
        ],
    ),
    "remote": (
        "BENCH_remote.json",
        [
            eq("queries.range_max_node_round_trips"),
            eq("queries.stat_max_node_round_trips"),
            eq("grant_burst.max_node_round_trips"),
            eq("grant_burst.total_round_trips"),
            eq("ingest.remote.flush_round_trips"),
            eq("kv_batch.batched.max_node_round_trips"),
            eq("kv_batch.batched.total_round_trips"),
            eq("kv_batch.scalar.max_node_round_trips"),
            eq("kv_batch.scalar.total_round_trips"),
        ],
    ),
    "topology": (
        "BENCH_topology.json",
        [
            eq("outage_heal.hinted.hinted_handoff"),
            eq("outage_heal.hinted.repair_healed"),
            eq("outage_heal.hinted.replay_round_trips_on_node"),
            eq("outage_heal.repair_only.hints_replayed"),
            eq("outage_heal.repair_only.replay_round_trips_on_node"),
            eq("scale_in.byte_identical_to_static"),
            eq("scale_out.expected_fraction"),
            delta("scale_in.copied_keys", "scale_in.moved_keys"),
        ],
    ),
    "sharding": (
        "BENCH_sharding.json",
        [
            # The delete workload is pinned at both scales: the whole
            # round-trip table must match the committed one.
            eq("delete_round_trips"),
        ],
    ),
    "wire": (
        "BENCH_wire.json",
        [
            # Copies per frame are call-sequence invariants, not workload
            # sizes: the zero-copy acceptance (encode 0, decode <= 1) and
            # the legacy bill it replaced must both hold at any scale.
            eq("copies.encode.zero_copy"),
            eq("copies.encode.legacy"),
            eq("copies.server_decode.zero_copy"),
            eq("copies.server_decode.legacy"),
            eq("copies.client_decode.zero_copy"),
            eq("copies.client_decode.legacy"),
            eq("syscalls.legacy_syscalls"),
            le("syscalls.zero_copy_syscalls"),
            eq("syscalls.zero_copy_copies"),
            eq("syscalls.headers_coalesced"),
            eq("byte_identity.identical"),
            eq("compression.codec_compressed"),
            eq("compression.request_frames_compressed"),
            eq("compression.response_frames_compressed"),
        ],
    ),
    "sched": (
        "BENCH_sched.json",
        [
            eq("latency.fifo.probe_round_trips_per_stat"),
            eq("latency.weighted.probe_round_trips_per_stat"),
            eq("latency.fifo.credits_restored"),
            eq("latency.weighted.credits_restored"),
            eq("overload.unanswered"),
            eq("overload.untyped_errors"),
            eq("overload.server_shed_matches_client"),
            eq("overload.all_drained"),
            eq("overload.ping_during_saturation"),
            le("overload.max_depth_bulk"),
        ],
    ),
    "obs": (
        "BENCH_obs.json",
        [
            eq("parity.off_spans"),
            eq("parity.round_trip_parity"),
            eq("parity.copy_parity"),
            eq("parity.on_spans_per_op"),
            eq("parity.off.round_trips"),
            eq("parity.off.payload_copies"),
            eq("tree.connected"),
            eq("tree.spans_per_stat_range"),
            eq("tree.storage_spans"),
            eq("tree.retrievable_via_trace_dump"),
            eq("scrapes.engine_stats_round_trips"),
            eq("scrapes.engine_trace_dump_round_trips"),
            eq("scrapes.storage_stats_round_trips"),
        ],
    ),
}

_MISSING = object()


def _lookup(results: Dict, dotted: str):
    node = results
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return _MISSING
        node = node[part]
    return node


def _load_results(path: Path) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)["results"]


def check_baseline(name: str, smoke: Dict, committed: Dict) -> List[str]:
    """Every violated invariant for one baseline, as printable messages."""
    _file, checks = MANIFEST[name]
    failures = []
    for kind, first, second in checks:
        if kind == "delta":
            values = [_lookup(side, path) for side in (smoke, committed) for path in (first, second)]
            if any(value is _MISSING for value in values):
                failures.append(f"{name}: {first} - {second}: counter missing from a baseline")
                continue
            got, want = values[0] - values[1], values[2] - values[3]
            if got != want:
                failures.append(
                    f"{name}: {first} - {second} = {got}, committed baseline has {want}"
                )
            continue
        got, want = _lookup(smoke, first), _lookup(committed, first)
        if got is _MISSING or want is _MISSING:
            failures.append(f"{name}: {first}: counter missing from a baseline")
        elif kind == "eq" and got != want:
            failures.append(f"{name}: {first} = {got!r}, committed baseline has {want!r}")
        elif kind == "le" and got > want:
            failures.append(f"{name}: {first} = {got!r}, above the committed bound {want!r}")
    return failures


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "pairs",
        nargs="+",
        metavar="name=smoke.json",
        help=f"baseline name ({', '.join(sorted(MANIFEST))}) and its smoke file",
    )
    parser.add_argument(
        "--baseline-dir",
        default=str(Path(__file__).resolve().parent.parent),
        help="directory holding the committed BENCH_*.json files",
    )
    args = parser.parse_args(argv)

    failures: List[str] = []
    checked = 0
    for pair in args.pairs:
        name, _sep, smoke_path = pair.partition("=")
        if name not in MANIFEST or not smoke_path:
            parser.error(f"unknown baseline pair '{pair}'")
        committed_path = Path(args.baseline_dir) / MANIFEST[name][0]
        smoke = _load_results(Path(smoke_path))
        committed = _load_results(committed_path)
        baseline_failures = check_baseline(name, smoke, committed)
        failures.extend(baseline_failures)
        checked += len(MANIFEST[name][1])
        status = "FAIL" if baseline_failures else "ok"
        print(f"{name}: {len(MANIFEST[name][1])} invariants vs {committed_path.name} — {status}")

    if failures:
        print(f"\n{len(failures)} invariant(s) regressed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"all {checked} invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
