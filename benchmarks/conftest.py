"""Shared fixtures and scale knobs for the benchmark suite.

Every benchmark mirrors a table or figure from the paper's evaluation (§6).
Absolute numbers differ from the paper (Python simulator vs. their AWS/JVM
deployment); the quantity being reproduced is the *relative* behaviour —
TimeCrypt ≈ plaintext, strawman orders of magnitude behind.

The ``BENCH_SCALE`` environment variable scales workload sizes (default 1.0);
CI-style quick runs can set it below 1, overnight runs above.
"""

from __future__ import annotations

import os

import pytest

from repro import DigestConfig, ServerEngine, StreamConfig, TimeCrypt
from repro.core.plaintext import PlaintextTimeSeriesStore
from repro.core.strawman import StrawmanStore

SCALE = float(os.environ.get("BENCH_SCALE", "1.0"))


def scaled(value: int, minimum: int = 1) -> int:
    """Scale a workload size by BENCH_SCALE, with a floor."""
    return max(minimum, int(value * SCALE))


@pytest.fixture(scope="module")
def bench_config() -> StreamConfig:
    """The digest/index configuration shared by the comparison benchmarks."""
    # Sum-only digest: the Table 2 micro-benchmark isolates one statistical
    # operation so the comparison measures the digest cipher, not digest width.
    return StreamConfig(
        chunk_interval=10_000,
        index_fanout=64,
        key_tree_height=30,
        digest=DigestConfig(include_count=False, include_sum_of_squares=False),
    )


@pytest.fixture(scope="module")
def timecrypt_with_data(bench_config):
    """A TimeCrypt deployment with a pre-ingested stream (sum-only digest)."""
    server = ServerEngine()
    owner = TimeCrypt(server=server, owner_id="bench")
    uuid = owner.create_stream(metric="bench", config=bench_config)
    num_chunks = scaled(4096)
    interval = bench_config.chunk_interval
    for chunk_index in range(num_chunks):
        owner.insert_record(uuid, chunk_index * interval, float(chunk_index % 100))
    owner.flush(uuid)
    return owner, uuid, num_chunks


@pytest.fixture(scope="module")
def plaintext_with_data(bench_config):
    """The plaintext baseline with an identical pre-ingested stream."""
    store = PlaintextTimeSeriesStore()
    uuid = store.create_stream(config=bench_config)
    num_chunks = scaled(4096)
    interval = bench_config.chunk_interval
    for chunk_index in range(num_chunks):
        store.insert_record(uuid, chunk_index * interval, float(chunk_index % 100))
    store.flush(uuid)
    return store, uuid, num_chunks


@pytest.fixture(scope="module")
def paillier_store(bench_config):
    """A Paillier strawman with a small pre-ingested index (it is slow)."""
    store = StrawmanStore(scheme_name="paillier", paillier_bits=512)
    uuid = store.create_stream(config=bench_config)
    for chunk_index in range(scaled(64)):
        store.ingest_digest(uuid, [chunk_index % 100])
    return store, uuid


@pytest.fixture(scope="module")
def ecelgamal_store(bench_config):
    """An EC-ElGamal strawman with a small pre-ingested index (it is slow)."""
    store = StrawmanStore(scheme_name="ec-elgamal", ec_max_plaintext=1 << 20)
    uuid = store.create_stream(config=bench_config)
    for chunk_index in range(scaled(64)):
        store.ingest_digest(uuid, [chunk_index % 100])
    return store, uuid
