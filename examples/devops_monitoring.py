#!/usr/bin/env python3
"""DevOps scenario: encrypted data-center CPU monitoring with tenant-scoped access.

This example mirrors the paper's second application (§6.3): a data-center
operator stores per-host CPU utilisation in encrypted streams and wants to

* answer fleet-wide questions itself (average utilisation, share of hosts
  above 50 % utilisation, via inter-stream queries), and
* let a tenant see the utilisation of the hosts running *their* job, but only
  for the duration of that job (time-scoped grants).

Run it with ``python examples/devops_monitoring.py``.
"""

from __future__ import annotations

from repro import Principal, ServerEngine, TimeCrypt, TimeCryptConsumer
from repro.exceptions import AccessDeniedError
from repro.workloads.devops import DevOpsWorkload

NUM_HOSTS = 6
DURATION_SECONDS = 2 * 3600  # two hours of monitoring
CHUNK_INTERVAL_MS = 60_000


def main() -> None:
    server = ServerEngine()
    operator = TimeCrypt(server=server, owner_id="dc-operator")
    workload = DevOpsWorkload(num_hosts=NUM_HOSTS, seed=5)
    config = DevOpsWorkload.stream_config(CHUNK_INTERVAL_MS)

    # One encrypted stream per host.
    host_streams = {}
    for host_index, host_name in enumerate(workload.host_names()):
        uuid = operator.create_stream(metric="cpu_usage_user", source=host_name, config=config)
        records = list(workload.records(host_index, DURATION_SECONDS))
        operator.insert_records(uuid, records)
        operator.flush(uuid)
        host_streams[host_name] = uuid
    print(f"ingested {DURATION_SECONDS // 10} samples for each of {NUM_HOSTS} hosts")

    end_time = DURATION_SECONDS * 1000

    # --- operator-side fleet analytics -------------------------------------------------
    fleet_stats = operator.get_stat_range(list(host_streams.values()), 0, end_time)
    print(
        "fleet-wide (inter-stream) aggregate:"
        f" mean utilisation {fleet_stats['mean'] / config.value_scale:.1f}%"
        f" over {fleet_stats['count']} samples"
    )

    hot_hosts = 0
    for host_name, uuid in host_streams.items():
        stats = operator.get_stat_range(uuid, 0, end_time, operators=("mean", "freq", "count"))
        # Histogram boundaries are at 25/50/75 % (fixed-point 2500/5000/7500);
        # the top two bins count samples at or above 50 % utilisation.
        share_above_50 = sum(stats["freq"][2:]) / stats["count"]
        if share_above_50 > 0.5:
            hot_hosts += 1
        print(f"  {host_name}: mean={stats['mean']:.1f}%  time>=50%: {share_above_50:.0%}")
    print(f"{hot_hosts}/{NUM_HOSTS} hosts spent most of the window above 50% utilisation")

    # --- tenant-scoped sharing -------------------------------------------------------------
    # The tenant's job ran on hosts 0 and 1 during the first hour only.
    tenant = Principal.create("tenant-42")
    operator.register_principal(tenant)
    job_hosts = list(host_streams.values())[:2]
    job_end = 3600 * 1000
    for uuid in job_hosts:
        operator.grant_access(uuid, "tenant-42", 0, job_end)

    tenant_client = TimeCryptConsumer(server=server, principal=tenant)
    for uuid in job_hosts:
        tenant_client.fetch_access(uuid, config)
    job_stats = tenant_client.get_stat_range_multi(job_hosts, 0, job_end)
    print(
        "tenant's view of its job hosts during the job:"
        f" mean utilisation {job_stats['mean'] / config.value_scale:.1f}%"
    )
    try:
        tenant_client.get_stat_range(job_hosts[0], 0, end_time)
    except AccessDeniedError:
        print("tenant cannot query beyond its job's time window")
    try:
        tenant_client.get_stat_range(list(host_streams.values())[3], 0, job_end)
    except AccessDeniedError:
        print("tenant cannot query hosts it was never granted")


if __name__ == "__main__":
    main()
