#!/usr/bin/env python3
"""mHealth scenario: a wearable shares health data at different resolutions.

This example mirrors the paper's motivating health application (§1, §6.3):

* a wearable produces 12 metrics at 50 Hz; here we ingest two of them,
* the user shares **per-minute averages** of their heart rate with their
  doctor for the whole period,
* and **full-resolution** data with their trainer, but only for the workout
  session window,
* revocation with forward secrecy cuts the trainer off from data recorded
  after the revocation point.

Run it with ``python examples/mhealth_sharing.py``.
"""

from __future__ import annotations

from repro import Principal, ServerEngine, TimeCrypt, TimeCryptConsumer
from repro.exceptions import AccessDeniedError
from repro.workloads.mhealth import MHealthWorkload

MINUTE_MS = 60_000
SESSION_MINUTES = 30


def main() -> None:
    server = ServerEngine()
    user = TimeCrypt(server=server, owner_id="wearable-user")
    workload = MHealthWorkload(seed=42)

    # Create two encrypted metric streams with the wearable's configuration.
    heart_rate_config = MHealthWorkload.stream_config("heart_rate")
    streams = {}
    for metric in ("heart_rate", "spo2"):
        config = MHealthWorkload.stream_config(metric)
        streams[metric] = user.create_stream(metric=metric, config=config)

    # Ingest a 30-minute workout session at 50 Hz.
    duration_seconds = SESSION_MINUTES * 60
    for metric, uuid in streams.items():
        points = workload.points(metric, duration_seconds)
        user.insert_points(uuid, points)
        user.flush(uuid)
        print(f"ingested {len(points)} points into {metric}")

    session_end = duration_seconds * 1000
    heart_rate = streams["heart_rate"]

    # --- the doctor: per-minute averages only ------------------------------------
    doctor = Principal.create("doctor")
    user.register_principal(doctor)
    user.grant_access(heart_rate, "doctor", 0, session_end, resolution_interval=MINUTE_MS)

    doctor_client = TimeCryptConsumer(server=server, principal=doctor)
    doctor_client.fetch_access(heart_rate, heart_rate_config)
    per_minute = doctor_client.get_stat_series(
        heart_rate, 0, session_end, granularity_interval=MINUTE_MS, operators=("mean",)
    )
    print(f"doctor sees {len(per_minute)} per-minute heart-rate averages, e.g.:")
    for entry in per_minute[:3]:
        print(f"  windows [{entry['window_start']}, {entry['window_end']}): mean={entry['mean']:.1f} bpm")
    try:
        doctor_client.get_range(heart_rate, 0, MINUTE_MS)
    except AccessDeniedError:
        print("doctor cannot read raw 50 Hz samples (resolution-restricted grant)")

    # --- the trainer: full resolution, but only the first 10 minutes ---------------
    trainer = Principal.create("trainer")
    user.register_principal(trainer)
    trainer_window_end = 10 * MINUTE_MS
    user.grant_access(heart_rate, "trainer", 0, trainer_window_end)

    trainer_client = TimeCryptConsumer(server=server, principal=trainer)
    trainer_client.fetch_access(heart_rate, heart_rate_config)
    raw = trainer_client.get_range(heart_rate, 0, 5_000)
    print(f"trainer reads {len(raw)} raw samples from the first 5 seconds")
    try:
        trainer_client.get_stat_range(heart_rate, 0, session_end)
    except AccessDeniedError:
        print("trainer cannot query beyond the granted 10-minute window")

    # --- revocation: the trainer loses access to anything recorded later ------------
    user.revoke_access(heart_rate, "trainer", end=5 * MINUTE_MS)
    print("user revoked the trainer's access from minute 5 onward (forward secrecy)")
    trainer_client.fetch_access(heart_rate, heart_rate_config)
    still_allowed = trainer_client.get_stat_range(heart_rate, 0, 5 * MINUTE_MS, operators=("mean",))
    print(f"trainer still sees minutes 0-5 (already granted): mean={still_allowed['mean']:.1f} bpm")
    try:
        trainer_client.get_stat_range(heart_rate, 0, 6 * MINUTE_MS)
    except AccessDeniedError:
        print("trainer can no longer decrypt past the revocation point")


if __name__ == "__main__":
    main()
