#!/usr/bin/env python3
"""Quickstart: create an encrypted stream, ingest data, run statistical queries.

This is the smallest end-to-end TimeCrypt example:

1. start an (untrusted) server engine,
2. create an encrypted stream as the data owner,
3. ingest a minute of measurements,
4. run statistical range queries over the encrypted index,
5. grant a consumer scoped access and let them query within that scope.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import (
    DigestConfig,
    HistogramConfig,
    Principal,
    ServerEngine,
    StreamConfig,
    TimeCrypt,
    TimeCryptConsumer,
)
from repro.exceptions import AccessDeniedError


def main() -> None:
    # 1. The untrusted server: it stores only ciphertexts and encrypted digests.
    server = ServerEngine()

    # 2. The data owner creates a stream.  Δ = 10 s chunks; the digest layout
    #    enables sum/count/mean/var plus a small histogram for min/max queries.
    owner = TimeCrypt(server=server, owner_id="alice")
    config = StreamConfig(
        chunk_interval=10_000,  # milliseconds
        value_scale=10,  # one decimal place of precision
        digest=DigestConfig(histogram=HistogramConfig(boundaries=(600, 800, 1000, 1200))),
    )
    stream = owner.create_stream(metric="heart-rate", unit="bpm", config=config)
    print(f"created encrypted stream {stream}")

    # 3. Ingest ten minutes of heart-rate samples (one sample per second).
    #    insert_records is the bulk-ingest fast path: all completed chunks are
    #    encrypted in one HEAC key batch and folded into the server's index
    #    with one write per touched node.
    records = [(t * 1000, 60 + 30 * ((t // 60) % 2) + (t % 7)) for t in range(600)]
    owner.insert_records(stream, records)
    owner.flush(stream)
    print(f"ingested {len(records)} records")

    # 4. Statistical queries execute over the encrypted aggregation index; the
    #    owner decrypts the aggregate with its own keys.
    stats = owner.get_stat_range(
        stream, 0, 600_000, operators=("count", "mean", "var", "min", "max")
    )
    print("owner's view of the full range:", stats)

    # 5. Grant the doctor access to minutes 2..8 only, then query as the doctor.
    doctor = Principal.create("doctor")
    owner.register_principal(doctor)
    owner.grant_access(stream, "doctor", start=120_000, end=480_000)

    consumer = TimeCryptConsumer(server=server, principal=doctor)
    consumer.fetch_access(stream, config)
    in_scope = consumer.get_stat_range(stream, 120_000, 480_000, operators=("count", "mean"))
    print("doctor's view of the granted range:", in_scope)

    try:
        consumer.get_stat_range(stream, 0, 600_000)
    except AccessDeniedError as exc:
        print("doctor querying outside the grant is rejected:", exc)


if __name__ == "__main__":
    main()
