#!/usr/bin/env python3
"""A genuinely distributed deployment: TimeCrypt over remote storage nodes.

The other examples keep storage in-process.  This one runs the paper's
deployment shape end to end: three *storage node* processes
(:class:`~repro.storage.node.StorageNodeServer`, each a TCP server fronting
its own local store, speaking the pipelined ``kv_*`` wire protocol), a
:class:`~repro.storage.cluster.StorageCluster` whose ``store_factory`` dials
them with :class:`~repro.storage.remote.RemoteKeyValueStore` clients, and a
crypto-oblivious :class:`~repro.server.engine.ServerEngine` on top — so every
replicated write and every batched read crosses a real socket, one wire
round trip per owning node per cluster batch.

The demo ingests, queries, onboards a consumer with the pipelined cold-start
warm-up, then kills a node mid-traffic, shows the cluster re-routing around
it (parking hints for the writes it misses), restarts it on the same port,
and heals it by replaying the hints on ``mark_up`` — ``repair_node`` then
confirms there is nothing left to backfill.  Finally it scales the cluster
out to a fourth node (streaming only the moved ranges) and back in — all
over sockets, all while the data stays readable — and signs off by scraping
a storage node's unified metrics and span buffer over the wire (``stats``
and ``trace_dump``, one round trip each).

Run it with ``python examples/remote_cluster.py``.
"""

from __future__ import annotations

from repro import Principal, ServerEngine, StreamConfig, TimeCrypt, TimeCryptConsumer
from repro.access.keystore import TokenStore
from repro.net.client import RemoteServerClient
from repro.net.messages import Request
from repro.storage import MemoryStore, StorageCluster
from repro.storage.node import StorageNodeServer
from repro.storage.remote import RemoteKeyValueStore

NUM_NODES = 3
REPLICATION_FACTOR = 2


def main() -> None:
    # -- the storage tier: one TCP server per node ------------------------------
    backing = {f"node-{index}": MemoryStore() for index in range(NUM_NODES)}
    servers = {name: StorageNodeServer(store).start() for name, store in backing.items()}
    addresses = {name: server.address for name, server in servers.items()}
    for name, (host, port) in addresses.items():
        print(f"storage {name} listening on {host}:{port}")

    cluster = StorageCluster(
        num_nodes=NUM_NODES,
        replication_factor=REPLICATION_FACTOR,
        store_factory=lambda name: RemoteKeyValueStore(
            *addresses[name], timeout=5.0, tracing=True
        ),
    )
    engine = ServerEngine(store=cluster, token_store=TokenStore(cluster))
    owner = TimeCrypt(server=engine, owner_id="alice")

    try:
        # -- ingest: every cluster batch is one round trip per owning node -----
        config = StreamConfig(chunk_interval=5_000, value_scale=100)
        stream = owner.create_stream(metric="temperature", unit="celsius", config=config)
        records = [(t * 1000, 21.5 + 0.01 * (t % 300)) for t in range(900)]
        owner.insert_records(stream, records)
        owner.flush(stream)
        per_node = {
            name: cluster.node_store(name).wire_stats.round_trips
            for name in cluster.node_names
        }
        print(
            f"ingested {len(records)} records into {engine.stream_head(stream)} encrypted "
            f"chunks replicated over TCP (per-node wire round trips: {per_node})"
        )

        stats = owner.get_stat_range(stream, 0, 900_000, operators=("count", "mean"))
        print("owner query across the socket tier:", {k: round(v, 3) for k, v in stats.items()})

        # -- consumer cold start: grants + metadata + envelopes, pipelined -----
        bob = Principal.create("bob")
        owner.register_principal(bob)
        owner.grant_access(stream, bob.principal_id, 0, 450_000, resolution_interval=25_000)
        consumer = TimeCryptConsumer(server=engine, principal=bob)
        consumer.warm_up([stream])
        print(
            "restricted consumer after warm-up:",
            consumer.get_stat_range(stream, 0, 450_000, operators=("count", "mean")),
        )

        # -- kill a node: traffic re-routes, hints park on the survivors -------
        victim = "node-1"
        servers[victim].stop()
        owner.insert_records(stream, [(t * 1000, 20.0) for t in range(900, 1200)])
        owner.flush(stream)
        print(
            f"{victim} killed mid-ingest: cluster re-routed around it "
            f"(marked down: {sorted(cluster._down)}), head now {engine.stream_head(stream)}; "
            "every write it missed parked a hint on a surviving replica"
        )

        # -- restart on the same port: mark_up replays the hints ---------------
        servers[victim] = StorageNodeServer(
            backing[victim], port=addresses[victim][1]
        ).start()
        replayed = cluster.mark_up(victim)
        repaired = cluster.repair_node(victim)
        print(
            f"{victim} restarted: {replayed} hinted writes replayed over the wire, "
            f"repair_node then found {repaired} keys left to backfill"
        )

        stats = owner.get_stat_range(stream, 0, 1_200_000, operators=("count", "mean"))
        print("owner query after heal:", {k: round(v, 3) for k, v in stats.items()})
        logical, physical = cluster.size_bytes(), cluster.physical_size_bytes()
        print(
            f"cluster stores {logical} logical bytes "
            f"({physical} physical, replication factor {REPLICATION_FACTOR})"
        )

        # -- scale out: a fourth node joins live -------------------------------
        backing["node-3"] = MemoryStore()
        servers["node-3"] = StorageNodeServer(backing["node-3"]).start()
        addresses["node-3"] = servers["node-3"].address
        cluster.add_node(
            "node-3", store=RemoteKeyValueStore(*addresses["node-3"], timeout=5.0)
        )
        moved = cluster.last_rebalance
        print(
            f"node-3 joined live: {moved['moved_keys']} keys changed replicas, "
            f"{moved['copied_keys']} streamed over in {moved['handoff_batches']} "
            "bounded batches (reads kept working mid-handoff)"
        )

        # -- scale back in: the newcomer leaves, survivors re-absorb its ranges
        cluster.decommission_node("node-3")
        servers.pop("node-3").stop()
        stats = owner.get_stat_range(stream, 0, 1_200_000, operators=("count", "mean"))
        print(
            f"node-3 decommissioned (cluster back to {cluster.node_names}); "
            "query after the full cycle:",
            {k: round(v, 3) for k, v in stats.items()},
        )

        # -- observability: scrape a storage node's telemetry over the wire ----
        with RemoteServerClient(*addresses["node-0"], timeout=5.0) as probe:
            reply = probe.call_many([Request("stats")])[0].result
            metrics = reply["metrics"]
            print(
                f"stats scrape of {reply['node']} (1 round trip): "
                f"{len(metrics)} metric sources, "
                f"{metrics['tracing.spans']['recorded']} spans recorded in-process"
            )
            spans = probe.call_many([Request("trace_dump")])[0].result["spans"]
            kv = [s for s in spans if s["kind"] == "server" and s["op"].startswith("kv_")]
            print(
                f"trace_dump: {len(kv)} kv_* server spans buffered from the "
                "replicated wire traffic"
            )
    finally:
        cluster.close()
        for server in servers.values():
            server.stop()
        print("storage nodes shut down")


if __name__ == "__main__":
    main()
