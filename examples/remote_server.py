#!/usr/bin/env python3
"""Client/server deployment: TimeCrypt over the TCP wire protocol.

The other examples talk to an in-process server engine.  This one runs the
server behind the framed TCP protocol (the Netty/protobuf stand-in) and
drives it through :class:`repro.net.client.RemoteServerClient`, demonstrating
that the client engines work unchanged against a remote server — the server
still only ever sees ciphertexts.

Run it with ``python examples/remote_server.py``.
"""

from __future__ import annotations

from repro import Principal, ServerEngine, StreamConfig, TimeCrypt, TimeCryptConsumer
from repro.net.client import RemoteServerClient
from repro.net.server import TimeCryptTCPServer


def main() -> None:
    engine = ServerEngine()
    with TimeCryptTCPServer(engine) as tcp_server:
        host, port = tcp_server.address
        print(f"TimeCrypt server listening on {host}:{port}")

        with RemoteServerClient(host, port) as remote:
            print("ping:", remote.ping())

            # The owner-side client is identical to the in-process case; only the
            # server handle differs.
            owner = TimeCrypt(server=remote, owner_id="alice")
            config = StreamConfig(chunk_interval=5_000, value_scale=100)
            stream = owner.create_stream(metric="temperature", unit="celsius", config=config)

            records = [(t * 1000, 21.5 + 0.01 * (t % 300)) for t in range(1800)]
            owner.insert_records(stream, records)
            owner.flush(stream)
            print(f"ingested {len(records)} records over TCP "
                  f"({remote.stream_head(stream)} encrypted chunks stored)")

            stats = owner.get_stat_range(stream, 0, 1_800_000, operators=("count", "mean", "stdev"))
            print("owner query over the wire:", {k: round(stats[k], 3) for k in ("count", "mean", "stdev")})

            # Grants and consumer pickup also cross the wire as sealed blobs.
            auditor = Principal.create("auditor")
            owner.register_principal(auditor)
            owner.grant_access(stream, "auditor", 0, 900_000)
            consumer = TimeCryptConsumer(server=remote, principal=auditor)
            consumer.fetch_access(stream, config)
            print(
                "auditor query over the wire:",
                consumer.get_stat_range(stream, 0, 900_000, operators=("count", "mean")),
            )

        print("server shutting down")


if __name__ == "__main__":
    main()
