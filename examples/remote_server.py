#!/usr/bin/env python3
"""Client/server deployment: TimeCrypt over the pipelined TCP wire protocol.

The other examples talk to an in-process server engine.  This one runs the
server behind the framed TCP protocol (the Netty/protobuf stand-in) and
drives it through :class:`repro.net.client.RemoteServerClient`, demonstrating
that the client engines work unchanged against a remote server — the server
still only ever sees ciphertexts.

Since protocol v2 the connection is pipelined and request-multiplexed: the
client negotiates the protocol with a ``hello`` at connect, an N-chunk
ingest batch ships as one framed ``insert_chunks`` request, a cohort grant
burst is one ``put_grants`` request, and heterogeneous call batches
collapse into a single round trip through ``client.pipeline()``.  The
``wire_stats`` counters printed below make the round-trip savings visible.

Run it with ``python examples/remote_server.py``.
"""

from __future__ import annotations

from repro import Principal, ServerEngine, StreamConfig, TimeCrypt, TimeCryptConsumer
from repro.net.client import RemoteServerClient
from repro.net.server import TimeCryptTCPServer
from repro.util.timeutil import TimeRange


def main() -> None:
    engine = ServerEngine()
    with TimeCryptTCPServer(engine) as tcp_server:
        host, port = tcp_server.address
        print(f"TimeCrypt server listening on {host}:{port}")

        with RemoteServerClient(host, port) as remote:
            print(f"negotiated protocol v{remote.protocol_version}, ping: {remote.ping()}")

            # The owner-side client is identical to the in-process case; only the
            # server handle differs.
            owner = TimeCrypt(server=remote, owner_id="alice")
            config = StreamConfig(chunk_interval=5_000, value_scale=100)
            stream = owner.create_stream(metric="temperature", unit="celsius", config=config)

            records = [(t * 1000, 21.5 + 0.01 * (t % 300)) for t in range(1800)]
            remote.wire_stats.reset()
            owner.insert_records(stream, records)
            owner.flush(stream)
            print(
                f"ingested {len(records)} records over TCP "
                f"({remote.stream_head(stream)} encrypted chunks stored, "
                f"{remote.wire_stats.round_trips - 1} ingest round trips)"
            )

            stats = owner.get_stat_range(stream, 0, 1_800_000, operators=("count", "mean", "stdev"))
            print("owner query over the wire:", {k: round(stats[k], 3) for k in ("count", "mean", "stdev")})

            # A cohort grant burst crosses the wire as one put_grants request.
            cohort = [Principal.create(f"auditor-{index}") for index in range(3)]
            for principal in cohort:
                owner.register_principal(principal)
            remote.wire_stats.reset()
            owner.grant_access_many(
                stream, [(p.principal_id, 0, 900_000, None) for p in cohort]
            )
            print(
                f"granted {len(cohort)} principals in "
                f"{remote.wire_stats.round_trips} wire round trip(s)"
            )

            # Heterogeneous call batches pipeline into a single round trip.
            remote.wire_stats.reset()
            with remote.pipeline() as batch:
                head = batch.stream_head(stream)
                first_chunks = batch.get_range(stream, TimeRange(0, 60_000))
                grants = [batch.fetch_grants(stream, p.principal_id) for p in cohort]
            print(
                f"pipelined {2 + len(cohort)} calls in "
                f"{remote.wire_stats.round_trips} round trip: head={head.result()}, "
                f"{len(first_chunks.result())} chunks, "
                f"{sum(len(g.result()) for g in grants)} sealed grants picked up"
            )

            consumer = TimeCryptConsumer(server=remote, principal=cohort[0])
            consumer.fetch_access(stream, config)
            print(
                "auditor query over the wire:",
                consumer.get_stat_range(stream, 0, 900_000, operators=("count", "mean")),
            )

        print("server shutting down")


if __name__ == "__main__":
    main()
