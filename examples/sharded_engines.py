#!/usr/bin/env python3
"""Horizontal engine sharding: four engines behind a stream router.

The engine tier is stateless apart from what it persists in storage, so
TimeCrypt scales it *horizontally*: N :class:`~repro.server.engine
.ServerEngine` processes, each behind its own TCP server, with stream
ownership decided by consistent-hashing the stream uuid across the shard
names.  A :class:`~repro.net.client.ShardedServerClient` learns the
routing table in the ``hello`` handshake and talks straight to each
stream's owner — the hot path has no extra hop.  A
:class:`~repro.server.router.StreamRouter` fronts the same shards for
routing-unaware clients and proxies their requests to the right engine.

The demo deploys four engine shards over one shared store, ingests a
handful of streams through the routing-aware client, shows where each
stream landed, pokes a *wrong* shard directly to see the typed redirect,
reads through the router proxy, onboards a consumer, then removes one
engine live: the survivors pick up its streams from shared storage and
the client converges onto the new table (epoch bump) without losing a
read.  It closes by scraping the router's unified metrics and the span
buffer over the wire — ``stats`` and ``trace_dump`` each cost exactly one
round trip.

Run it with ``python examples/sharded_engines.py``.
"""

from __future__ import annotations

from repro import Principal, ServerEngine, StreamConfig, TimeCrypt, TimeCryptConsumer
from repro.access.keystore import TokenStore
from repro.exceptions import WrongShardError
from repro.net.client import RemoteServerClient, ShardedServerClient
from repro.net.messages import Request
from repro.server.router import deploy_sharded_engines
from repro.storage import MemoryStore

NUM_ENGINES = 4
NUM_STREAMS = 6


def main() -> None:
    # -- the engine tier: four shards over one shared storage tier --------------
    shared = MemoryStore()
    engines = {
        f"engine-{index}": ServerEngine(store=shared, token_store=TokenStore(shared))
        for index in range(NUM_ENGINES)
    }
    router, shards = deploy_sharded_engines(engines)
    for name, shard in sorted(shards.items()):
        host, port = shard.address
        print(f"engine shard {name} listening on {host}:{port}")
    host, port = router.address
    print(f"stream router listening on {host}:{port}")

    client = ShardedServerClient(host, port, timeout=5.0, tracing=True)
    try:
        table = client.routing_table
        print(f"client learned the routing table at hello (epoch {table.epoch}, {len(table)} engines)")

        # -- ingest: the routing-aware client goes straight to each owner ------
        owner = TimeCrypt(server=client, owner_id="alice")
        config = StreamConfig(chunk_interval=5_000, value_scale=100)
        streams = [
            owner.create_stream(metric=f"sensor-{index}", config=config)
            for index in range(NUM_STREAMS)
        ]
        for stream in streams:
            owner.insert_records(stream, [(t * 1000, 20.0 + (t % 7)) for t in range(300)])
            owner.flush(stream)
        placement = {stream: table.owner_of(stream) for stream in streams}
        for index, stream in enumerate(streams):
            print(f"sensor-{index} ({stream[:8]}…) -> {placement[stream]}")

        stats = owner.get_stat_range(streams[0], 0, 300_000, operators=("count", "mean"))
        print("owner query via the owning shard:", {k: round(v, 3) for k, v in stats.items()})

        # -- ownership is enforced: a wrong shard answers with a redirect ------
        target = streams[0]
        foreign = next(name for name in sorted(shards) if name != placement[target])
        with RemoteServerClient(*shards[foreign].address, timeout=5.0) as direct:
            try:
                direct.stream_head(target)
            except WrongShardError as redirect:
                print(f"{foreign} refused the misrouted read: {redirect}")

        # -- routing-unaware clients just talk to the router proxy -------------
        with RemoteServerClient(host, port, timeout=5.0) as legacy:
            head = legacy.stream_head(target)
            print(f"router proxied a legacy client's read (head={head} chunks)")

        # -- a consumer onboards through the sharded tier ----------------------
        bob = Principal.create("bob")
        owner.register_principal(bob)
        owner.grant_access(target, bob.principal_id, 0, 150_000)
        consumer = TimeCryptConsumer(server=client, principal=bob)
        consumer.warm_up([target])
        print(
            "restricted consumer read:",
            consumer.get_stat_range(target, 0, 150_000, operators=("count", "mean")),
        )

        # -- remove an engine live: survivors adopt its streams ----------------
        victim = placement[target]
        shards[victim].stop()
        router.remove_engine(victim)
        stats = owner.get_stat_range(target, 0, 300_000, operators=("count", "mean"))
        new_table = client.routing_table
        print(
            f"{victim} removed live: {target[:8]}… rehashed to "
            f"{new_table.owner_of(target)} (epoch {new_table.epoch}), which loaded the "
            f"stream from shared storage — query still answers "
            f"{ {k: round(v, 3) for k, v in stats.items()} }"
        )

        # -- observability: scrape any tier's telemetry in one round trip ------
        with RemoteServerClient(host, port, timeout=5.0) as probe:
            metrics = probe.call_many([Request("stats")])[0].result["metrics"]
            sched = metrics["server.scheduler[router]"]
            print(
                f"stats scrape of the router (1 round trip): "
                f"{sched['dispatched_interactive']} interactive frames dispatched, "
                f"{metrics['tracing.spans']['recorded']} spans recorded in-process"
            )
            spans = probe.call_many([Request("trace_dump")])[0].result["spans"]
            last = next(s for s in reversed(spans) if s["op"] == "stat_range")
            tree = [s for s in spans if s["trace_id"] == last["trace_id"]]
            print(
                f"trace_dump: the last stat_range trace ({last['trace_id']}) has "
                f"{len(tree)} spans across {sorted({s['node'] for s in tree})}"
            )
    finally:
        client.close()
        router.stop()
        for shard in shards.values():
            shard.stop()
        print("router and engine shards shut down")


if __name__ == "__main__":
    main()
