"""Setuptools shim.

The primary project metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e .`` works in offline environments whose setuptools/pip
combination cannot build PEP 660 editable wheels (no ``wheel`` package
available).  ``pip install -e . --no-build-isolation --no-use-pep517`` falls
back to the classic ``setup.py develop`` path through this shim.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "TimeCrypt reproduction: encrypted time series data store with "
        "cryptographic access control"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
