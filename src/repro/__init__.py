"""TimeCrypt reproduction: an encrypted time series data store with cryptographic access control.

This package reimplements the system described in *TimeCrypt: Encrypted Data
Stream Processing at Scale with Cryptographic Access Control* (NSDI 2020):

* :mod:`repro.crypto` — HEAC (the additively homomorphic, access-controlled
  stream cipher), the GGM key-derivation tree, dual key regression, the AEADs
  protecting raw chunk payloads, and the baseline ciphers the paper compares
  against (Paillier, EC-ElGamal, an ABE stand-in).
* :mod:`repro.timeseries` — points, streams, chunking, digests, compression.
* :mod:`repro.index` — the encrypted k-ary time-partitioned aggregation index.
* :mod:`repro.storage` — the embedded replicated key-value store (Cassandra
  stand-in).
* :mod:`repro.access` — principals, policies, grants, resolution restriction,
  revocation.
* :mod:`repro.client` / :mod:`repro.server` — the trusted client engine and
  the untrusted server engine.
* :mod:`repro.core` — the Table-1 API facade (:class:`repro.TimeCrypt`) plus
  the plaintext and strawman baselines.
* :mod:`repro.net` — the client/server wire protocol and transports.
* :mod:`repro.workloads` — the mHealth and DevOps workload generators used in
  the evaluation.

Quickstart::

    from repro import ServerEngine, TimeCrypt

    server = ServerEngine()
    owner = TimeCrypt(server=server, owner_id="alice")
    stream = owner.create_stream(metric="heart-rate")
    owner.insert_records(stream, [(t, 60 + t % 5) for t in range(0, 60_000, 20)])
    owner.flush(stream)
    print(owner.get_stat_range(stream, 0, 60_000, operators=("mean", "count")))
"""

from repro.access.policy import AccessPolicy, Resolution
from repro.access.principal import IdentityProvider, Principal
from repro.core.plaintext import PlaintextTimeSeriesStore
from repro.core.strawman import StrawmanStore
from repro.core.timecrypt import TimeCrypt, TimeCryptConsumer
from repro.server.engine import ServerEngine
from repro.timeseries.digest import DigestConfig, HistogramConfig
from repro.timeseries.point import DataPoint
from repro.timeseries.stream import StreamConfig, StreamMetadata
from repro.util.timeutil import TimeRange

__version__ = "1.0.0"

__all__ = [
    "TimeCrypt",
    "TimeCryptConsumer",
    "ServerEngine",
    "PlaintextTimeSeriesStore",
    "StrawmanStore",
    "Principal",
    "IdentityProvider",
    "AccessPolicy",
    "Resolution",
    "StreamConfig",
    "StreamMetadata",
    "DigestConfig",
    "HistogramConfig",
    "DataPoint",
    "TimeRange",
    "__version__",
]
