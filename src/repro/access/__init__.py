"""Access control: principals, policies, tokens, resolution restriction, revocation."""

from repro.access.grants import AccessGrant, GrantManager
from repro.access.keystore import TokenStore
from repro.access.policy import AccessPolicy, Resolution
from repro.access.principal import IdentityProvider, Principal
from repro.access.resolution import ResolutionKeystream, ResolutionShare
from repro.access.tokens import AccessToken

__all__ = [
    "Principal",
    "IdentityProvider",
    "AccessPolicy",
    "Resolution",
    "AccessToken",
    "TokenStore",
    "AccessGrant",
    "GrantManager",
    "ResolutionKeystream",
    "ResolutionShare",
]
