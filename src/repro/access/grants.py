"""Grant management: turning policies into key material (Table 1, §4.3-§4.4).

The :class:`GrantManager` is owner-side logic.  Given an access policy it

1. maps the policy's time range onto chunk-window indices,
2. derives the minimal key material enforcing the policy
   (tree tokens for full resolution, a dual-key-regression share plus key
   envelopes for restricted resolution),
3. seals the resulting :class:`~repro.access.tokens.AccessToken` for the
   recipient via the identity provider, and
4. parks the sealed token (and any envelopes) in the server's token store.

Revocation (forward secrecy only, per §3.3) is implemented by replacing the
stored grant with one whose end is clipped: the principal keeps key material
for data it already had access to, but new grants never extend past the
revocation point, and open-ended subscriptions stop being refreshed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.access.keystore import TokenStore
from repro.access.policy import AccessPolicy, OPEN_END, Resolution
from repro.access.principal import IdentityProvider
from repro.access.resolution import ResolutionKeystream
from repro.access.tokens import AccessToken
from repro.crypto.keytree import KeyDerivationTree
from repro.exceptions import AccessDeniedError, ConfigurationError
from repro.timeseries.stream import StreamConfig
from repro.util.timeutil import TimeRange


@dataclass
class AccessGrant:
    """Owner-side record of one issued grant."""

    policy: AccessPolicy
    grant_id: int
    revoked_at: Optional[int] = None

    @property
    def is_revoked(self) -> bool:
        return self.revoked_at is not None


@dataclass
class GrantManager:
    """Owner-side issuance and revocation of grants for one stream."""

    stream_uuid: str
    config: StreamConfig
    key_tree: KeyDerivationTree
    identity_provider: IdentityProvider
    token_store: TokenStore
    _grants: Dict[Tuple[str, int], AccessGrant] = field(default_factory=dict, init=False)
    _resolutions: Dict[int, ResolutionKeystream] = field(default_factory=dict, init=False)

    # -- window mapping ---------------------------------------------------------

    def _windows_for(self, time_range: TimeRange) -> Tuple[int, int]:
        """Chunk-window interval [start, end) covered by a policy time range."""
        if time_range.start < self.config.start_time:
            raise ConfigurationError("grant starts before the stream epoch")
        window_start = self.config.window_of(time_range.start)
        if time_range.end >= OPEN_END:
            window_end = self.config.max_chunks
        else:
            window_end = self.config.window_of(max(time_range.end - 1, time_range.start)) + 1
        return window_start, min(window_end, self.config.max_chunks)

    # -- issuance ----------------------------------------------------------------

    def grant(self, policy: AccessPolicy) -> AccessGrant:
        """Issue key material for ``policy`` and park it at the server."""
        return self.grant_many([policy])[0]

    def grant_many(self, policies: List[AccessPolicy]) -> List[AccessGrant]:
        """Issue a burst of grants (e.g. onboarding a cohort of principals).

        All tokens are derived and sealed first; then every envelope batch
        lands in one ``put_envelopes`` per resolution and every sealed token
        in one ``put_grants`` call — over a remote token store that is one
        wire round trip for the whole cohort instead of one per grant.
        """
        if not policies:
            return []
        window_bounds: List[Tuple[int, int]] = []
        for policy in policies:
            if policy.stream_uuid != self.stream_uuid:
                raise ConfigurationError("policy addresses a different stream")
            window_start, window_end = self._windows_for(policy.time_range)
            if window_end <= window_start:
                raise ConfigurationError("the granted time range covers no chunk window")
            window_bounds.append((window_start, window_end))
        # One shared subtree-cover traversal for every full-resolution policy
        # in the cohort: overlapping ranges (the common burst shape — many
        # principals granted the same recent window) derive shared cover
        # nodes once instead of once per grant.
        full_slots = [slot for slot, policy in enumerate(policies) if policy.resolution.is_full]
        cohort_tokens = dict(
            zip(
                full_slots,
                self.key_tree.tokens_for_ranges(
                    [
                        (
                            window_bounds[slot][0],
                            min(window_bounds[slot][1] + 1, self.key_tree.num_keys),
                        )
                        for slot in full_slots
                    ]
                ),
            )
        )
        sealed_batch: List[Tuple[str, str, bytes]] = []
        envelope_batches: Dict[int, Dict[int, bytes]] = {}
        for slot, policy in enumerate(policies):
            window_start, window_end = window_bounds[slot]
            if policy.resolution.is_full:
                token = self._full_resolution_token(
                    policy, window_start, window_end, tree_tokens=cohort_tokens[slot]
                )
            else:
                token, envelopes = self._restricted_resolution_token(
                    policy, window_start, window_end
                )
                envelope_batches.setdefault(policy.resolution.chunks, {}).update(envelopes)
            sealed = self.identity_provider.encrypt_for(
                policy.principal_id, token.to_bytes(), context=self.stream_uuid.encode("utf-8")
            )
            sealed_batch.append((self.stream_uuid, policy.principal_id, sealed))
        # Envelopes before grants: a consumer that sees its sealed token must
        # also find the envelopes its keystream needs (idempotent re-publish).
        for resolution_chunks, envelopes in sorted(envelope_batches.items()):
            self.token_store.put_envelopes(self.stream_uuid, resolution_chunks, envelopes)
        grant_ids = self.token_store.put_grants(sealed_batch)
        grants: List[AccessGrant] = []
        for policy, grant_id in zip(policies, grant_ids):
            grant = AccessGrant(policy=policy, grant_id=grant_id)
            self._grants[(policy.principal_id, grant_id)] = grant
            grants.append(grant)
        return grants

    def _full_resolution_token(
        self,
        policy: AccessPolicy,
        window_start: int,
        window_end: int,
        tree_tokens: Optional[List] = None,
    ) -> AccessToken:
        # HEAC decryption of window w needs keys k_w and k_{w+1}, so the shared
        # keystream segment extends one position past the last granted window.
        # A cohort burst passes tokens pre-derived by the shared traversal in
        # tokens_for_ranges; the scalar path derives its own.
        if tree_tokens is None:
            tree_tokens = self.key_tree.tokens_for_range(
                window_start, min(window_end + 1, self.key_tree.num_keys)
            )
        return AccessToken(
            stream_uuid=self.stream_uuid,
            principal_id=policy.principal_id,
            time_range=policy.time_range,
            window_start=window_start,
            window_end=window_end,
            resolution_chunks=1,
            prg=self.key_tree.prg_name,
            tree_tokens=tree_tokens,
        )

    def _restricted_resolution_token(
        self, policy: AccessPolicy, window_start: int, window_end: int
    ) -> Tuple[AccessToken, Dict[int, bytes]]:
        """The sealed share plus the envelopes the principal will need.

        The caller publishes the envelopes (batched across a grant burst);
        re-publication is idempotent.
        """
        resolution = policy.resolution
        keystream = self.resolution_keystream(resolution)
        share = keystream.share(window_start, window_end)
        envelopes = keystream.make_envelopes(window_start, window_end)
        token = AccessToken(
            stream_uuid=self.stream_uuid,
            principal_id=policy.principal_id,
            time_range=policy.time_range,
            window_start=window_start,
            window_end=window_end,
            resolution_chunks=resolution.chunks,
            prg=self.key_tree.prg_name,
            tree_tokens=[],
            regression_token=share.token,
        )
        return token, envelopes

    def resolution_keystream(self, resolution: Resolution) -> ResolutionKeystream:
        """The (lazily created) resolution keystream for a granularity."""
        existing = self._resolutions.get(resolution.chunks)
        if existing is None:
            existing = ResolutionKeystream(
                stream_uuid=self.stream_uuid,
                resolution_chunks=resolution.chunks,
                base_keystream=self.key_tree,
            )
            self._resolutions[resolution.chunks] = existing
        return existing

    def publish_envelopes(self, resolution: Resolution, window_start: int, window_end: int) -> int:
        """Publish (or refresh) envelopes for a window interval; returns the count."""
        keystream = self.resolution_keystream(resolution)
        envelopes = keystream.make_envelopes(window_start, window_end)
        self.token_store.put_envelopes(self.stream_uuid, resolution.chunks, envelopes)
        return len(envelopes)

    # -- revocation --------------------------------------------------------------------

    def revoke(self, principal_id: str, end_time: int) -> List[AccessGrant]:
        """Revoke a principal's access from ``end_time`` onward (forward secrecy).

        Every live grant whose range extends past ``end_time`` is replaced by
        a clipped grant; already-expired grants are left untouched.  Returns
        the grants that were modified.
        """
        modified: List[AccessGrant] = []
        for (grantee, _grant_id), grant in sorted(self._grants.items()):
            if grantee != principal_id or grant.is_revoked:
                continue
            if grant.policy.time_range.end <= end_time:
                continue
            grant.revoked_at = end_time
            clipped = grant.policy.restrict_end(end_time)
            modified.append(grant)
            if clipped.time_range.duration > 0:
                # Re-issue the clipped grant so future token pickups stop at the
                # revocation point.
                self.grant(clipped)
        if not modified and not any(g for (p, _), g in self._grants.items() if p == principal_id):
            raise AccessDeniedError(f"principal '{principal_id}' holds no grant to revoke")
        return modified

    def grants_for(self, principal_id: str) -> List[AccessGrant]:
        return [grant for (grantee, _), grant in sorted(self._grants.items()) if grantee == principal_id]

    def active_policy(self, principal_id: str) -> Optional[AccessPolicy]:
        """The most recently issued, non-revoked policy for a principal."""
        grants = [g for g in self.grants_for(principal_id) if not g.is_revoked]
        return grants[-1].policy if grants else None
