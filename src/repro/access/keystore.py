"""The server-side token store.

Access tokens are encrypted for their recipient (ECIES) by the data owner and
parked at the server, so principals can pick them up asynchronously (§3.2).
The server never sees token contents — it only stores opaque envelopes keyed
by ``(stream, principal)`` — and additionally stores the public key envelopes
of resolution keystreams (wrapped outer keys), which are equally opaque.

Persistence goes through the storage batch primitives: a cohort grant burst
(:meth:`TokenStore.put_grants`) costs one prefix scan per involved stream
plus one ``multi_put``, an envelope publication is one ``multi_put``, and
grant deletion is a single ``delete_prefix`` (erased server-side on remote
backends) — instead of one round trip per record each.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import AccessDeniedError
from repro.storage.kv import KeyValueStore
from repro.storage.memory import MemoryStore


def _grant_key(stream_uuid: str, principal_id: str, grant_id: int) -> bytes:
    return f"grant/{stream_uuid}/{principal_id}/{grant_id:08d}".encode("utf-8")


def _grant_prefix(stream_uuid: str, principal_id: Optional[str] = None) -> bytes:
    if principal_id is None:
        return f"grant/{stream_uuid}/".encode("utf-8")
    return f"grant/{stream_uuid}/{principal_id}/".encode("utf-8")


def _envelope_key(stream_uuid: str, resolution_chunks: int, window_index: int) -> bytes:
    return f"envelope/{stream_uuid}/{resolution_chunks:08d}/{window_index:016x}".encode("utf-8")


class TokenStore:
    """Stores sealed access tokens and resolution key envelopes."""

    def __init__(self, store: Optional[KeyValueStore] = None) -> None:
        # Explicit None check: an *empty* MemoryStore is falsy (__len__ == 0),
        # so `store or MemoryStore()` would silently drop a caller's store.
        self._store = store if store is not None else MemoryStore()

    # -- sealed grant envelopes -----------------------------------------------

    def put_grant(self, stream_uuid: str, principal_id: str, sealed_token: bytes) -> int:
        """Store a sealed grant envelope; returns its grant id."""
        grant_id = self._next_grant_id(stream_uuid, principal_id)
        self._store.put(_grant_key(stream_uuid, principal_id, grant_id), sealed_token)
        return grant_id

    def put_grants(self, grants: Sequence[Tuple[str, str, bytes]]) -> List[int]:
        """Store a burst of sealed grants; returns their ids in input order.

        Bit-identical to calling :meth:`put_grant` per entry — ids come from
        the same prefix-count rule, replayed in input order against one
        prefix scan per involved stream — but the whole write set lands in a
        single ``multi_put``, so a cohort grant burst costs O(streams)
        storage round trips instead of O(grants)·2.
        """
        if not grants:
            return []
        # All known grant keys per stream (stored now + assigned in-burst),
        # so each id is counted exactly as the sequential scalar path would.
        known_keys: Dict[str, List[bytes]] = {}
        for stream_uuid in {stream_uuid for stream_uuid, _principal, _sealed in grants}:
            known_keys[stream_uuid] = self._store.keys_with_prefix(_grant_prefix(stream_uuid))
        grant_ids: List[int] = []
        items: List[Tuple[bytes, bytes]] = []
        for stream_uuid, principal_id, sealed_token in grants:
            prefix = _grant_prefix(stream_uuid, principal_id)
            grant_id = sum(1 for key in known_keys[stream_uuid] if key.startswith(prefix))
            grant_ids.append(grant_id)
            key = _grant_key(stream_uuid, principal_id, grant_id)
            known_keys[stream_uuid].append(key)
            items.append((key, sealed_token))
        self._store.multi_put(items)
        return grant_ids

    def _next_grant_id(self, stream_uuid: str, principal_id: str) -> int:
        existing = self._store.keys_with_prefix(_grant_prefix(stream_uuid, principal_id))
        return len(existing)

    def grants_for(self, stream_uuid: str, principal_id: str) -> List[bytes]:
        """All sealed envelopes addressed to a principal for a stream."""
        return [
            value
            for _key, value in self._store.scan_prefix(_grant_prefix(stream_uuid, principal_id))
        ]

    def latest_grant(self, stream_uuid: str, principal_id: str) -> bytes:
        grants = self.grants_for(stream_uuid, principal_id)
        if not grants:
            raise AccessDeniedError(
                f"no grant stored for principal '{principal_id}' on stream '{stream_uuid}'"
            )
        return grants[-1]

    def principals_with_grants(self, stream_uuid: str) -> List[str]:
        """Principal ids that have at least one stored grant for the stream."""
        principals = set()
        for key, _value in self._store.scan_prefix(_grant_prefix(stream_uuid)):
            parts = key.decode("utf-8").split("/")
            if len(parts) >= 3:
                principals.add(parts[2])
        return sorted(principals)

    def delete_grants(self, stream_uuid: str, principal_id: Optional[str] = None) -> int:
        """Remove stored grants (all of a stream's, or one principal's).

        A single ``delete_prefix``: remote/cluster backends erase server-side
        in one round trip, however many grants fall.
        """
        return self._store.delete_prefix(_grant_prefix(stream_uuid, principal_id))

    # -- resolution key envelopes -----------------------------------------------

    def put_envelope(
        self, stream_uuid: str, resolution_chunks: int, window_index: int, envelope: bytes
    ) -> None:
        self._store.put(_envelope_key(stream_uuid, resolution_chunks, window_index), envelope)

    def put_envelopes(
        self, stream_uuid: str, resolution_chunks: int, envelopes: Dict[int, bytes]
    ) -> None:
        """Publish a batch of envelopes with one storage ``multi_put``."""
        if not envelopes:
            return
        self._store.multi_put(
            [
                (_envelope_key(stream_uuid, resolution_chunks, window_index), envelope)
                for window_index, envelope in sorted(envelopes.items())
            ]
        )

    def get_envelope(
        self, stream_uuid: str, resolution_chunks: int, window_index: int
    ) -> Optional[bytes]:
        return self._store.get(_envelope_key(stream_uuid, resolution_chunks, window_index))

    def envelopes_for_range(
        self, stream_uuid: str, resolution_chunks: int, window_start: int, window_end: int
    ) -> Dict[int, bytes]:
        """Envelopes for aligned boundaries within ``[window_start, window_end]``."""
        # %016x keys sort lexicographically in numeric order, so the inclusive
        # window bounds translate directly into a key-range scan — which
        # remote/cluster backends filter server-side instead of shipping the
        # stream's whole envelope history.
        envelopes: Dict[int, bytes] = {}
        prefix = f"envelope/{stream_uuid}/{resolution_chunks:08d}/".encode("utf-8")
        lo = _envelope_key(stream_uuid, resolution_chunks, window_start)
        hi = _envelope_key(stream_uuid, resolution_chunks, window_end)
        for key, value in self._store.scan_range(prefix, lo, hi):
            envelopes[int(key.rsplit(b"/", 1)[-1], 16)] = value
        return envelopes

    # -- introspection ---------------------------------------------------------------

    def iter_all(self) -> Iterator[Tuple[bytes, bytes]]:
        return self._store.scan_prefix(b"")

    def size_bytes(self) -> int:
        return self._store.size_bytes()
