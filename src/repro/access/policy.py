"""Access policies: temporal scope and resolution (paper §4.3, §4.4).

An access policy answers two questions about a principal and a stream:

* *when* — the half-open time interval the principal may query, and
* *how fine* — the coarsest chunk multiple ("resolution") at which the
  principal may decrypt aggregates.  ``Resolution.chunks == 1`` means
  full chunk-level access; ``Resolution.chunks == 6`` means only 6-chunk
  aggregates (and coarser multiples thereof) can be decrypted.

Policies are plain data; the cryptographic enforcement happens in the key
material the grant machinery derives from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.util.timeutil import TimeRange

#: Sentinel end time for open-ended subscriptions (GrantOpenAccess).
OPEN_END = (1 << 62)


@dataclass(frozen=True)
class Resolution:
    """An access granularity expressed as a multiple of the chunk interval Δ."""

    chunks: int = 1

    def __post_init__(self) -> None:
        if self.chunks < 1:
            raise ConfigurationError("resolution must be at least one chunk")

    @property
    def is_full(self) -> bool:
        """True for unrestricted (per-chunk) access."""
        return self.chunks == 1

    def aligned(self, window_index: int) -> bool:
        """True when ``window_index`` lies on a boundary of this resolution."""
        return window_index % self.chunks == 0

    def align_down(self, window_index: int) -> int:
        return (window_index // self.chunks) * self.chunks

    def align_up(self, window_index: int) -> int:
        return ((window_index + self.chunks - 1) // self.chunks) * self.chunks

    @classmethod
    def from_interval(cls, interval: int, chunk_interval: int) -> "Resolution":
        """Build a resolution from a time interval (e.g. one minute of 10 s chunks)."""
        if interval <= 0 or chunk_interval <= 0:
            raise ConfigurationError("intervals must be positive")
        if interval % chunk_interval != 0:
            raise ConfigurationError(
                f"resolution interval {interval} is not a multiple of the chunk interval "
                f"{chunk_interval}"
            )
        return cls(chunks=interval // chunk_interval)


@dataclass(frozen=True)
class AccessPolicy:
    """What a principal may see of one stream."""

    stream_uuid: str
    principal_id: str
    time_range: TimeRange
    resolution: Resolution = Resolution(1)

    @property
    def is_open_ended(self) -> bool:
        return self.time_range.end >= OPEN_END

    def restrict_end(self, new_end: int) -> "AccessPolicy":
        """A copy of the policy truncated at ``new_end`` (used by revocation)."""
        if new_end >= self.time_range.end:
            return self
        clipped_end = max(self.time_range.start, new_end)
        return AccessPolicy(
            stream_uuid=self.stream_uuid,
            principal_id=self.principal_id,
            time_range=TimeRange(self.time_range.start, clipped_end),
            resolution=self.resolution,
        )

    def allows_time_range(self, requested: TimeRange) -> bool:
        return self.time_range.contains_range(requested)

    def allows_resolution(self, requested_chunks: int) -> bool:
        """A request at ``requested_chunks`` granularity is allowed when it is a
        multiple of the granted resolution (coarser or equal)."""
        if requested_chunks < 1:
            return False
        return requested_chunks % self.resolution.chunks == 0


def open_ended(
    stream_uuid: str,
    principal_id: str,
    start: int,
    resolution: Optional[Resolution] = None,
) -> AccessPolicy:
    """Policy for an open-ended subscription starting at ``start``."""
    return AccessPolicy(
        stream_uuid=stream_uuid,
        principal_id=principal_id,
        time_range=TimeRange(start, OPEN_END),
        resolution=resolution or Resolution(1),
    )
