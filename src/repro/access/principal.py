"""Principals and the identity provider (the Keybase stand-in).

TimeCrypt assumes an identity provider that maps principal identities to
public keys (§3.3); access tokens are then encrypted under the recipient's
public key and parked on the untrusted server.  :class:`Principal` bundles a
principal's identity and ECIES keypair; :class:`IdentityProvider` is the
public-key directory both data owners and the server consult.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto import hybrid
from repro.exceptions import AccessDeniedError


@dataclass
class Principal:
    """A data consumer (or owner) with an identity and an ECIES keypair."""

    principal_id: str
    private_key: int = field(repr=False)
    public_key: bytes = field(repr=False)

    @classmethod
    def create(cls, principal_id: str) -> "Principal":
        """Generate a fresh keypair for ``principal_id``."""
        private_key, public_key = hybrid.generate_keypair()
        return cls(principal_id=principal_id, private_key=private_key, public_key=public_key)

    def decrypt_envelope(self, blob: bytes, context: bytes = b"") -> bytes:
        """Open an access-token envelope addressed to this principal."""
        return hybrid.decrypt(self.private_key, blob, context)


class IdentityProvider:
    """A public-key directory: identity string -> public key.

    The paper points at Keybase for publicly auditable identity-to-key
    mappings; here registration is explicit and lookups of unknown
    identities fail loudly.
    """

    def __init__(self) -> None:
        self._directory: Dict[str, bytes] = {}

    def register(self, principal: Principal) -> None:
        """Publish a principal's public key."""
        self._directory[principal.principal_id] = principal.public_key

    def register_key(self, principal_id: str, public_key: bytes) -> None:
        """Publish a public key for an identity without holding the private half."""
        self._directory[principal_id] = public_key

    def public_key_of(self, principal_id: str) -> bytes:
        """Look up a principal's public key; raises if unknown."""
        key = self._directory.get(principal_id)
        if key is None:
            raise AccessDeniedError(f"unknown principal '{principal_id}'")
        return key

    def is_registered(self, principal_id: str) -> bool:
        return principal_id in self._directory

    def encrypt_for(self, principal_id: str, plaintext: bytes, context: bytes = b"") -> bytes:
        """Seal a payload for a registered principal."""
        return hybrid.encrypt(self.public_key_of(principal_id), plaintext, context)

    def unregister(self, principal_id: str) -> Optional[bytes]:
        """Remove an identity from the directory (returns its last public key)."""
        return self._directory.pop(principal_id, None)
