"""Resolution keystreams: outer-key sharing via dual key regression (paper §4.4).

To restrict a principal to, say, 6-chunk aggregates, the owner shares only
every 6th key of the HEAC keystream ("outer keys").  Those keys are not
contiguous leaves of the key-derivation tree, so sharing them through tree
tokens would be inefficient.  Instead the owner:

1. creates a *resolution keystream* — a dual-key-regression instance whose
   i-th key wraps the outer key ``k_{i·r}`` (r = resolution in chunks),
2. uploads the wrapped outer keys ("key envelopes") to the server, and
3. shares a bounded dual-key-regression token with the principal.

The principal downloads the envelopes for their interval, unwraps the outer
keys with the regression keys, and can then decrypt exactly the r-chunk
aggregates (and coarser multiples), never anything finer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.crypto.gcm import aead_decrypt, aead_encrypt
from repro.crypto.heac import Keystream
from repro.crypto.keyregression import DualKeyRegression, DualKeyRegressionToken
from repro.exceptions import AccessDeniedError, KeyDerivationError


@dataclass(frozen=True)
class ResolutionShare:
    """What a principal receives for resolution-restricted access.

    ``token`` bounds the derivable regression keys to the envelope indices
    ``[token.lower, token.upper]``; each envelope index ``e`` corresponds to
    outer key ``k_{e·resolution_chunks}``.
    """

    stream_uuid: str
    resolution_chunks: int
    token: DualKeyRegressionToken


class ResolutionKeystream:
    """Owner-side state for one resolution level of one stream."""

    def __init__(
        self,
        stream_uuid: str,
        resolution_chunks: int,
        base_keystream: Keystream,
        length: int = 1 << 16,
    ) -> None:
        if resolution_chunks < 1:
            raise ValueError("resolution must be at least one chunk")
        self._stream_uuid = stream_uuid
        self._resolution_chunks = resolution_chunks
        self._base = base_keystream
        self._regression = DualKeyRegression(length=length)

    @property
    def resolution_chunks(self) -> int:
        return self._resolution_chunks

    @property
    def stream_uuid(self) -> str:
        return self._stream_uuid

    # -- envelopes (owner -> server) ------------------------------------------

    def envelope_index(self, window_index: int) -> int:
        """The envelope covering outer key ``k_window_index`` (must be aligned)."""
        if window_index % self._resolution_chunks != 0:
            raise KeyDerivationError(
                f"window {window_index} is not aligned to the {self._resolution_chunks}-chunk "
                "resolution"
            )
        return window_index // self._resolution_chunks

    def make_envelope(self, window_index: int) -> bytes:
        """Wrap outer key ``k_window_index`` under the regression keystream."""
        envelope_index = self.envelope_index(window_index)
        wrapping_key = self._regression.key(envelope_index)
        outer_key = self._base.leaf(window_index)
        aad = f"{self._stream_uuid}:{self._resolution_chunks}:{window_index}".encode()
        return aead_encrypt(wrapping_key, outer_key, aad)

    def make_envelopes(self, window_start: int, window_end: int) -> Dict[int, bytes]:
        """Envelopes for every aligned boundary in ``[window_start, window_end]``."""
        envelopes: Dict[int, bytes] = {}
        first = ((window_start + self._resolution_chunks - 1) // self._resolution_chunks)
        last = window_end // self._resolution_chunks
        for envelope_index in range(first, last + 1):
            window_index = envelope_index * self._resolution_chunks
            envelopes[window_index] = self.make_envelope(window_index)
        return envelopes

    # -- sharing (owner -> principal) --------------------------------------------

    def share(self, window_start: int, window_end: int) -> ResolutionShare:
        """Token granting the outer keys for aligned boundaries in the interval.

        ``window_start`` and ``window_end`` are chunk-window indices; the
        share covers boundaries ``align_up(start) .. align_down(end)``.
        """
        first = (window_start + self._resolution_chunks - 1) // self._resolution_chunks
        last = window_end // self._resolution_chunks
        if last < first:
            raise KeyDerivationError(
                "the requested interval contains no aligned resolution boundary"
            )
        return ResolutionShare(
            stream_uuid=self._stream_uuid,
            resolution_chunks=self._resolution_chunks,
            token=self._regression.share(first, last),
        )


class ResolutionConsumerKeystream:
    """Principal-side keystream reconstructing outer keys from envelopes.

    Implements the :class:`~repro.crypto.heac.Keystream` protocol so it can be
    plugged straight into :class:`~repro.crypto.heac.HEACCipher`: ``leaf(i)``
    succeeds only for window indices aligned to the granted resolution and
    inside the granted interval — everything else raises, which is exactly
    the cryptographic guarantee (missing inner keys) the paper describes.
    """

    def __init__(self, share: ResolutionShare, envelopes: Dict[int, bytes]) -> None:
        self._share = share
        self._envelopes = dict(envelopes)
        self._cache: Dict[int, bytes] = {}

    @property
    def resolution_chunks(self) -> int:
        return self._share.resolution_chunks

    def covered_windows(self) -> List[int]:
        """The aligned window boundaries this keystream can produce keys for."""
        return [
            envelope_index * self._share.resolution_chunks
            for envelope_index in range(self._share.token.lower, self._share.token.upper + 1)
        ]

    def leaf(self, window_index: int) -> bytes:
        if window_index % self._share.resolution_chunks != 0:
            raise KeyDerivationError(
                f"window {window_index} is finer than the granted "
                f"{self._share.resolution_chunks}-chunk resolution"
            )
        cached = self._cache.get(window_index)
        if cached is not None:
            return cached
        envelope_index = window_index // self._share.resolution_chunks
        envelope = self._envelopes.get(window_index)
        if envelope is None:
            raise AccessDeniedError(f"no key envelope available for window {window_index}")
        wrapping_key = DualKeyRegression.derive_from_token(self._share.token, envelope_index)
        aad = f"{self._share.stream_uuid}:{self._share.resolution_chunks}:{window_index}".encode()
        outer_key = aead_decrypt(wrapping_key, envelope, aad)
        self._cache[window_index] = outer_key
        return outer_key
