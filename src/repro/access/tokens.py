"""Access tokens: the serialized key material a grant hands to a principal.

A grant bundles, depending on the policy's resolution:

* **full resolution** — a set of key-derivation-tree tokens covering the
  granted chunk-window interval (the principal can derive every key, hence
  decrypt per-chunk digests, raw payloads, and any in-range aggregate), or
* **restricted resolution** — a dual-key-regression share plus the indices of
  the key envelopes the principal should fetch (the principal can decrypt
  only aligned aggregates at that resolution or coarser).

Tokens are serialized to bytes, sealed for the recipient with ECIES and
parked in the server's :class:`~repro.access.keystore.TokenStore`.
Serialization uses JSON with hex-encoded byte fields — token payloads are
tiny and readability beats compactness here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional

from repro.crypto.keyregression import DualKeyRegressionToken
from repro.crypto.keytree import TreeToken
from repro.exceptions import ProtocolError
from repro.util.timeutil import TimeRange


@dataclass(frozen=True)
class AccessToken:
    """The decrypted content of one grant, as seen by the principal."""

    stream_uuid: str
    principal_id: str
    time_range: TimeRange
    window_start: int
    window_end: int
    resolution_chunks: int
    prg: str
    tree_tokens: List[TreeToken]
    regression_token: Optional[DualKeyRegressionToken] = None

    @property
    def is_full_resolution(self) -> bool:
        return self.resolution_chunks == 1

    # -- serialization ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        payload = {
            "stream_uuid": self.stream_uuid,
            "principal_id": self.principal_id,
            "time_start": self.time_range.start,
            "time_end": self.time_range.end,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "resolution_chunks": self.resolution_chunks,
            "prg": self.prg,
            "tree_tokens": [
                {
                    "depth": token.depth,
                    "index": token.index,
                    "height": token.height,
                    "value": token.value.hex(),
                }
                for token in self.tree_tokens
            ],
        }
        if self.regression_token is not None:
            payload["regression_token"] = {
                "lower": self.regression_token.lower,
                "upper": self.regression_token.upper,
                "primary_state": self.regression_token.primary_state.hex(),
                "secondary_state": self.regression_token.secondary_state.hex(),
                "length": self.regression_token.length,
            }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @staticmethod
    def from_bytes(blob: bytes) -> "AccessToken":
        try:
            payload = json.loads(blob.decode("utf-8"))
            tree_tokens = [
                TreeToken(
                    depth=entry["depth"],
                    index=entry["index"],
                    height=entry["height"],
                    value=bytes.fromhex(entry["value"]),
                )
                for entry in payload["tree_tokens"]
            ]
            regression_token = None
            if "regression_token" in payload:
                reg = payload["regression_token"]
                regression_token = DualKeyRegressionToken(
                    lower=reg["lower"],
                    upper=reg["upper"],
                    primary_state=bytes.fromhex(reg["primary_state"]),
                    secondary_state=bytes.fromhex(reg["secondary_state"]),
                    length=reg["length"],
                )
            return AccessToken(
                stream_uuid=payload["stream_uuid"],
                principal_id=payload["principal_id"],
                time_range=TimeRange(payload["time_start"], payload["time_end"]),
                window_start=payload["window_start"],
                window_end=payload["window_end"],
                resolution_chunks=payload["resolution_chunks"],
                prg=payload["prg"],
                tree_tokens=tree_tokens,
                regression_token=regression_token,
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ProtocolError("malformed access token") from exc
