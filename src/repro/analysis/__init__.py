"""Repo-specific static invariant analysis (and its runtime sibling, lockwatch).

Three PRs' worth of correctness guarantees in this codebase are promised
in prose but were, until this package, enforced by nothing:

* the zero-copy wire path's *retain audit* — "every attachment view
  stored past request lifetime goes through
  :func:`repro.net.messages.retain`" (PR 8);
* the observability plane's *leakage stance* — "telemetry records op
  names, byte sizes, and timings; never keys, seeds, or plaintext"
  (PR 9);
* the *lock discipline* spread across ~19 ``Lock``/``RLock`` sites in
  four threaded tiers (selector server, router fan-out, cluster
  replication pool, dispatcher engine locks).

This package machine-checks them.  ``python -m repro.analysis`` walks the
repo, parses every module once, and runs a registry of AST rules over the
parsed project:

========  ==============================================================
REPRO001  retain audit: attachment-derived buffers stored past request
          lifetime must go through ``retain()``
REPRO002  telemetry leakage: logging/span calls must not reference
          key-/seed-/plaintext-named bindings
REPRO003  wire-op completeness: every declared operation has a handler
          and an explicit interactive/bulk classification; handlers
          raise typed errors
REPRO004  lock discipline: global lock-acquisition order is acyclic and
          no blocking call (socket I/O, ``Future.result``, dials) runs
          while a lock is held
REPRO005  stats registration: metrics-registry keys are kept and
          unregistered on close/stop; stats structs stay reachable
========  ==============================================================

Findings are suppressed per line with a justified waiver comment::

    some_code()  # repro: allow[REPRO004] why this is safe

(an empty justification is itself a finding), or per fingerprint through
the committed ``ANALYSIS_BASELINE.json``.  ``--strict`` — the CI mode —
additionally fails on unused waivers and stale baseline entries, so the
suppression surface can only shrink.

The runtime half lives in :mod:`repro.analysis.lockwatch`: an
instrumented lock wrapper that watches real executions of the worker
pools for lock-order inversions and blocking-while-locked, enabled in
tests via the ``REPRO_LOCKWATCH`` environment variable.
"""

from repro.analysis.core import (
    AnalysisResult,
    Finding,
    Project,
    Waiver,
    default_paths,
    load_baseline,
    run_analysis,
)
from repro.analysis.rules import all_rules

__all__ = [
    "AnalysisResult",
    "Finding",
    "Project",
    "Waiver",
    "all_rules",
    "default_paths",
    "load_baseline",
    "run_analysis",
]
