"""CLI: ``python -m repro.analysis [paths...] [--strict] [--json] ...``.

Exit codes: 0 clean (new findings all waived/baselined, and in strict
mode no stale baseline entries, unused waivers, or malformed waivers);
1 otherwise; 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.core import (
    DEFAULT_BASELINE_NAME,
    default_paths,
    load_baseline,
    run_analysis,
    write_baseline,
)
from repro.analysis.rules import all_rules


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static invariant analysis (rules REPRO001-REPRO005).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to scan (default: src tests benchmarks under --root)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repo root for relative paths and the baseline (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept current findings into the baseline (reasons still need writing) and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="CI mode: also fail on stale baseline entries, unused waivers, reasonless entries",
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report instead of lines")
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    args = parser.parse_args(argv)

    root = args.root.resolve()
    paths = [path if path.is_absolute() else root / path for path in args.paths]
    if not paths:
        paths = default_paths(root)
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    rules = all_rules()
    if args.rules:
        wanted = {rule_id.strip() for rule_id in args.rules.split(",") if rule_id.strip()}
        unknown = wanted - {rule.rule_id for rule in rules}
        if unknown:
            print(f"error: unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.rule_id in wanted]

    baseline_path = args.baseline if args.baseline is not None else root / DEFAULT_BASELINE_NAME
    baseline_entries, baseline_problems = load_baseline(baseline_path)

    result = run_analysis(paths, rules, root=root, baseline=baseline_entries, strict=args.strict)
    if args.strict:
        result.waiver_findings.extend(baseline_problems)
    failures = result.failures(strict=args.strict)

    if args.write_baseline:
        write_baseline(baseline_path, result.findings + result.baselined)
        print(
            f"wrote {len(result.findings) + len(result.baselined)} entr"
            f"{'y' if len(result.findings) + len(result.baselined) == 1 else 'ies'} to {baseline_path}"
        )
        return 0

    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        for finding in failures:
            print(finding.render())
        summary = (
            f"{len(result.findings)} new finding(s), {len(result.waived)} waived, "
            f"{len(result.baselined)} baselined, {len(result.stale_baseline)} stale baseline entr(ies), "
            f"{len(result.waiver_findings)} waiver/baseline problem(s)"
        )
        print(("FAIL: " if failures else "ok: ") + summary)

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
