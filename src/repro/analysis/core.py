"""Framework for the repo-specific static analyzer.

The moving parts, smallest first:

* :class:`Finding` — one rule violation at one source location, with a
  line-number-free *fingerprint* so committed baselines survive
  unrelated edits above the finding.
* :class:`Waiver` — a parsed ``# repro: allow[RULE] justification``
  comment.  A waiver suppresses findings of that rule on its own line
  and (when it sits alone on a line) on the next code line.  Waivers
  *must* carry a justification; a bare one is reported under the
  synthetic ``WAIVER`` rule, as is a waiver naming an unknown rule and —
  in strict mode — a waiver that suppressed nothing.
* :class:`ModuleInfo` / :class:`Project` — every scanned file parsed
  once, shared by all rules (several rules need cross-module facts: the
  wire-op inventory, the global lock graph).
* :func:`run_analysis` — walk, parse, run rules, apply waivers and the
  baseline, and return an :class:`AnalysisResult` the CLI renders as
  ``path:line: RULE message`` lines or JSON.

Rules are plain objects with ``rule_id``, ``summary``, and
``run(project) -> Iterable[Finding]`` (see :mod:`repro.analysis.rules`);
the registry is assembled in ``rules/__init__.py`` so adding a rule is:
write the module, add it to :func:`repro.analysis.rules.all_rules`, add
a good/bad fixture pair under ``tests/fixtures/analysis/``.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Directories never walked implicitly.  The analysis fixtures are bad on
#: purpose — they must only be scanned when a test passes them explicitly.
EXCLUDED_DIR_PARTS = ("__pycache__", ".git")
EXCLUDED_REL_DIRS = ("tests/fixtures/analysis",)

#: The committed baseline of accepted findings, at the repo root.
DEFAULT_BASELINE_NAME = "ANALYSIS_BASELINE.json"

_WAIVER_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]*)\]\s*(.*)$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, POSIX separators
    line: int
    message: str

    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + path + message, no line.

        Line numbers shift on every unrelated edit above the finding, so
        they are deliberately not part of the identity.
        """
        digest = hashlib.sha256(
            f"{self.rule}|{self.path}|{self.message}".encode("utf-8")
        ).hexdigest()
        return digest[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


@dataclass
class Waiver:
    """A parsed ``# repro: allow[RULE] justification`` comment."""

    path: str
    line: int
    rules: Tuple[str, ...]
    justification: str
    #: The line the waiver suppresses: its own line, or — when the comment
    #: stands alone — the next line.
    target_line: int = 0
    used: bool = False


@dataclass
class ModuleInfo:
    """One parsed source file, shared by every rule."""

    path: str  # repo-relative, POSIX separators
    source: str
    tree: ast.Module
    lines: List[str]
    #: "src" for library code (and explicitly-passed files), "tests" or
    #: "benchmarks" for the support trees.  Rules whose checks only make
    #: sense for library code (handler inventory, raise discipline, the
    #: lock graph) restrict themselves to "src"-scoped modules.
    scope: str

    @property
    def dotted(self) -> str:
        stem = self.path[:-3] if self.path.endswith(".py") else self.path
        return stem.replace("/", ".")


class Project:
    """Every scanned module, parsed once, plus the scan's parse failures."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.modules: Dict[str, ModuleInfo] = {}
        self.parse_failures: List[Finding] = []

    def add_file(self, file_path: Path, explicit: bool = False) -> None:
        rel = _relpath(file_path, self.root)
        if rel in self.modules:
            return
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            self.parse_failures.append(Finding("PARSE", rel, 0, f"unreadable file: {exc}"))
            return
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            self.parse_failures.append(
                Finding("PARSE", rel, exc.lineno or 0, f"syntax error: {exc.msg}")
            )
            return
        scope = "src"
        if not explicit:
            top = rel.split("/", 1)[0]
            if top in ("tests", "benchmarks", "examples"):
                scope = top
        self.modules[rel] = ModuleInfo(
            path=rel, source=source, tree=tree, lines=source.splitlines(), scope=scope
        )

    def src_modules(self) -> List[ModuleInfo]:
        return [info for info in self.modules.values() if info.scope == "src"]

    def get(self, rel_path: str) -> Optional[ModuleInfo]:
        return self.modules.get(rel_path)


@dataclass
class AnalysisResult:
    """Everything one analysis run produced, pre-split for the CLI."""

    findings: List[Finding] = field(default_factory=list)  # new, unwaived, unbaselined
    waived: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline entries that no longer fire (strict mode fails on them).
    stale_baseline: List[Dict[str, str]] = field(default_factory=list)
    #: WAIVER-rule findings: malformed, unjustified, or (strict) unused.
    waiver_findings: List[Finding] = field(default_factory=list)

    def failures(self, strict: bool) -> List[Finding]:
        out = list(self.findings) + list(self.waiver_findings)
        if strict:
            out.extend(
                Finding(
                    "BASELINE",
                    entry.get("path", "?"),
                    0,
                    f"stale baseline entry {entry.get('fingerprint', '?')}"
                    f" ({entry.get('rule', '?')}) no longer fires — remove it",
                )
                for entry in self.stale_baseline
            )
        return out

    def to_json(self) -> Dict[str, object]:
        return {
            "findings": [finding.to_json() for finding in self.findings],
            "waived": [finding.to_json() for finding in self.waived],
            "baselined": [finding.to_json() for finding in self.baselined],
            "stale_baseline": self.stale_baseline,
            "waiver_findings": [finding.to_json() for finding in self.waiver_findings],
            "summary": {
                "new": len(self.findings),
                "waived": len(self.waived),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
                "waiver_problems": len(self.waiver_findings),
            },
        }


def _relpath(file_path: Path, root: Path) -> str:
    try:
        return file_path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return file_path.as_posix()


def default_paths(root: Path) -> List[Path]:
    """The repo surfaces the CI job scans: library, tests, benchmarks."""
    return [root / "src", root / "tests", root / "benchmarks"]


def collect_files(root: Path, paths: Sequence[Path]) -> List[Tuple[Path, bool]]:
    """``(file, explicit)`` pairs: explicitly-named files bypass exclusions."""
    out: List[Tuple[Path, bool]] = []
    for path in paths:
        if path.is_file():
            out.append((path, True))
            continue
        for candidate in sorted(path.rglob("*.py")):
            rel = _relpath(candidate, root)
            if any(part in candidate.parts for part in EXCLUDED_DIR_PARTS):
                continue
            if any(rel == ex or rel.startswith(ex + "/") for ex in EXCLUDED_REL_DIRS):
                continue
            out.append((candidate, False))
    return out


def _real_comments(info: ModuleInfo) -> Iterable[Tuple[int, int, str]]:
    """``(lineno, col, text)`` for genuine COMMENT tokens only.

    A plain line scan would also match waiver *examples* inside
    docstrings and regex literals (this package documents its own
    syntax); the tokenizer tells comments and strings apart for real.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(info.source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        return


def parse_waivers(info: ModuleInfo, known_rules: Iterable[str]) -> Tuple[List[Waiver], List[Finding]]:
    """Extract waiver comments; malformed ones come back as WAIVER findings."""
    known = set(known_rules)
    waivers: List[Waiver] = []
    problems: List[Finding] = []
    for lineno, col, text in _real_comments(info):
        match = _WAIVER_RE.search(text)
        if match is None:
            if "repro:" in text and "allow" in text:
                # A near-miss (rule name without brackets, stray spaces):
                # flagging it beats silently not suppressing.
                problems.append(
                    Finding("WAIVER", info.path, lineno, "malformed waiver comment (expected '# repro: allow[RULE] justification')")
                )
            continue
        rules = tuple(part.strip() for part in match.group(1).split(",") if part.strip())
        justification = match.group(2).strip()
        if not rules:
            problems.append(Finding("WAIVER", info.path, lineno, "waiver names no rule"))
            continue
        unknown = [rule for rule in rules if rule not in known]
        if unknown:
            problems.append(
                Finding("WAIVER", info.path, lineno, f"waiver names unknown rule(s) {', '.join(unknown)}")
            )
        if not justification:
            problems.append(
                Finding("WAIVER", info.path, lineno, f"waiver for {', '.join(rules)} carries no justification")
            )
        source_line = info.lines[lineno - 1] if lineno - 1 < len(info.lines) else ""
        standalone = not source_line[:col].strip()
        target = lineno + 1 if standalone else lineno
        waivers.append(
            Waiver(path=info.path, line=lineno, rules=rules, justification=justification, target_line=target)
        )
    return waivers, problems


def load_baseline(baseline_path: Path) -> Tuple[List[Dict[str, str]], List[Finding]]:
    """The committed baseline entries, plus findings for malformed ones."""
    if not baseline_path.exists():
        return [], []
    problems: List[Finding] = []
    rel = baseline_path.name
    try:
        payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [], [Finding("BASELINE", rel, 0, f"unreadable baseline: {exc}")]
    entries = payload.get("entries", []) if isinstance(payload, dict) else []
    if not isinstance(entries, list):
        return [], [Finding("BASELINE", rel, 0, "baseline 'entries' must be a list")]
    valid: List[Dict[str, str]] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict) or not entry.get("fingerprint"):
            problems.append(Finding("BASELINE", rel, 0, f"baseline entry #{index} has no fingerprint"))
            continue
        reason = str(entry.get("reason", "")).strip()
        if not reason or reason.upper().startswith("TODO"):
            # --write-baseline stamps entries with a TODO reason on purpose:
            # accepting a finding requires a human-written justification.
            problems.append(
                Finding(
                    "BASELINE", rel, 0,
                    f"baseline entry {entry['fingerprint']} ({entry.get('rule', '?')}) carries no reason",
                )
            )
        valid.append(entry)
    return valid, problems


def write_baseline(baseline_path: Path, findings: Sequence[Finding]) -> None:
    """Snapshot current findings as the accepted baseline (reasons required).

    Reasons are written as an explicit TODO: strict mode fails on a
    reasonless entry, so a freshly written baseline forces a human to
    justify every accepted finding before CI goes green.
    """
    entries = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "fingerprint": finding.fingerprint(),
            "message": finding.message,
            "reason": "TODO: justify or fix",
        }
        for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    payload = {
        "_comment": (
            "Accepted findings of `python -m repro.analysis`. Every entry must carry "
            "a non-empty human-written reason; strict mode fails on stale entries."
        ),
        "entries": entries,
    }
    baseline_path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8")


def run_analysis(
    paths: Sequence[Path],
    rules: Sequence[object],
    root: Optional[Path] = None,
    baseline: Sequence[Dict[str, str]] = (),
    strict: bool = False,
) -> AnalysisResult:
    """Parse ``paths``, run every rule, and fold in waivers and the baseline."""
    root = root if root is not None else Path.cwd()
    project = Project(root)
    for file_path, explicit in collect_files(root, paths):
        project.add_file(file_path, explicit=explicit)

    known_rules = [getattr(rule, "rule_id") for rule in rules]
    waivers_by_path: Dict[str, List[Waiver]] = {}
    waiver_problems: List[Finding] = []
    for info in project.modules.values():
        waivers, problems = parse_waivers(info, known_rules)
        if waivers:
            waivers_by_path[info.path] = waivers
        waiver_problems.extend(problems)

    raw: List[Finding] = list(project.parse_failures)
    for rule in rules:
        raw.extend(rule.run(project))
    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    result = AnalysisResult(waiver_findings=waiver_problems)
    baseline_by_fp = {entry["fingerprint"]: entry for entry in baseline}
    matched_fps: set = set()
    for finding in raw:
        waiver = _matching_waiver(waivers_by_path.get(finding.path, ()), finding)
        if waiver is not None:
            waiver.used = True
            result.waived.append(finding)
            continue
        fingerprint = finding.fingerprint()
        if fingerprint in baseline_by_fp:
            matched_fps.add(fingerprint)
            result.baselined.append(finding)
            continue
        result.findings.append(finding)

    result.stale_baseline = [
        entry for fp, entry in baseline_by_fp.items() if fp not in matched_fps
    ]
    if strict:
        for waivers in waivers_by_path.values():
            for waiver in waivers:
                if not waiver.used:
                    result.waiver_findings.append(
                        Finding(
                            "WAIVER",
                            waiver.path,
                            waiver.line,
                            f"unused waiver for {', '.join(waiver.rules)} — the finding no longer fires, remove it",
                        )
                    )
    result.waiver_findings.sort(key=lambda f: (f.path, f.line, f.message))
    return result


def _matching_waiver(waivers: Sequence[Waiver], finding: Finding) -> Optional[Waiver]:
    for waiver in waivers:
        if finding.rule in waiver.rules and finding.line in (waiver.line, waiver.target_line):
            return waiver
    return None
