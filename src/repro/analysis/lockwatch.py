"""Runtime lock-order watchdog — a mini-TSan for the worker pools.

The static REPRO004 rule sees lock nesting it can resolve from the AST;
this module watches *real executions*.  :class:`LockWatcher` swaps each
``repro.*`` module's ``threading`` binding for a proxy whose ``Lock``/
``RLock``/``Condition`` constructors return instrumented wrappers, then
records, per thread, the order in which locks are taken:

* **ordering violations** (hard failures): the global acquisition graph
  — edge A→B when some thread took B while holding A — gains a cycle.
  Two threads need only ever *nest in opposite orders*; the watchdog
  flags the inversion even when the timing never actually deadlocks.
* **blocking observations** (recorded, not fatal): socket I/O
  (``sendall``/``recv``/``connect``/``accept``/…) or a
  ``concurrent.futures`` ``Future.result()`` executed while holding any
  watched lock.  Some of these are the design (per-connection write
  locks); the point is a complete runtime inventory to diff against the
  static waivers.

Locks are named by construction site (``module:lineno``).  Re-acquiring
the *same object* is RLock recursion and adds no edge; nesting two
*distinct* locks born at the same line (two connections' write locks)
is recorded as an observation, not a violation — per-instance locks of
one class are rank-equal by construction.

Enable in tests with the ``REPRO_LOCKWATCH=1`` environment variable
(see ``tests/conftest.py``) or programmatically::

    from repro.analysis.lockwatch import LockWatcher
    watcher = LockWatcher()
    watcher.install()
    try:
        ...  # run workload
        assert watcher.ordering_violations == []
    finally:
        watcher.uninstall()

The proxy swap only covers modules imported at ``install()`` time, so
``install()`` first imports the threaded tiers it exists to watch.
"""

from __future__ import annotations

import concurrent.futures
import importlib
import socket
import sys
import threading
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

#: The threaded tiers install() imports before patching, so a bare
#: ``REPRO_LOCKWATCH=1 pytest tests/test_x.py`` watches them regardless of
#: collection order.
_WATCHED_MODULES = (
    "repro.net.server",
    "repro.net.client",
    "repro.server.router",
    "repro.server.engine",
    "repro.storage.cluster",
    "repro.storage.node",
    "repro.storage.remote",
    "repro.storage.memory",
    "repro.obs.metrics",
    "repro.obs.tracing",
)

_SOCKET_BLOCKERS = ("sendall", "sendmsg", "recv", "recv_into", "connect", "accept")


class LockWatcher:
    """Global acquisition-order graph + blocking-call inventory."""

    def __init__(self) -> None:
        self._tls = threading.local()
        self._graph_lock = threading.Lock()
        # name -> set of names acquired while it was held, with one witness
        # (thread, held-stack) per edge for the report.
        self._edges: Dict[str, Set[str]] = {}
        self._edge_witness: Dict[Tuple[str, str], str] = {}
        self.ordering_violations: List[str] = []
        self.observations: List[str] = []
        self._installed = False
        self._saved_threading: List[Tuple[Any, Any]] = []
        self._saved_patches: List[Tuple[Any, str, Any]] = []

    # -- held-stack bookkeeping (called from WatchedLock) ----------------------

    def _stack(self) -> List[Tuple[str, int]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def record_acquire(self, name: str, obj: object) -> None:
        stack = self._stack()
        obj_id = id(obj)
        if any(held_id == obj_id for _held, held_id in stack):
            # Same object re-entered: RLock recursion, no new edge.
            stack.append((name, obj_id))
            return
        for held_name, _held_id in stack:
            if held_name == name:
                # Distinct instances from one construction site (e.g. two
                # connections' write locks): rank-equal, observe only.
                self.observations.append(
                    f"same-site lock nesting: {name} inside {name} "
                    f"(thread {threading.current_thread().name})"
                )
                continue
            self._add_edge(held_name, name, stack)
        stack.append((name, obj_id))

    def record_release(self, name: str, obj: object) -> None:
        stack = self._stack()
        obj_id = id(obj)
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == (name, obj_id):
                del stack[index]
                return

    def holding(self) -> Optional[str]:
        """The innermost held lock's name, or None."""
        stack = getattr(self._tls, "stack", None)
        if stack:
            return stack[-1][0]
        return None

    def note_blocking(self, desc: str) -> None:
        held = self.holding()
        if held is not None:
            self.observations.append(
                f"blocking call {desc} while holding {held} "
                f"(thread {threading.current_thread().name})"
            )

    def _add_edge(self, holder: str, acquired: str, stack: List[Tuple[str, int]]) -> None:
        with self._graph_lock:
            successors = self._edges.setdefault(holder, set())
            if acquired in successors:
                return
            successors.add(acquired)
            self._edge_witness[(holder, acquired)] = (
                f"thread {threading.current_thread().name}, "
                f"held [{', '.join(held for held, _ in stack)}]"
            )
            cycle = self._find_cycle(acquired, holder)
            if cycle is not None:
                chain = " -> ".join(cycle + [cycle[0]])
                witness = self._edge_witness[(holder, acquired)]
                self.ordering_violations.append(
                    f"lock-order inversion: {chain} (latest edge {holder} -> {acquired}, {witness})"
                )

    def _find_cycle(self, start: str, target: str) -> Optional[List[str]]:
        """A path start→…→target in the edge graph (closing the new edge)."""
        path: List[str] = []
        seen: Set[str] = set()

        def _dfs(node: str) -> bool:
            if node == target:
                path.append(node)
                return True
            if node in seen:
                return False
            seen.add(node)
            for succ in sorted(self._edges.get(node, ())):
                if _dfs(succ):
                    path.append(node)
                    return True
            return False

        if _dfs(start):
            return list(reversed(path))
        return None

    # -- install / uninstall ---------------------------------------------------

    def install(self) -> None:
        """Patch ``repro.*`` lock constructors and blocking primitives."""
        if self._installed:
            return
        self._installed = True
        for name in _WATCHED_MODULES:
            try:
                importlib.import_module(name)
            except ImportError:  # pragma: no cover - partial checkouts
                pass
        proxy = _ThreadingProxy(self)
        for name, module in list(sys.modules.items()):
            if not name.startswith("repro"):
                continue
            if name.startswith("repro.analysis"):
                # Never instrument the instrumentation: this module's own
                # ``threading.Lock()`` inside the proxy would recurse.
                continue
            if getattr(module, "threading", None) is threading:
                self._saved_threading.append((module, threading))
                module.threading = proxy  # type: ignore[attr-defined]

        watcher = self

        orig_result = concurrent.futures.Future.result

        def result(self: Any, timeout: Optional[float] = None) -> Any:
            watcher.note_blocking("Future.result()")
            return orig_result(self, timeout)

        self._saved_patches.append((concurrent.futures.Future, "result", orig_result))
        concurrent.futures.Future.result = result  # type: ignore[method-assign]

        for method in _SOCKET_BLOCKERS:
            orig = getattr(socket.socket, method)

            def blocker(self: Any, *args: Any, _orig: Any = orig, _name: str = method, **kwargs: Any) -> Any:
                watcher.note_blocking(f"socket.{_name}()")
                return _orig(self, *args, **kwargs)

            self._saved_patches.append((socket.socket, method, orig))
            setattr(socket.socket, method, blocker)

    def uninstall(self) -> None:
        if not self._installed:
            return
        self._installed = False
        for module, real in self._saved_threading:
            module.threading = real
        self._saved_threading = []
        for owner, attr, orig in self._saved_patches:
            setattr(owner, attr, orig)
        self._saved_patches = []

    def report(self) -> str:
        lines = [
            f"lockwatch: {len(self._edge_witness)} edge(s), "
            f"{len(self.ordering_violations)} ordering violation(s), "
            f"{len(self.observations)} blocking/nesting observation(s)"
        ]
        lines.extend(self.ordering_violations)
        lines.extend(self.observations[:50])
        return "\n".join(lines)


class _ThreadingProxy:
    """Stands in for the ``threading`` module inside ``repro.*`` modules.

    Lock constructors return watched wrappers named by construction site;
    everything else delegates to the real module.  Replacing each module's
    ``threading`` *global* (rather than patching ``threading.Lock`` itself)
    keeps the stdlib untouched — ``Condition``'s internal ``_is_owned``
    machinery and third-party users see the real primitives.
    """

    def __init__(self, watcher: LockWatcher) -> None:
        self._watcher = watcher

    def Lock(self) -> "WatchedLock":
        return WatchedLock(threading.Lock(), _callsite(), self._watcher)

    def RLock(self) -> "WatchedLock":
        return WatchedLock(threading.RLock(), _callsite(), self._watcher)

    def Condition(self, lock: Optional[Any] = None) -> "WatchedCondition":
        return WatchedCondition(threading.Condition(lock), _callsite(), self._watcher)

    def __getattr__(self, item: str) -> Any:
        return getattr(threading, item)


def _callsite() -> str:
    frame = sys._getframe(2)
    return f"{frame.f_globals.get('__name__', '?')}:{frame.f_lineno}"


class WatchedLock:
    """A Lock/RLock wrapper reporting acquisition order to the watcher."""

    def __init__(self, inner: Any, name: str, watcher: LockWatcher) -> None:
        self._inner = inner
        self._name = name
        self._watcher = watcher

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watcher.record_acquire(self._name, self)
        return acquired

    def release(self) -> None:
        self._watcher.record_release(self._name, self)
        self._inner.release()

    def __enter__(self) -> "WatchedLock":
        self.acquire()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.release()

    def __getattr__(self, item: str) -> Any:
        return getattr(self._inner, item)


class WatchedCondition:
    """A Condition wrapper: tracked acquire/release, delegated wait/notify.

    ``wait()`` internally releases and re-takes the underlying lock; the
    watcher keeps the entry on the held stack for the duration — the
    blocked thread cannot take other locks meanwhile, so no false edges.
    """

    def __init__(self, inner: threading.Condition, name: str, watcher: LockWatcher) -> None:
        self._inner = inner
        self._name = name
        self._watcher = watcher

    def acquire(self, *args: Any) -> bool:
        acquired = self._inner.acquire(*args)
        if acquired:
            self._watcher.record_acquire(self._name, self)
        return acquired

    def release(self) -> None:
        self._watcher.record_release(self._name, self)
        self._inner.release()

    def __enter__(self) -> "WatchedCondition":
        self.acquire()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.release()

    def __getattr__(self, item: str) -> Any:
        return getattr(self._inner, item)


_ACTIVE: Optional[LockWatcher] = None


def install_from_env(env_value: Optional[str]) -> Optional[LockWatcher]:
    """Install a process-global watcher when ``env_value`` is truthy.

    The conftest hook: ``install_from_env(os.environ.get("REPRO_LOCKWATCH"))``.
    Returns the active watcher (new or pre-existing) or None when disabled.
    """
    global _ACTIVE
    if not env_value or env_value.strip() in ("0", "false", ""):
        return None
    if _ACTIVE is None:
        _ACTIVE = LockWatcher()
        _ACTIVE.install()
    return _ACTIVE


def active_watcher() -> Optional[LockWatcher]:
    return _ACTIVE
