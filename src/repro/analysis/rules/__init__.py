"""The rule registry.

Each rule module exposes a ``RULE`` object with ``rule_id``, ``summary``
and ``run(project) -> Iterable[Finding]``.  Adding a rule is: write the
module, append it here, add a good/bad fixture pair under
``tests/fixtures/analysis/``.
"""

from __future__ import annotations

from typing import List

from repro.analysis.rules import locks, retain, stats, telemetry, wireops


def all_rules() -> List[object]:
    """The registry, in rule-id order."""
    return [
        retain.RULE,       # REPRO001
        telemetry.RULE,    # REPRO002
        wireops.RULE,      # REPRO003
        locks.RULE,        # REPRO004
        stats.RULE,        # REPRO005
    ]


__all__ = ["all_rules"]
