"""AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple, Union

FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def walk_functions(tree: ast.Module) -> Iterator[Tuple[Optional[ast.ClassDef], FunctionDef]]:
    """Every function in a module with its enclosing class (or None)."""

    def _visit(node: ast.AST, cls: Optional[ast.ClassDef]) -> Iterator[Tuple[Optional[ast.ClassDef], FunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from _visit(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, child
                yield from _visit(child, cls)
            else:
                yield from _visit(child, cls)

    yield from _visit(tree, None)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """The dotted callee name of a Call, else None."""
    return dotted_name(call.func)


def call_tail(call: ast.Call) -> Optional[str]:
    """The last attribute of the callee (``warning`` for ``self.log.warning``)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def is_self_attribute(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("self", "cls")
    )


def names_in(node: ast.AST) -> Iterator[str]:
    """Every bare Name read inside a subtree."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id


def literal_string_keys(node: ast.Dict) -> Iterator[Tuple[str, ast.AST]]:
    for key, value in zip(node.keys, node.values):
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            yield key.value, value
