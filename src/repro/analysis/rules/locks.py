"""REPRO004 — static lock discipline: acyclic order, no blocking while held.

The repo's four threaded tiers (selector server, router fan-out, cluster
replication pool, dispatcher engine locks) share ~19 ``Lock``/``RLock``
sites.  Two classes of rot this rule catches without running anything:

* **ordering cycles** — module M takes A then B, module N takes B then
  A: a deadlock waiting for the right interleaving.  The rule builds a
  global acquisition graph (edge A→B when B is acquired inside a
  ``with A:`` body, including acquisitions reached through same-class
  method calls) and flags every cycle.
* **blocking while holding a lock** — socket I/O (``sendall``/``recv``/
  ``connect``/``accept``), pool ``Future.result()``, ``time.sleep``,
  dials (``create_connection``, ``RemoteServerClient(...)``) executed
  while a lock is held serialize the whole tier behind one slow peer.
  Some of these are the *design* (per-connection write locks exist to
  serialize writes) — those carry a justified waiver.

Lock identity is ``Class.attr`` for ``self.<attr> = threading.Lock()``
(/``RLock``/``Condition``) assignments; a lock attribute reached through
another receiver (``connection.write_lock``) resolves when exactly one
class declares that attribute.  Same-lock nesting (RLock recursion)
produces no edge.  Method calls propagate within a class to a fixpoint:
``with self._lock: self._helper()`` sees ``_helper``'s acquisitions and
blocking calls.  Cross-class calls are out of static reach — the runtime
:mod:`repro.analysis.lockwatch` covers those.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, Project
from repro.analysis.rules._shared import FunctionDef, call_tail, dotted_name, walk_functions

_LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "Condition"})

#: Method tails that block the calling thread.
_BLOCKING_TAILS = frozenset({"sendall", "sendmsg", "recv", "recv_into", "accept", "connect", "result", "sleep"})

#: Callables that block (socket dials, synchronous client constructors).
_BLOCKING_CALLABLES = frozenset({"create_connection", "RemoteServerClient", "write_vectored"})

#: ``.join`` blocks only on thread-like receivers; on strings it's concat.
_JOIN_RECEIVER_HINTS = ("thread", "worker", "pool", "proc", "future")


@dataclass
class _FuncFacts:
    """Per-function facts before fixpoint propagation."""

    acquires: Set[str] = field(default_factory=set)
    blocks: Set[str] = field(default_factory=set)  # blocking-call descriptions
    calls: Set[str] = field(default_factory=set)  # same-class method names


class _Rule:
    rule_id = "REPRO004"
    summary = "lock acquisition order must be acyclic; no blocking calls while a lock is held"

    def run(self, project: Project) -> Iterator[Finding]:
        modules = [info for info in project.src_modules() if "repro/analysis/" not in info.path]

        # Pass 1: lock declarations → Class.attr ids + attr-name ambiguity map.
        class_locks: Dict[str, Set[str]] = {}  # class name -> lock attrs
        attr_owners: Dict[str, Set[str]] = {}  # attr name -> class names
        for info in modules:
            for cls, func in walk_functions(info.tree):
                if cls is None:
                    continue
                for node in ast.walk(func):
                    attr = _lock_assignment_attr(node)
                    if attr is not None:
                        class_locks.setdefault(cls.name, set()).add(attr)
                        attr_owners.setdefault(attr, set()).add(cls.name)

        resolver = _Resolver(class_locks, attr_owners)

        # Pass 2: per-function facts, keyed (class, name) per module class.
        facts: Dict[Tuple[str, str, str], _FuncFacts] = {}
        functions: Dict[Tuple[str, str, str], Tuple[str, Optional[ast.ClassDef], FunctionDef]] = {}
        for info in modules:
            for cls, func in walk_functions(info.tree):
                cls_name = cls.name if cls is not None else ""
                key = (info.path, cls_name, func.name)
                facts[key] = _collect_facts(func, cls_name, resolver)
                functions[key] = (info.path, cls, func)

        effective = _fixpoint(facts)

        # Pass 3: held-stack walk → edges + blocking-while-held findings.
        edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}
        findings: List[Finding] = []
        reported: Set[Tuple[str, int, str]] = set()  # one finding per (path, line, lock)
        for key, (path, cls, func) in functions.items():
            cls_name = cls.name if cls is not None else ""
            walker = _HeldWalker(path, cls_name, resolver, effective, edges, findings, reported)
            walker.walk_body(func.body, [])

        yield from findings
        yield from _cycle_findings(edges)


RULE = _Rule()


class _Resolver:
    def __init__(self, class_locks: Dict[str, Set[str]], attr_owners: Dict[str, Set[str]]) -> None:
        self._class_locks = class_locks
        self._attr_owners = attr_owners

    def resolve(self, expr: ast.expr, cls_name: str) -> Optional[str]:
        """Lock id for a ``with`` context expression, or None."""
        if not isinstance(expr, ast.Attribute):
            return None
        attr = expr.attr
        owners = self._attr_owners.get(attr)
        if owners is None:
            return None
        if isinstance(expr.value, ast.Name) and expr.value.id in ("self", "cls"):
            if attr in self._class_locks.get(cls_name, ()):
                return f"{cls_name}.{attr}"
            # A lock attr inherited from (or unique to) another class.
            if len(owners) == 1:
                return f"{next(iter(owners))}.{attr}"
            return None
        if len(owners) == 1:
            return f"{next(iter(owners))}.{attr}"
        return None


def _lock_assignment_attr(node: ast.AST) -> Optional[str]:
    """``attr`` for ``self.<attr> = threading.Lock()`` style assignments."""
    if not isinstance(node, ast.Assign) or len(node.targets) != 1:
        return None
    target = node.targets[0]
    if not (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return None
    value = node.value
    if not isinstance(value, ast.Call):
        return None
    name = call_tail(value)
    if name in _LOCK_CONSTRUCTORS:
        return target.attr
    return None


def _blocking_desc(call: ast.Call) -> Optional[str]:
    """A human description if this call blocks, else None."""
    tail = call_tail(call)
    if tail is None:
        return None
    if tail in _BLOCKING_TAILS:
        receiver = ""
        if isinstance(call.func, ast.Attribute):
            receiver = dotted_name(call.func.value) or ""
        return f"{receiver + '.' if receiver else ''}{tail}()"
    if tail in _BLOCKING_CALLABLES:
        return f"{tail}()"
    if tail == "join" and isinstance(call.func, ast.Attribute):
        receiver = (dotted_name(call.func.value) or "").lower()
        if any(hint in receiver for hint in _JOIN_RECEIVER_HINTS):
            return f"{receiver}.join()"
    if tail == "shutdown":
        for kw in call.keywords:
            if kw.arg == "wait" and isinstance(kw.value, ast.Constant) and kw.value.value is True:
                return "shutdown(wait=True)"
    return None


def _collect_facts(func: FunctionDef, cls_name: str, resolver: _Resolver) -> _FuncFacts:
    facts = _FuncFacts()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                lock_id = resolver.resolve(item.context_expr, cls_name)
                if lock_id is not None:
                    facts.acquires.add(lock_id)
        elif isinstance(node, ast.Call):
            desc = _blocking_desc(node)
            if desc is not None:
                facts.blocks.add(desc)
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                facts.calls.add(node.func.attr)
    return facts


def _fixpoint(facts: Dict[Tuple[str, str, str], _FuncFacts]) -> Dict[Tuple[str, str, str], _FuncFacts]:
    """Propagate acquires/blocks through same-class calls to a fixpoint."""
    by_class: Dict[Tuple[str, str], Dict[str, Tuple[str, str, str]]] = {}
    for key in facts:
        path, cls_name, func_name = key
        if cls_name:
            by_class.setdefault((path, cls_name), {})[func_name] = key

    effective = {
        key: _FuncFacts(set(value.acquires), set(value.blocks), set(value.calls))
        for key, value in facts.items()
    }
    changed = True
    iterations = 0
    while changed and iterations < 20:
        changed = False
        iterations += 1
        for key, eff in effective.items():
            path, cls_name, _ = key
            if not cls_name:
                continue
            members = by_class.get((path, cls_name), {})
            for callee_name in eff.calls:
                callee_key = members.get(callee_name)
                if callee_key is None:
                    continue
                callee = effective[callee_key]
                if not callee.acquires <= eff.acquires:
                    eff.acquires |= callee.acquires
                    changed = True
                if not callee.blocks <= eff.blocks:
                    eff.blocks |= callee.blocks
                    changed = True
    return effective


class _HeldWalker:
    """Re-walk a function tracking the stack of held locks."""

    def __init__(
        self,
        path: str,
        cls_name: str,
        resolver: _Resolver,
        effective: Dict[Tuple[str, str, str], _FuncFacts],
        edges: Dict[Tuple[str, str], Tuple[str, int, str]],
        findings: List[Finding],
        reported: Set[Tuple[str, int, str]],
    ) -> None:
        self.path = path
        self.cls_name = cls_name
        self.resolver = resolver
        self.effective = effective
        self.edges = edges
        self.findings = findings
        self.reported = reported

    def walk_body(self, body: List[ast.stmt], held: List[str]) -> None:
        for stmt in body:
            self._walk_stmt(stmt, held)

    def _walk_stmt(self, stmt: ast.stmt, held: List[str]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in stmt.items:
                self._scan_exprs([item.context_expr], held)
                lock_id = self.resolver.resolve(item.context_expr, self.cls_name)
                if lock_id is not None and lock_id not in held:
                    for holder in held:
                        self._add_edge(holder, lock_id, item.context_expr.lineno)
                    acquired.append(lock_id)
            self.walk_body(stmt.body, held + acquired)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs run later (callbacks) — not under this stack
        elif isinstance(stmt, ast.Try):
            self.walk_body(stmt.body, held)
            for handler in stmt.handlers:
                self.walk_body(handler.body, held)
            self.walk_body(stmt.orelse, held)
            self.walk_body(stmt.finalbody, held)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._scan_exprs([stmt.test], held)
            self.walk_body(stmt.body, held)
            self.walk_body(stmt.orelse, held)
        elif isinstance(stmt, ast.For):
            self._scan_exprs([stmt.iter], held)
            self.walk_body(stmt.body, held)
            self.walk_body(stmt.orelse, held)
        else:
            exprs = [node for node in ast.iter_child_nodes(stmt) if isinstance(node, ast.expr)]
            self._scan_exprs(exprs, held)

    def _scan_exprs(self, exprs: List[ast.expr], held: List[str]) -> None:
        if not held:
            return
        for expr in exprs:
            for node in ast.walk(expr):
                if not isinstance(node, ast.Call):
                    continue
                desc = _blocking_desc(node)
                if desc is not None:
                    self._report_block(desc, node.lineno, held[-1])
                if (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                ):
                    callee_key = (self.path, self.cls_name, node.func.attr)
                    callee = self.effective.get(callee_key)
                    if callee is None:
                        continue
                    for lock_id in callee.acquires:
                        if lock_id in held:
                            continue
                        for holder in held:
                            self._add_edge(holder, lock_id, node.lineno)
                    for callee_desc in sorted(callee.blocks):
                        self._report_block(f"{callee_desc} [via self.{node.func.attr}()]", node.lineno, held[-1])

    def _add_edge(self, holder: str, acquired: str, lineno: int) -> None:
        if holder == acquired:
            return
        self.edges.setdefault((holder, acquired), (self.path, lineno, f"{holder} -> {acquired}"))

    def _report_block(self, desc: str, lineno: int, lock_id: str) -> None:
        key = (self.path, lineno, lock_id)
        if key in self.reported:
            return
        self.reported.add(key)
        self.findings.append(
            Finding(
                "REPRO004",
                self.path,
                lineno,
                f"blocking call {desc} while holding {lock_id}",
            )
        )


def _cycle_findings(edges: Dict[Tuple[str, str], Tuple[str, int, str]]) -> Iterator[Finding]:
    graph: Dict[str, Set[str]] = {}
    for holder, acquired in edges:
        graph.setdefault(holder, set()).add(acquired)

    seen_cycles: Set[Tuple[str, ...]] = set()

    def _dfs(node: str, stack: List[str], on_stack: Set[str], visited: Set[str]) -> None:
        visited.add(node)
        on_stack.add(node)
        stack.append(node)
        for neighbour in sorted(graph.get(node, ())):
            if neighbour in on_stack:
                cycle = stack[stack.index(neighbour):]
                canonical = _canonical_cycle(cycle)
                seen_cycles.add(canonical)
            elif neighbour not in visited:
                _dfs(neighbour, stack, on_stack, visited)
        stack.pop()
        on_stack.discard(node)

    visited: Set[str] = set()
    for node in sorted(graph):
        if node not in visited:
            _dfs(node, [], set(), visited)

    for cycle in sorted(seen_cycles):
        first_edge = (cycle[0], cycle[1 % len(cycle)]) if len(cycle) > 1 else None
        path, lineno = "?", 0
        if first_edge is not None and first_edge in edges:
            path, lineno, _ = edges[first_edge]
        yield Finding(
            "REPRO004",
            path,
            lineno,
            f"lock-order cycle: {' -> '.join(cycle + (cycle[0],))}",
        )


def _canonical_cycle(cycle: List[str]) -> Tuple[str, ...]:
    """Rotate so the lexicographically smallest lock leads — stable identity."""
    smallest = min(range(len(cycle)), key=lambda index: cycle[index])
    return tuple(cycle[smallest:] + cycle[:smallest])
