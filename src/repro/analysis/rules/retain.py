"""REPRO001 — retain audit for attachment-derived buffer views.

The zero-copy decode path (PR 8) hands dispatchers ``memoryview``s into
the connection's receive scratch via ``request.attachments``.  Those
views are only valid for the lifetime of the request; anything stored
past it — instance attributes, storage-API calls, containers owned by
``self`` — must first go through :func:`repro.net.messages.retain`
(or any other transforming call, which necessarily materializes a new
object).

The check is a per-function forward taint pass:

* **sources** — any ``<expr>.attachments`` read;
* **propagation** — assignment, subscripting/slicing, tuple/list
  display, comprehensions iterating a tainted iterable, ``for`` loops;
* **laundering** — *any* call with the tainted value as an argument
  (``retain(view)``, ``bytes(view)``, ``decode_encrypted_chunk(view)``
  all produce new objects);
* **sinks** — ``self.<attr> = tainted``, ``self.<attr>[...] = tainted``
  (or tainted used as the key), ``.append``/``.add``/``.extend``/
  ``.setdefault`` on a ``self`` attribute, and calls into the storage
  API surface (``put``/``multi_put``/``insert``/``put_grant(s)``/
  ``put_envelopes``) with a tainted argument.

Local lists (e.g. a response being assembled) are not sinks: they die
with the request.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Set

from repro.analysis.core import Finding, Project
from repro.analysis.rules._shared import FunctionDef, call_tail, is_self_attribute, walk_functions

#: Call tails that persist their arguments beyond the request.
_STORAGE_SINKS = frozenset(
    {
        "put",
        "multi_put",
        "insert",
        "put_grant",
        "put_grants",
        "put_envelopes",
        "store_grant",
    }
)

#: Container mutators that are sinks when the receiver hangs off ``self``.
_CONTAINER_SINKS = frozenset({"append", "add", "extend", "setdefault", "appendleft"})

#: Iteration adapters that yield their inputs unchanged — taint flows through.
_PASSTHROUGH_CALLS = frozenset({"zip", "enumerate", "sorted", "reversed", "iter"})


class _Rule:
    rule_id = "REPRO001"
    summary = "attachment-derived views stored past request lifetime must go through retain()"

    def run(self, project: Project) -> Iterator[Finding]:
        for info in project.src_modules():
            if "repro/analysis/" in info.path:
                continue
            for _cls, func in walk_functions(info.tree):
                yield from _check_function(info.path, func)


RULE = _Rule()


def _check_function(path: str, func: FunctionDef) -> Iterator[Finding]:
    if not _mentions_attachments(func):
        return
    tainted: Set[str] = set()
    yield from _check_body(path, func.name, func.body, tainted)


def _mentions_attachments(func: FunctionDef) -> bool:
    return any(
        isinstance(node, ast.Attribute) and node.attr == "attachments"
        for node in ast.walk(func)
    )


def _check_body(path: str, func_name: str, body: Iterable[ast.stmt], tainted: Set[str]) -> Iterator[Finding]:
    for stmt in body:
        yield from _check_stmt(path, func_name, stmt, tainted)


def _check_stmt(path: str, func_name: str, stmt: ast.stmt, tainted: Set[str]) -> Iterator[Finding]:
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        value = stmt.value
        if value is None:
            return
        yield from _check_expr_sinks(path, func_name, value, tainted)
        value_tainted = _is_tainted(value, tainted)
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            yield from _assign(path, func_name, target, value, value_tainted, tainted)
    elif isinstance(stmt, ast.For):
        yield from _check_expr_sinks(path, func_name, stmt.iter, tainted)
        tainted |= _tainted_bound_names(stmt.target, stmt.iter, tainted)
        yield from _check_body(path, func_name, stmt.body, tainted)
        yield from _check_body(path, func_name, stmt.orelse, tainted)
    elif isinstance(stmt, (ast.If, ast.While)):
        test = stmt.test
        yield from _check_expr_sinks(path, func_name, test, tainted)
        yield from _check_body(path, func_name, stmt.body, tainted)
        yield from _check_body(path, func_name, stmt.orelse, tainted)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield from _check_expr_sinks(path, func_name, item.context_expr, tainted)
        yield from _check_body(path, func_name, stmt.body, tainted)
    elif isinstance(stmt, ast.Try):
        yield from _check_body(path, func_name, stmt.body, tainted)
        for handler in stmt.handlers:
            yield from _check_body(path, func_name, handler.body, tainted)
        yield from _check_body(path, func_name, stmt.orelse, tainted)
        yield from _check_body(path, func_name, stmt.finalbody, tainted)
    elif isinstance(stmt, (ast.Expr, ast.Return)):
        if stmt.value is not None:
            yield from _check_expr_sinks(path, func_name, stmt.value, tainted)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return  # nested defs are walked separately
    else:
        for value in ast.iter_child_nodes(stmt):
            if isinstance(value, ast.expr):
                yield from _check_expr_sinks(path, func_name, value, tainted)


def _assign(
    path: str,
    func_name: str,
    target: ast.expr,
    value: ast.expr,
    value_tainted: bool,
    tainted: Set[str],
) -> Iterator[Finding]:
    if isinstance(target, ast.Name):
        if value_tainted:
            tainted.add(target.id)
        else:
            tainted.discard(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _assign(path, func_name, element, value, value_tainted, tainted)
    elif is_self_attribute(target):
        if value_tainted:
            yield Finding(
                "REPRO001",
                path,
                target.lineno,
                f"{func_name}: attachment view stored into self.{target.attr} without retain()",
            )
    elif isinstance(target, ast.Subscript):
        key_tainted = _is_tainted(target.slice, tainted)
        if is_self_attribute(target.value) and (value_tainted or key_tainted):
            what = "key" if key_tainted and not value_tainted else "value"
            attr = target.value.attr if isinstance(target.value, ast.Attribute) else "?"
            yield Finding(
                "REPRO001",
                path,
                target.lineno,
                f"{func_name}: attachment view stored as {what} into self.{attr}[...] without retain()",
            )


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _tainted_bound_names(
    target: ast.expr, iter_node: ast.expr, tainted: Set[str], extra: Optional[Set[str]] = None
) -> Set[str]:
    """Names bound by ``for target in iter_node`` that carry taint.

    ``zip`` is positional: each tuple slot corresponds to one argument, so
    only the slots fed by a tainted iterable become tainted (``for meta, view
    in zip(metas, request.attachments)`` taints ``view`` but not ``meta``).
    """
    if (
        isinstance(iter_node, ast.Call)
        and isinstance(iter_node.func, ast.Name)
        and iter_node.func.id == "zip"
        and isinstance(target, (ast.Tuple, ast.List))
        and len(target.elts) == len(iter_node.args)
    ):
        names: Set[str] = set()
        for element, arg in zip(target.elts, iter_node.args):
            if _is_tainted(arg, tainted, extra):
                names |= set(_target_names(element))
        return names
    if _is_tainted(iter_node, tainted, extra):
        return set(_target_names(target))
    return set()


def _check_expr_sinks(path: str, func_name: str, expr: ast.expr, tainted: Set[str]) -> Iterator[Finding]:
    for node in ast.walk(expr):
        if not isinstance(node, ast.Call):
            continue
        tail = call_tail(node)
        if tail is None:
            continue
        receiver_self = isinstance(node.func, ast.Attribute) and is_self_attribute(node.func.value)
        is_storage = tail in _STORAGE_SINKS
        is_container = tail in _CONTAINER_SINKS and receiver_self
        if not (is_storage or is_container):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if _is_tainted(arg, tainted):
                where = f"self-owned container .{tail}()" if is_container else f"storage call .{tail}()"
                yield Finding(
                    "REPRO001",
                    path,
                    node.lineno,
                    f"{func_name}: attachment view passed to {where} without retain()",
                )
                break


def _is_tainted(node: ast.expr, tainted: Set[str], extra: Optional[Set[str]] = None) -> bool:
    env = tainted if extra is None else tainted | extra
    if isinstance(node, ast.Attribute):
        if node.attr == "attachments":
            return True
        return False
    if isinstance(node, ast.Name):
        return node.id in env
    if isinstance(node, ast.Subscript):
        return _is_tainted(node.value, tainted, extra)
    if isinstance(node, ast.Starred):
        return _is_tainted(node.value, tainted, extra)
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return any(_is_tainted(element, tainted, extra) for element in node.elts)
    if isinstance(node, ast.IfExp):
        return _is_tainted(node.body, tainted, extra) or _is_tainted(node.orelse, tainted, extra)
    if isinstance(node, ast.BoolOp):
        return any(_is_tainted(value, tainted, extra) for value in node.values)
    if isinstance(node, ast.NamedExpr):
        return _is_tainted(node.value, tainted, extra)
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        bound: Set[str] = set(extra or ())
        carried = False
        for comp in node.generators:
            names = _tainted_bound_names(comp.target, comp.iter, tainted, bound or None)
            if names:
                carried = True
                bound |= names
        if not carried:
            return False
        return _is_tainted(node.elt, tainted, bound)
    if isinstance(node, ast.DictComp):
        bound = set(extra or ())
        carried = False
        for comp in node.generators:
            names = _tainted_bound_names(comp.target, comp.iter, tainted, bound or None)
            if names:
                carried = True
                bound |= names
        if not carried:
            return False
        return _is_tainted(node.key, tainted, bound) or _is_tainted(node.value, tainted, bound)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _PASSTHROUGH_CALLS
    ):
        return any(_is_tainted(arg, tainted, extra) for arg in node.args)
    # Other calls launder: retain(), bytes(), decode_*() materialize new objects.
    return False
