"""REPRO005 — metrics-registry registration discipline.

The metrics plane (PR 9) is a weakref registry: sources register under a
key, scrapes walk live entries, ``unregister(key)`` detaches.  Two ways
instance-lifetime components rot:

* a ``REGISTRY.register(...)`` call whose returned key is **discarded**
  inside an instance method — the entry can never be unregistered, so a
  recreated component (tests, reconnects, engine restarts) piles up
  duplicate entries and name collisions;
* a registering class with **no ``close``/``stop``/``shutdown``/
  ``__exit__`` that unregisters** — same leak, one level up;
* a ``self.<attr> = SomethingStats()`` struct that is **never
  registered** in its module — invisible to the ``stats`` scrape op, so
  the telemetry the struct exists for never leaves the process.

Module-level registrations (``_REGISTRY.register("tracing.spans",
SPANS)``) are process-lifetime singletons and exempt.  A stats struct
registered by a *different* module (e.g. a cache registered by its
owning engine) carries a waiver naming the registering site.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.core import Finding, ModuleInfo, Project
from repro.analysis.rules._shared import dotted_name, is_self_attribute

_CLOSERS = frozenset({"close", "stop", "shutdown", "__exit__", "__del__", "aclose"})


class _Rule:
    rule_id = "REPRO005"
    summary = "registry keys must be kept and unregistered on close; stats structs must be registered"

    def run(self, project: Project) -> Iterator[Finding]:
        for info in project.src_modules():
            if "repro/analysis/" in info.path:
                continue
            yield from _check_module(info)


RULE = _Rule()


def _is_registry(expr: ast.expr) -> bool:
    name = dotted_name(expr)
    return name is not None and name.split(".")[-1].upper().endswith("REGISTRY")


def _register_calls(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "register"
            and _is_registry(sub.func.value)
        ):
            yield sub


def _register_key(call: ast.Call) -> str:
    if call.args and isinstance(call.args[0], ast.Constant) and isinstance(call.args[0].value, str):
        return repr(call.args[0].value)
    return "<dynamic key>"


def _check_module(info: ModuleInfo) -> Iterator[Finding]:
    # Attr names referenced inside any register call's arguments, module-wide:
    # covers both `self.wire_stats` and `self._scheduler.stats` shapes.
    registered_attr_refs: Set[str] = set()
    for call in _register_calls(info.tree):
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Attribute):
                    registered_attr_refs.add(sub.attr)
                elif isinstance(sub, ast.Name):
                    registered_attr_refs.add(sub.id)

    for node in info.tree.body:
        if isinstance(node, ast.ClassDef):
            yield from _check_class(info, node, registered_attr_refs)


def _check_class(info: ModuleInfo, cls: ast.ClassDef, registered_attr_refs: Set[str]) -> Iterator[Finding]:
    kept: Set[int] = set()  # id() of register Call nodes whose key is kept
    all_registers: List[ast.Call] = []
    has_unregister = False
    stats_attrs: List[Tuple[str, int]] = []

    for method in [node for node in cls.body if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]:
        for call in _register_calls(method):
            all_registers.append(call)
        for node in ast.walk(method):
            # Key kept: register call inside an assignment to a self attribute…
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            if targets and any(is_self_attribute(t) for t in targets):
                for call in _register_calls(node.value):
                    kept.add(id(call))
            # …or appended/extended into a self-owned container.
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "extend", "add")
                and is_self_attribute(node.func.value)
            ):
                for arg in node.args:
                    for call in _register_calls(arg):
                        kept.add(id(call))
            # Unregister in a closer method.
            if (
                method.name in _CLOSERS
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "unregister"
                and _is_registry(node.func.value)
            ):
                has_unregister = True
            # Stats struct instantiation stored on self.
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, (ast.Name, ast.Attribute))
            ):
                ctor = node.value.func
                ctor_name = ctor.id if isinstance(ctor, ast.Name) else ctor.attr
                if ctor_name.endswith("Stats"):
                    for target in node.targets:
                        if is_self_attribute(target):
                            stats_attrs.append((target.attr, node.lineno))

    for call in all_registers:
        if id(call) not in kept:
            yield Finding(
                "REPRO005",
                info.path,
                call.lineno,
                f"{cls.name}: register({_register_key(call)}) discards the registry key — keep it for unregister",
            )
    if all_registers and not has_unregister:
        yield Finding(
            "REPRO005",
            info.path,
            all_registers[0].lineno,
            f"{cls.name} registers metrics but no close/stop method calls REGISTRY.unregister",
        )
    for attr, lineno in stats_attrs:
        if attr not in registered_attr_refs:
            yield Finding(
                "REPRO005",
                info.path,
                lineno,
                f"{cls.name}.{attr} stats struct is never registered with the metrics registry",
            )
