"""REPRO002 — telemetry must not record key material or plaintext.

The observability plane's contract (PR 9): logs, spans, and metrics
record *operation names, byte sizes, and timings* — never keys, seeds,
or plaintext.  This is exactly the leakage class the secure-stream-
processing literature warns about: a debug log line with a derived key
undoes the whole crypto layer.

Sinks are telemetry emission points:

* ``logger.<level>(...)`` calls (any receiver whose name contains
  ``log``, any of the stdlib level methods);
* ``SPANS.record({...})`` / ``<collector>.record({...})`` span dicts
  and their ``dict(...)`` keyword forms;
* metric construction/observe calls (``Counter``/``Gauge``/
  ``Histogram`` ``observe``/``inc``/``set``) — their label values.

A finding fires when any *argument expression* of a sink references a
binding (variable, attribute, dict key) whose name matches the
sensitive-identifier pattern.  Inside ``crypto/`` and ``access/``
modules the pattern widens: a bare ``key``/``keys``/``seed`` is
sensitive there, while in storage/net code ``key`` is a kv-store key
(already ciphertext or an opaque identifier) and stays loggable.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Sequence

from repro.analysis.core import Finding, Project
from repro.analysis.rules._shared import dotted_name

_LEVELS = frozenset({"debug", "info", "warning", "error", "exception", "critical", "log"})
_METRIC_EMITS = frozenset({"observe", "inc", "set", "add"})

#: Identifiers that are sensitive everywhere.
_SENSITIVE_RE = re.compile(
    r"(?i)(?<![a-z])("
    r"secret|seed|plaintext|password|passphrase|keystream"
    r"|key_material|master_key|private_key|derived_key|enc_key|aes_key"
    r"|stream_key|leaf_key|node_key|sealed|nonce"
    r")(?![a-z])"
)

#: Inside crypto/access modules even a bare ``key`` is key material.
_SENSITIVE_STRICT_RE = re.compile(r"(?i)(?<![a-z])(key|keys)(?![a-z])")

_STRICT_PATH_PARTS = ("crypto/", "access/")


class _Rule:
    rule_id = "REPRO002"
    summary = "telemetry (logs/spans/metrics) must not reference key-/seed-/plaintext-named bindings"

    def run(self, project: Project) -> Iterator[Finding]:
        for info in project.src_modules():
            if "repro/analysis/" in info.path:
                continue
            strict = any(part in info.path for part in _STRICT_PATH_PARTS)
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Call):
                    yield from _check_call(info.path, node, strict)


RULE = _Rule()


def _check_call(path: str, call: ast.Call, strict: bool) -> Iterator[Finding]:
    kind = _sink_kind(call)
    if kind is None:
        return
    args: Sequence[ast.expr] = list(call.args) + [kw.value for kw in call.keywords]
    for arg in args:
        name = _sensitive_reference(arg, strict)
        if name is not None:
            yield Finding(
                "REPRO002",
                path,
                call.lineno,
                f"{kind} records sensitive binding '{name}'",
            )
            return  # one finding per sink call


def _sink_kind(call: ast.Call) -> Optional[str]:
    """``"log call"``/``"span record"``/``"metric emit"`` or None."""
    if not isinstance(call.func, ast.Attribute):
        return None
    attr = call.func.attr
    receiver = dotted_name(call.func.value) or ""
    receiver_lower = receiver.lower()
    if attr in _LEVELS and "log" in receiver_lower:
        return "log call"
    if attr == "record" and ("span" in receiver_lower or "trace" in receiver_lower):
        return "span record"
    if attr in _METRIC_EMITS and any(
        token in receiver_lower for token in ("counter", "gauge", "histogram", "metric")
    ):
        return "metric emit"
    return None


def _sensitive_reference(node: ast.expr, strict: bool) -> Optional[str]:
    """The first sensitive identifier referenced in ``node``, else None."""
    for sub in ast.walk(node):
        candidates = []
        if isinstance(sub, ast.Name):
            candidates.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            candidates.append(sub.attr)
        elif isinstance(sub, ast.keyword) and sub.arg:
            candidates.append(sub.arg)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # Dict keys / %-format field names inside span payloads.
            candidates.append(sub.value)
        for candidate in candidates:
            if _SENSITIVE_RE.search(candidate):
                return candidate
            if strict and _SENSITIVE_STRICT_RE.search(candidate):
                return candidate
    return None
