"""REPRO003 — the wire-operation inventory is complete and classified.

``net/messages.py`` declares the protocol surface: ``OPERATIONS`` (every
op name the dispatchers accept), ``BULK_OPERATIONS`` and
``INTERACTIVE_OPERATIONS`` (the scheduler's two-class partition).
Dispatchers implement ops as ``_op_<name>`` methods.  Four things can
silently rot:

a. an op declared but handled by no dispatcher anywhere (wire clients
   get ``unknown operation`` for a name the protocol promises);
b. an ``_op_<name>`` method whose name is not a declared op (dead
   handler — unreachable via the wire, usually a typo);
c. an op missing from the bulk/interactive partition, or in both
   (scheduler class decided by accident rather than on purpose);
d. a handler raising a *builtin* exception (``ValueError`` & co.) —
   those surface to remote clients as untyped ``internal`` failures
   instead of the :mod:`repro.exceptions` taxonomy the wire maps.

The rule finds every src module that declares a module-level
``OPERATIONS`` (the inventory module), literal-evaluates the
declarations (resolving name references and ``frozenset(...)`` /
tuple-concatenation forms), and checks a/b/c against the project-wide
``_op_*`` method scan and d inside every handler body.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ModuleInfo, Project
from repro.analysis.rules._shared import walk_functions

#: Builtin exceptions that must not escape a wire handler raw.
_BUILTIN_EXCEPTIONS = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "KeyError",
        "IndexError",
        "RuntimeError",
        "NotImplementedError",
        "OSError",
        "IOError",
        "AttributeError",
        "LookupError",
        "ArithmeticError",
        "ZeroDivisionError",
        "StopIteration",
        "AssertionError",
    }
)


class _Rule:
    rule_id = "REPRO003"
    summary = "every wire op has a handler and a scheduler class; handlers raise typed errors"

    def run(self, project: Project) -> Iterator[Finding]:
        inventories = [
            (info, decls)
            for info in project.src_modules()
            if "repro/analysis/" not in info.path
            for decls in [_operation_decls(info)]
            if decls is not None
        ]
        if not inventories:
            return

        handlers: Dict[str, List[Tuple[str, int]]] = {}
        for info in project.src_modules():
            if "repro/analysis/" in info.path:
                continue
            for _cls, func in walk_functions(info.tree):
                if func.name.startswith("_op_"):
                    handlers.setdefault(func.name[len("_op_"):], []).append((info.path, func.lineno))

        declared: Set[str] = set()
        for info, decls in inventories:
            operations, bulk, interactive, lineno = decls
            declared |= operations
            yield from _check_inventory(info, operations, bulk, interactive, lineno, handlers)

        # (b) dead handlers: an _op_ method for an undeclared op.
        for suffix, sites in sorted(handlers.items()):
            if suffix not in declared:
                for path, lineno in sites:
                    yield Finding(
                        "REPRO003",
                        path,
                        lineno,
                        f"handler _op_{suffix} does not correspond to any declared operation",
                    )

        # (d) untyped raises inside handler bodies.
        for info in project.src_modules():
            if "repro/analysis/" in info.path:
                continue
            for _cls, func in walk_functions(info.tree):
                if not func.name.startswith("_op_"):
                    continue
                yield from _check_raises(info.path, func)


RULE = _Rule()


def _check_inventory(
    info: ModuleInfo,
    operations: Set[str],
    bulk: Optional[Set[str]],
    interactive: Optional[Set[str]],
    lineno: int,
    handlers: Dict[str, List[Tuple[str, int]]],
) -> Iterator[Finding]:
    # (a) every declared op is handled somewhere.
    for op in sorted(operations):
        if op not in handlers:
            yield Finding(
                "REPRO003",
                info.path,
                lineno,
                f"operation '{op}' is declared but no dispatcher defines _op_{op}",
            )
    # (c) the scheduler partition is total and disjoint.
    if bulk is None or interactive is None:
        missing = "BULK_OPERATIONS" if bulk is None else "INTERACTIVE_OPERATIONS"
        yield Finding(
            "REPRO003",
            info.path,
            lineno,
            f"operation inventory has no evaluable {missing} classification",
        )
        return
    for op in sorted(operations - (bulk | interactive)):
        yield Finding(
            "REPRO003",
            info.path,
            lineno,
            f"operation '{op}' is in neither BULK_OPERATIONS nor INTERACTIVE_OPERATIONS",
        )
    for op in sorted(bulk & interactive):
        yield Finding(
            "REPRO003",
            info.path,
            lineno,
            f"operation '{op}' is classified both bulk and interactive",
        )
    for op in sorted((bulk | interactive) - operations):
        yield Finding(
            "REPRO003",
            info.path,
            lineno,
            f"classified operation '{op}' is not declared in OPERATIONS",
        )


def _check_raises(path: str, func: ast.AST) -> Iterator[Finding]:
    for node in ast.walk(func):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _BUILTIN_EXCEPTIONS:
            yield Finding(
                "REPRO003",
                path,
                node.lineno,
                f"wire handler raises builtin {name} — raise a typed repro.exceptions error instead",
            )


def _operation_decls(
    info: ModuleInfo,
) -> Optional[Tuple[Set[str], Optional[Set[str]], Optional[Set[str]], int]]:
    """``(OPERATIONS, BULK, INTERACTIVE, lineno-of-OPERATIONS)`` or None."""
    env: Dict[str, object] = {}
    linenos: Dict[str, int] = {}
    for stmt in info.tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = _literal_eval(stmt.value, env)
        if value is not None:
            env[target.id] = value
            linenos[target.id] = stmt.lineno
    operations = env.get("OPERATIONS")
    if not isinstance(operations, (tuple, frozenset, set, list)):
        return None
    ops = {op for op in operations if isinstance(op, str)}
    if not ops:
        return None

    def _as_set(name: str) -> Optional[Set[str]]:
        value = env.get(name)
        if isinstance(value, (tuple, frozenset, set, list)):
            return {op for op in value if isinstance(op, str)}
        return None

    return ops, _as_set("BULK_OPERATIONS"), _as_set("INTERACTIVE_OPERATIONS"), linenos["OPERATIONS"]


def _literal_eval(node: ast.expr, env: Dict[str, object]) -> Optional[object]:
    """Evaluate string-collection literals, resolving prior names."""
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, str) else None
    if isinstance(node, (ast.Tuple, ast.List)):
        elements = [_literal_eval(element, env) for element in node.elts]
        if any(element is None for element in elements):
            return None
        out: List[str] = []
        for element in elements:
            if isinstance(element, str):
                out.append(element)
            elif isinstance(element, (tuple, list, frozenset, set)):
                out.extend(element)
        return tuple(out)
    if isinstance(node, ast.Set):
        elements = [_literal_eval(element, env) for element in node.elts]
        if any(element is None for element in elements):
            return None
        return frozenset(element for element in elements if isinstance(element, str))
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _literal_eval(node.left, env)
        right = _literal_eval(node.right, env)
        if isinstance(left, tuple) and isinstance(right, tuple):
            return left + right
        return None
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("frozenset", "set", "tuple")
        and len(node.args) == 1
        and not node.keywords
    ):
        inner = _literal_eval(node.args[0], env)
        if inner is None:
            return None
        if isinstance(inner, str):
            return None
        return frozenset(inner) if node.func.id in ("frozenset", "set") else tuple(inner)
    return None
