"""Benchmark harness utilities: timing, result tables, paper-figure reporting."""

from repro.bench.harness import Measurement, measure, measure_many
from repro.bench.reporting import ResultTable, format_duration

__all__ = ["Measurement", "measure", "measure_many", "ResultTable", "format_duration"]
