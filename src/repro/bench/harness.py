"""Timing helpers shared by the benchmark scripts.

``pytest-benchmark`` drives the per-operation microbenchmarks; the helpers
here serve the table/figure regeneration scripts, which need straightforward
"run this N times and give me mean / best / per-op" measurements plus a
uniform way to assemble the rows the paper's tables report.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass(frozen=True)
class Measurement:
    """Aggregate timing of a repeated operation."""

    label: str
    repetitions: int
    total_seconds: float
    best_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.repetitions if self.repetitions else 0.0

    @property
    def mean_microseconds(self) -> float:
        return self.mean_seconds * 1e6

    @property
    def ops_per_second(self) -> float:
        return self.repetitions / self.total_seconds if self.total_seconds else 0.0

    def ratio_to(self, baseline: "Measurement") -> float:
        """Slowdown factor relative to a baseline measurement (>1 = slower)."""
        if baseline.mean_seconds == 0:
            return float("inf")
        return self.mean_seconds / baseline.mean_seconds


def measure(
    label: str,
    operation: Callable[[], object],
    repetitions: int = 100,
    warmup: int = 3,
    disable_gc: bool = True,
) -> Measurement:
    """Time ``operation()`` ``repetitions`` times and return the aggregate."""
    for _ in range(warmup):
        operation()
    gc_was_enabled = gc.isenabled()
    if disable_gc:
        gc.disable()
    try:
        best = float("inf")
        total = 0.0
        for _ in range(repetitions):
            start = time.perf_counter()
            operation()
            elapsed = time.perf_counter() - start
            total += elapsed
            best = min(best, elapsed)
    finally:
        if disable_gc and gc_was_enabled:
            gc.enable()
    return Measurement(label=label, repetitions=repetitions, total_seconds=total, best_seconds=best)


def measure_many(
    operations: Dict[str, Callable[[], object]],
    repetitions: int = 100,
    warmup: int = 3,
) -> List[Measurement]:
    """Measure a labelled set of operations with identical settings."""
    return [
        measure(label, operation, repetitions=repetitions, warmup=warmup)
        for label, operation in operations.items()
    ]


def measure_total(label: str, operation: Callable[[], int], repetitions: int = 1) -> Measurement:
    """Time an operation whose return value is the number of sub-operations performed.

    Useful for bulk paths (e.g. "ingest 10k chunks") where per-item timing
    would distort the measurement; the resulting mean is per sub-operation.
    """
    total = 0.0
    items = 0
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        count = operation()
        elapsed = time.perf_counter() - start
        total += elapsed
        items += int(count)
        best = min(best, elapsed / max(1, int(count)))
    return Measurement(label=label, repetitions=max(1, items), total_seconds=total, best_seconds=best)
