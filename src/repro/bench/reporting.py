"""Plain-text result tables for the paper-figure regeneration scripts.

Every benchmark script prints a table whose rows mirror the corresponding
table or figure series in the paper, alongside the paper-reported values
where available, so ``EXPERIMENTS.md`` can be filled in by reading the
benchmark output directly.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


def format_duration(seconds: float) -> str:
    """Human-friendly duration: ns/µs/ms/s with three significant digits."""
    if seconds <= 0:
        return "0"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.3g}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g}ms"
    return f"{seconds:.3g}s"


def format_bytes(num_bytes: float) -> str:
    """Human-friendly byte size."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            return f"{value:.3g}{unit}"
        value /= 1024
    return f"{value:.3g}TB"


@dataclass
class ResultTable:
    """An aligned plain-text table."""

    title: str
    columns: Sequence[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table '{self.title}' has {len(self.columns)} columns"
            )
        self.rows.append([str(cell) for cell in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def format_row(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

        lines = [f"== {self.title} ==", format_row(list(self.columns)), format_row(["-" * w for w in widths])]
        lines.extend(format_row(row) for row in self.rows)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()

    def as_dicts(self) -> List[Dict[str, str]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


def write_json_report(path: str, results: Dict[str, object]) -> str:
    """Persist a machine-readable benchmark baseline (``BENCH_*.json``).

    ``results`` is an arbitrary JSON-safe mapping of metric groups; an
    ``environment`` block (python version, platform, ``BENCH_SCALE``) is added
    so later runs can tell whether a trajectory change is a code change or a
    different machine/scale.  Returns the path written, for log messages.
    """
    payload = {
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "bench_scale": float(os.environ.get("BENCH_SCALE", "1.0")),
        },
        "results": results,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def merge_json_report(path: str, results: Dict[str, object]) -> str:
    """Merge metric groups into an existing baseline (or create it).

    Two scripts share ``BENCH_batch.json`` (the derivation micro-benchmark
    and the Fig. 7 batch-size sweep); merging by top-level result key lets
    either refresh its groups without clobbering the other's.  The
    ``environment`` block is refreshed to describe the latest writer.
    """
    merged: Dict[str, object] = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        merged.update(existing.get("results", {}))
    except (OSError, ValueError):
        pass
    merged.update(results)
    return write_json_report(path, merged)
