"""The trusted client engine: key management, chunk encryption, query decryption."""

from repro.client.keymanager import OwnerKeyManager
from repro.client.reader import ConsumerReader, DecryptedStatistics
from repro.client.writer import StreamWriter

__all__ = ["OwnerKeyManager", "StreamWriter", "ConsumerReader", "DecryptedStatistics"]
