"""Owner-side key management.

The data owner holds the root secret of each stream's key-derivation tree
and uses it for everything key-related:

* deriving the HEAC keystream and per-chunk payload keys for the write path,
* issuing grants (through :class:`~repro.access.grants.GrantManager`),
* creating resolution keystreams and their public key envelopes.

The owner's secrets never leave this object; everything handed to other
parties is derived, scoped key material.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.access.grants import GrantManager
from repro.access.keystore import TokenStore
from repro.access.principal import IdentityProvider
from repro.crypto.heac import HEACCipher
from repro.crypto.keytree import KeyDerivationTree
from repro.crypto.prf import resolve_prg
from repro.timeseries.stream import StreamConfig


@dataclass
class OwnerKeyManager:
    """All key material the owner of one stream holds."""

    stream_uuid: str
    config: StreamConfig
    master_seed: bytes = field(default_factory=lambda: os.urandom(16), repr=False)
    _key_tree: Optional[KeyDerivationTree] = field(default=None, init=False, repr=False)
    _grant_managers: Dict[int, GrantManager] = field(default_factory=dict, init=False, repr=False)

    @property
    def key_tree(self) -> KeyDerivationTree:
        """The stream's key-derivation tree (lazily constructed from the seed)."""
        if self._key_tree is None:
            self._key_tree = KeyDerivationTree(
                seed=self.master_seed,
                height=self.config.key_tree_height,
                prg=resolve_prg(self.config.prg),
            )
        return self._key_tree

    @property
    def prg_name(self) -> str:
        return self.key_tree.prg_name

    def heac_cipher(self) -> HEACCipher:
        """A HEAC cipher over the owner's full keystream."""
        return HEACCipher(self.key_tree)

    def grant_manager(
        self, identity_provider: IdentityProvider, token_store: TokenStore
    ) -> GrantManager:
        """The grant manager wired to a directory and a server token store.

        One manager is kept per token store so repeated calls share issued
        grant/revocation state.
        """
        key = id(token_store)
        manager = self._grant_managers.get(key)
        if manager is None:
            manager = GrantManager(
                stream_uuid=self.stream_uuid,
                config=self.config,
                key_tree=self.key_tree,
                identity_provider=identity_provider,
                token_store=token_store,
            )
            self._grant_managers[key] = manager
        return manager
