"""The data-consumer read path: query, decrypt, evaluate (paper §4.5).

A consumer (principal) holds an :class:`~repro.access.tokens.AccessToken`
obtained from a grant.  The reader built from it can

* decrypt statistical range results returned by the server — but only when
  the queried range (and granularity) lies inside the granted scope; outside
  it the required keys simply cannot be derived,
* decrypt raw chunk payloads (full-resolution grants only),
* decrypt inter-stream aggregates when it holds readers for every stream
  involved,
* evaluate the statistical operators of Table 1 (sum, count, mean, var,
  stdev, freq/histogram, min/max) from decrypted digest vectors.

The owner's own reader is just a consumer reader whose keystream is the full
key tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.access.resolution import ResolutionConsumerKeystream, ResolutionShare
from repro.access.tokens import AccessToken
from repro.crypto.gcm import aead_decrypt
from repro.crypto.heac import HEACCipher, Keystream, MODULUS
from repro.crypto.keytree import DerivedKeystream
from repro.exceptions import AccessDeniedError, QueryError
from repro.server.query_executor import MultiStreamAggregate, StatQueryResult
from repro.timeseries.compression import get_codec
from repro.timeseries.digest import Digest, DigestConfig
from repro.timeseries.point import DataPoint, decode_value
from repro.timeseries.serialization import EncryptedChunk
from repro.timeseries.stream import StreamConfig


@dataclass
class DecryptedStatistics:
    """A decrypted digest over a window interval, with evaluation helpers."""

    stream_uuid: str
    window_start: int
    window_end: int
    digest: Digest
    value_scale: int = 1

    def evaluate(self, operator: str) -> object:
        """Evaluate an operator, rescaling value-typed results to measurement units."""
        raw = self.digest.evaluate(operator)
        operator = operator.lower()
        if operator == "sum":
            return decode_value(int(raw), self.value_scale)
        if operator in ("mean", "stdev"):
            return float(raw) / self.value_scale
        if operator == "var":
            return float(raw) / (self.value_scale * self.value_scale)
        return raw

    @property
    def count(self) -> int:
        return self.digest.count


class ConsumerReader:
    """Decryption and evaluation for one principal's view of one stream."""

    def __init__(
        self,
        stream_uuid: str,
        config: StreamConfig,
        keystream: Keystream,
        resolution_chunks: int = 1,
        window_start: int = 0,
        window_end: Optional[int] = None,
    ) -> None:
        self._stream_uuid = stream_uuid
        self._config = config
        self._keystream = keystream
        self._cipher = HEACCipher(keystream)
        self._resolution_chunks = resolution_chunks
        self._window_start = window_start
        self._window_end = window_end if window_end is not None else config.max_chunks

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_access_token(cls, token: AccessToken, config: StreamConfig, envelopes: Optional[Dict[int, bytes]] = None) -> "ConsumerReader":
        """Build a reader from a decrypted access token.

        Full-resolution tokens carry tree tokens; restricted tokens carry a
        dual-key-regression share and need the key envelopes fetched from the
        server for their interval.
        """
        if token.is_full_resolution:
            keystream: Keystream = DerivedKeystream(token.tree_tokens, prg=token.prg)
        else:
            if token.regression_token is None:
                raise AccessDeniedError("restricted-resolution token without a regression share")
            share = ResolutionShare(
                stream_uuid=token.stream_uuid,
                resolution_chunks=token.resolution_chunks,
                token=token.regression_token,
            )
            keystream = ResolutionConsumerKeystream(share, envelopes or {})
        return cls(
            stream_uuid=token.stream_uuid,
            config=config,
            keystream=keystream,
            resolution_chunks=token.resolution_chunks,
            window_start=token.window_start,
            window_end=token.window_end,
        )

    @classmethod
    def for_owner(cls, stream_uuid: str, config: StreamConfig, keystream: Keystream) -> "ConsumerReader":
        """The owner's unrestricted reader over their own stream."""
        return cls(stream_uuid=stream_uuid, config=config, keystream=keystream)

    # -- properties --------------------------------------------------------------------

    @property
    def stream_uuid(self) -> str:
        return self._stream_uuid

    @property
    def resolution_chunks(self) -> int:
        return self._resolution_chunks

    @property
    def cipher(self) -> HEACCipher:
        return self._cipher

    @property
    def digest_config(self) -> DigestConfig:
        return self._config.digest

    # -- statistical results -----------------------------------------------------------------

    def decrypt_statistics(self, result: StatQueryResult) -> DecryptedStatistics:
        """Decrypt a single-stream aggregate result.

        Raises :class:`DecryptionError` (missing keys) or
        :class:`AccessDeniedError` when the result lies outside the granted
        scope or granularity — the failure modes that *are* the access control.
        """
        return self.decrypt_series([result])[0]

    def decrypt_series(self, results: Sequence[StatQueryResult]) -> List[DecryptedStatistics]:
        """Decrypt a dashboard-style series of adjacent aggregates.

        Adjacent buckets share their boundary windows (and every bucket's
        components share its two boundary keys), so the whole series is
        decrypted through :meth:`~repro.crypto.heac.HEACCipher.decrypt_ranges`,
        which derives each distinct boundary key once — instead of once per
        bucket per component as the scalar path would.  Results are identical
        to calling :meth:`decrypt_statistics` per result.
        """
        for result in results:
            if result.stream_uuid != self._stream_uuid:
                raise QueryError("result belongs to a different stream")
            self._check_scope(result.window_start, result.window_end)
        values_per_result = self._cipher.decrypt_ranges(
            [list(result.cells) for result in results]
        )
        return [
            DecryptedStatistics(
                stream_uuid=self._stream_uuid,
                window_start=result.window_start,
                window_end=result.window_end,
                digest=Digest(
                    config=self._config.digest,
                    values=[self._to_signed(value) for value in values],
                ),
                value_scale=self._config.value_scale,
            )
            for result, values in zip(results, values_per_result)
        ]

    def _check_scope(self, window_start: int, window_end: int) -> None:
        if window_start < self._window_start or window_end > self._window_end:
            raise AccessDeniedError(
                f"result windows [{window_start}, {window_end}) outside granted "
                f"[{self._window_start}, {self._window_end})"
            )
        if self._resolution_chunks > 1:
            if window_start % self._resolution_chunks or window_end % self._resolution_chunks:
                raise AccessDeniedError(
                    f"result windows [{window_start}, {window_end}) are not aligned to the "
                    f"granted {self._resolution_chunks}-chunk resolution"
                )

    @staticmethod
    def _to_signed(value: int) -> int:
        return value - MODULUS if value >= MODULUS // 2 else value

    # -- inter-stream results -----------------------------------------------------------------------

    @staticmethod
    def decrypt_multi_stream(
        aggregate: MultiStreamAggregate, readers: Dict[str, "ConsumerReader"]
    ) -> List[int]:
        """Decrypt an inter-stream aggregate using one reader per involved stream.

        Every stream listed in the aggregate must have a reader able to derive
        its outer keys; otherwise the pads cannot be removed and decryption
        fails — only principals authorized for *all* streams learn the result.

        Each stream's pads come from one batched
        :meth:`~repro.crypto.heac.HEACCipher.outer_pads` pass (both boundary
        keys derived once, shared across all digest components) instead of
        the per-stream-per-component scalar derivation.
        """
        width = len(aggregate.values)
        totals = list(aggregate.values)
        for stream_uuid, window_start, window_end in aggregate.per_stream_intervals:
            reader = readers.get(stream_uuid)
            if reader is None:
                raise AccessDeniedError(
                    f"no key material for stream '{stream_uuid}' in the inter-stream result"
                )
            reader._check_scope(window_start, window_end)
            pads = reader.cipher.outer_pads(window_start, window_end, width)
            for component, pad in enumerate(pads):
                totals[component] = (totals[component] - pad) % MODULUS
        return [ConsumerReader._to_signed(value) for value in totals]

    # -- raw data ----------------------------------------------------------------------------------------

    def decrypt_chunk(self, chunk: EncryptedChunk) -> List[DataPoint]:
        """Decrypt and decompress one raw chunk payload (full resolution only)."""
        if self._resolution_chunks != 1:
            raise AccessDeniedError(
                "raw data access requires a full-resolution grant"
            )
        if not (self._window_start <= chunk.window_index < self._window_end):
            raise AccessDeniedError(
                f"chunk window {chunk.window_index} outside granted "
                f"[{self._window_start}, {self._window_end})"
            )
        payload_key = self._cipher.chunk_payload_key(chunk.window_index)
        aad = f"{self._stream_uuid}:{chunk.window_index}".encode("utf-8")
        compressed = aead_decrypt(payload_key, chunk.payload, aad)
        return get_codec(self._config.compression).decompress(compressed)

    def decrypt_range(self, chunks: Sequence[EncryptedChunk]) -> List[DataPoint]:
        """Decrypt a sequence of chunks into one ordered point list."""
        points: List[DataPoint] = []
        for chunk in chunks:
            points.extend(self.decrypt_chunk(chunk))
        return points

    def decode_points(self, points: Sequence[DataPoint]) -> List[tuple]:
        """Convert fixed-point values back to measurement units."""
        return [
            (point.timestamp, decode_value(point.value, self._config.value_scale))
            for point in points
        ]
