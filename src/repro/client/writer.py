"""The data-producer write path (paper §4.1, §4.2).

The writer turns raw measurements into what the untrusted server stores:

1. points are batched into fixed-Δ chunks (:class:`ChunkBuilder`),
2. the chunk's plaintext digest is computed and each component encrypted
   with HEAC under the chunk's window keys,
3. the raw points are compressed with the stream's codec and sealed with
   AES-GCM under a key derived from the same window keys,
4. the resulting :class:`EncryptedChunk` is handed to the server (directly
   or over the network transport).

The writer never buffers more than the currently open chunk, matching the
paper's client-side batching model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.crypto.gcm import aead_encrypt
from repro.crypto.heac import HEACCipher
from repro.exceptions import ChunkError
from repro.timeseries.chunk import Chunk, ChunkBuilder
from repro.timeseries.compression import Codec, get_codec
from repro.timeseries.point import DataPoint, encode_value
from repro.timeseries.serialization import EncryptedChunk
from repro.timeseries.stream import StreamConfig


@dataclass
class StreamWriter:
    """Client-side encryption pipeline for one stream's ingest path."""

    stream_uuid: str
    config: StreamConfig
    cipher: HEACCipher
    sink: Callable[[EncryptedChunk], None]
    use_pure_python_aead: bool = False
    _builder: ChunkBuilder = field(init=False)
    _codec: Codec = field(init=False)
    chunks_written: int = field(default=0, init=False)
    records_written: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._builder = ChunkBuilder(config=self.config)
        self._codec = get_codec(self.config.compression)

    # -- ingest -------------------------------------------------------------------

    def append(self, timestamp: int, value: float) -> List[EncryptedChunk]:
        """Add one measurement; returns any chunks that were completed and sent."""
        point = DataPoint(timestamp=timestamp, value=encode_value(value, self.config.value_scale))
        return self._handle_completed(self._builder.append(point))

    def append_point(self, point: DataPoint) -> List[EncryptedChunk]:
        """Add an already fixed-point encoded data point."""
        return self._handle_completed(self._builder.append(point))

    def extend(self, points: Iterable[DataPoint]) -> List[EncryptedChunk]:
        """Add many pre-encoded points."""
        return self._handle_completed(self._builder.extend(points))

    def flush(self) -> List[EncryptedChunk]:
        """Seal and send the currently open chunk."""
        return self._handle_completed(self._builder.flush())

    def _handle_completed(self, chunks: List[Chunk]) -> List[EncryptedChunk]:
        encrypted = [self.encrypt_chunk(chunk) for chunk in chunks]
        for item in encrypted:
            self.sink(item)
            self.chunks_written += 1
            self.records_written += item.num_points
        return encrypted

    # -- chunk encryption --------------------------------------------------------------

    def encrypt_chunk(self, chunk: Chunk) -> EncryptedChunk:
        """Encrypt one plaintext chunk (digest with HEAC, payload with AEAD)."""
        if chunk.window_index >= self.config.max_chunks:
            raise ChunkError(
                f"window {chunk.window_index} exceeds the stream's keystream capacity "
                f"({self.config.max_chunks} chunks)"
            )
        digest_cells = self.cipher.encrypt_vector(chunk.digest.values, chunk.window_index)
        payload_key = self.cipher.chunk_payload_key(chunk.window_index)
        compressed = self._codec.compress(chunk.points)
        aad = f"{self.stream_uuid}:{chunk.window_index}".encode("utf-8")
        payload = aead_encrypt(
            payload_key, compressed, aad, force_pure_python=self.use_pure_python_aead
        )
        return EncryptedChunk(
            stream_uuid=self.stream_uuid,
            window_index=chunk.window_index,
            payload=payload,
            digest=digest_cells,
            num_points=chunk.num_points,
        )


def write_points(
    writer: StreamWriter, points: Iterable[DataPoint], flush: bool = True
) -> int:
    """Convenience helper: push a complete point sequence through a writer.

    Returns the number of chunks written (including the final flush).
    """
    before = writer.chunks_written
    writer.extend(points)
    if flush:
        writer.flush()
    return writer.chunks_written - before
