"""The data-producer write path (paper §4.1, §4.2).

The writer turns raw measurements into what the untrusted server stores:

1. points are batched into fixed-Δ chunks (:class:`ChunkBuilder`),
2. the chunk's plaintext digest is computed and each component encrypted
   with HEAC under the chunk's window keys,
3. the raw points are compressed with the stream's codec and sealed with
   AES-GCM under a key derived from the same window keys,
4. the resulting :class:`EncryptedChunk` is handed to the server (directly
   or over the network transport).

The writer never buffers more than the currently open chunk, matching the
paper's client-side batching model.  When an ingest completes several chunks
at once (bulk inserts, catch-up after a gap), the chunks are encrypted
through :meth:`StreamWriter.encrypt_chunks`, which derives the shared HEAC
boundary keys for each consecutive window run once, and are delivered via the
``batch_sink`` (when configured) so the server can use its bulk index path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from repro.crypto.gcm import aead_encrypt
from repro.crypto.heac import HEACCipher
from repro.exceptions import ChunkError
from repro.timeseries.chunk import Chunk, ChunkBuilder
from repro.timeseries.compression import Codec, get_codec
from repro.timeseries.point import DataPoint, encode_value
from repro.timeseries.serialization import EncryptedChunk
from repro.timeseries.stream import StreamConfig


@dataclass
class StreamWriter:
    """Client-side encryption pipeline for one stream's ingest path."""

    stream_uuid: str
    config: StreamConfig
    cipher: HEACCipher
    sink: Callable[[EncryptedChunk], None]
    use_pure_python_aead: bool = False
    #: Optional bulk delivery path; when set, multi-chunk completions are
    #: handed over in one call (e.g. ``ServerEngine.insert_chunks``) instead
    #: of one ``sink`` call per chunk.
    batch_sink: Optional[Callable[[Sequence[EncryptedChunk]], None]] = None
    _builder: ChunkBuilder = field(init=False)
    _codec: Codec = field(init=False)
    chunks_written: int = field(default=0, init=False)
    records_written: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._builder = ChunkBuilder(config=self.config)
        self._codec = get_codec(self.config.compression)

    # -- ingest -------------------------------------------------------------------

    def append(self, timestamp: int, value: float) -> List[EncryptedChunk]:
        """Add one measurement; returns any chunks that were completed and sent."""
        point = DataPoint(timestamp=timestamp, value=encode_value(value, self.config.value_scale))
        return self._handle_completed(self._builder.append(point))

    def append_point(self, point: DataPoint) -> List[EncryptedChunk]:
        """Add an already fixed-point encoded data point."""
        return self._handle_completed(self._builder.append(point))

    def extend(self, points: Iterable[DataPoint]) -> List[EncryptedChunk]:
        """Add many pre-encoded points."""
        return self._handle_completed(self._builder.extend(points))

    def flush(self) -> List[EncryptedChunk]:
        """Seal and send the currently open chunk."""
        return self._handle_completed(self._builder.flush())

    def _handle_completed(self, chunks: List[Chunk]) -> List[EncryptedChunk]:
        if not chunks:
            return []
        encrypted = self.encrypt_chunks(chunks)
        if self.batch_sink is not None and len(encrypted) > 1:
            self.batch_sink(encrypted)
        else:
            for item in encrypted:
                self.sink(item)
        for item in encrypted:
            self.chunks_written += 1
            self.records_written += item.num_points
        return encrypted

    # -- chunk encryption --------------------------------------------------------------

    def encrypt_chunk(self, chunk: Chunk) -> EncryptedChunk:
        """Encrypt one plaintext chunk (digest with HEAC, payload with AEAD)."""
        return self._encrypt_run([chunk])[0]

    def encrypt_chunks(self, chunks: Sequence[Chunk]) -> List[EncryptedChunk]:
        """Encrypt many chunks, sharing HEAC key material per consecutive window run.

        Chunks with consecutive window indices (the normal case — the builder
        emits windows in order, including empties) are encrypted from one
        :class:`~repro.crypto.heac.HEACWindowBatch`, so each boundary key is
        derived once for the whole run instead of twice per chunk.  Digest
        ciphertexts are bit-identical to :meth:`encrypt_chunk`; payload blobs
        differ only in their random AEAD nonce.
        """
        encrypted: List[EncryptedChunk] = []
        run: List[Chunk] = []
        for chunk in chunks:
            if run and chunk.window_index != run[-1].window_index + 1:
                encrypted.extend(self._encrypt_run(run))
                run = []
            run.append(chunk)
        if run:
            encrypted.extend(self._encrypt_run(run))
        return encrypted

    def _encrypt_run(self, run: Sequence[Chunk]) -> List[EncryptedChunk]:
        """Encrypt a run of consecutive-window chunks from one window batch."""
        last_window = run[-1].window_index
        if last_window >= self.config.max_chunks:
            raise ChunkError(
                f"window {last_window} exceeds the stream's keystream capacity "
                f"({self.config.max_chunks} chunks)"
            )
        batch = self.cipher.window_batch(run[0].window_index, last_window + 1)
        encrypted: List[EncryptedChunk] = []
        for chunk in run:
            digest_cells = batch.encrypt_vector(chunk.digest.values, chunk.window_index)
            payload_key = batch.chunk_payload_key(chunk.window_index)
            compressed = self._codec.compress(chunk.points)
            aad = f"{self.stream_uuid}:{chunk.window_index}".encode("utf-8")
            payload = aead_encrypt(
                payload_key, compressed, aad, force_pure_python=self.use_pure_python_aead
            )
            encrypted.append(
                EncryptedChunk(
                    stream_uuid=self.stream_uuid,
                    window_index=chunk.window_index,
                    payload=payload,
                    digest=digest_cells,
                    num_points=chunk.num_points,
                )
            )
        return encrypted


def write_points(
    writer: StreamWriter, points: Iterable[DataPoint], flush: bool = True
) -> int:
    """Convenience helper: push a complete point sequence through a writer.

    Returns the number of chunks written (including the final flush).
    """
    before = writer.chunks_written
    writer.extend(points)
    if flush:
        writer.flush()
    return writer.chunks_written - before
