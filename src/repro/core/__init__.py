"""The TimeCrypt public API (Table 1) and the baseline systems it is compared to."""

from repro.core.plaintext import PlaintextTimeSeriesStore
from repro.core.strawman import StrawmanStore
from repro.core.timecrypt import TimeCrypt, TimeCryptConsumer

__all__ = [
    "TimeCrypt",
    "TimeCryptConsumer",
    "PlaintextTimeSeriesStore",
    "StrawmanStore",
]
