"""The plaintext baseline system (the paper's "Plaintext" configuration).

Identical pipeline to TimeCrypt — chunking, digests, compression, the k-ary
aggregation index, the same storage layout — but nothing is encrypted.  It is
the upper bound every benchmark normalises against ("operating on data in the
clear"), and the oracle the tests compare encrypted results to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import QueryError, StreamExistsError, StreamNotFoundError
from repro.index.cache import NodeCache
from repro.index.node import plaintext_combiner
from repro.index.tree import AggregationIndex
from repro.storage.kv import KeyValueStore
from repro.storage.memory import MemoryStore
from repro.timeseries.chunk import Chunk, ChunkBuilder
from repro.timeseries.compression import get_codec
from repro.timeseries.digest import Digest
from repro.timeseries.point import DataPoint, decode_value, encode_value
from repro.timeseries.serialization import chunk_storage_key
from repro.timeseries.stream import StreamConfig, StreamMetadata
from repro.util.encoding import pack_varint_list, unpack_varint_list
from repro.util.timeutil import TimeRange


def _encode_plain_cells(cells: Sequence[int]) -> bytes:
    return pack_varint_list(cells)


def _decode_plain_cells(blob: bytes) -> List[int]:
    values, _pos = unpack_varint_list(blob, 0)
    return values


@dataclass
class _PlainStream:
    metadata: StreamMetadata
    index: AggregationIndex
    builder: ChunkBuilder
    num_records: int = 0


@dataclass
class PlaintextTimeSeriesStore:
    """A TimeCrypt-shaped time series store operating on data in the clear."""

    store: KeyValueStore = field(default_factory=MemoryStore)
    index_cache_bytes: int = 64 * 1024 * 1024
    owner_id: str = "owner"
    _streams: Dict[str, _PlainStream] = field(default_factory=dict, init=False)
    _cache: NodeCache = field(init=False)

    def __post_init__(self) -> None:
        self._cache = NodeCache(capacity_bytes=self.index_cache_bytes)

    # -- stream lifecycle -----------------------------------------------------------

    def create_stream(
        self,
        metric: str = "",
        config: Optional[StreamConfig] = None,
        uuid: Optional[str] = None,
    ) -> str:
        metadata = StreamMetadata.new(owner_id=self.owner_id, metric=metric, config=config)
        if uuid is not None:
            metadata.uuid = uuid
        if metadata.uuid in self._streams:
            raise StreamExistsError(f"stream '{metadata.uuid}' already exists")
        index = AggregationIndex(
            stream_uuid=metadata.uuid,
            store=self.store,
            combiner=plaintext_combiner(),
            encode_cells=_encode_plain_cells,
            decode_cells=_decode_plain_cells,
            fanout=metadata.config.index_fanout,
            cache=self._cache,
            max_windows=metadata.config.max_chunks,
        )
        self._streams[metadata.uuid] = _PlainStream(
            metadata=metadata,
            index=index,
            builder=ChunkBuilder(config=metadata.config),
        )
        return metadata.uuid

    def delete_stream(self, uuid: str) -> None:
        self._stream(uuid)
        for prefix in (f"chunk/{uuid}/".encode(), f"index/{uuid}/".encode()):
            for key in self.store.keys_with_prefix(prefix):
                self.store.delete(key)
        del self._streams[uuid]

    def list_streams(self) -> List[str]:
        return sorted(self._streams)

    def stream_config(self, uuid: str) -> StreamConfig:
        return self._stream(uuid).metadata.config

    # -- ingest ---------------------------------------------------------------------

    def insert_record(self, uuid: str, timestamp: int, value: float) -> None:
        state = self._stream(uuid)
        point = DataPoint(
            timestamp=timestamp, value=encode_value(value, state.metadata.config.value_scale)
        )
        self._store_chunks(state, state.builder.append(point))

    def insert_records(self, uuid: str, records: Iterable[Tuple[int, float]]) -> None:
        state = self._stream(uuid)
        scale = state.metadata.config.value_scale
        self.insert_points(
            uuid,
            (
                DataPoint(timestamp=timestamp, value=encode_value(value, scale))
                for timestamp, value in records
            ),
        )

    def insert_points(self, uuid: str, points: Iterable[DataPoint]) -> None:
        state = self._stream(uuid)
        self._store_chunks(state, state.builder.extend(points))

    def flush(self, uuid: str) -> None:
        state = self._stream(uuid)
        self._store_chunks(state, state.builder.flush())

    def _store_chunks(self, state: _PlainStream, chunks: List[Chunk]) -> None:
        """Store chunk payloads and fold the digests into the index.

        Mirrors TimeCrypt's bulk-ingest path: consecutive chunk runs go
        through :meth:`~repro.index.tree.AggregationIndex.append_many` so the
        baseline enjoys the same amortized index writes as the encrypted
        system — keeping the plaintext-vs-TimeCrypt comparison about the
        crypto, not about batching.
        """
        if not chunks:
            return
        codec = get_codec(state.metadata.config.compression)
        for chunk in chunks:
            payload = codec.compress(chunk.points)
            self.store.put(
                chunk_storage_key(state.metadata.uuid, chunk.window_index), payload
            )
            state.num_records += chunk.num_points
        # The builder emits windows consecutively (including empties), so the
        # whole completion is one index batch.
        state.index.append_many([chunk.digest.values for chunk in chunks])

    # -- queries ---------------------------------------------------------------------

    def get_range(self, uuid: str, start: int, end: int) -> List[DataPoint]:
        state = self._stream(uuid)
        codec = get_codec(state.metadata.config.compression)
        window_start, window_end = self._clip_windows(state, TimeRange(start, end))
        points: List[DataPoint] = []
        for window_index in range(window_start, window_end):
            blob = self.store.get(chunk_storage_key(uuid, window_index))
            if blob is not None:
                points.extend(codec.decompress(blob))
        return [point for point in points if start <= point.timestamp < end]

    def get_stat_range(
        self, uuid: str, start: int, end: int, operators: Sequence[str] = ("sum", "count", "mean")
    ) -> Dict[str, object]:
        state = self._stream(uuid)
        window_start, window_end = self._clip_windows(state, TimeRange(start, end))
        if window_end <= window_start:
            raise QueryError(f"no ingested data in [{start}, {end})")
        cells = state.index.query_range(window_start, window_end)
        digest = Digest(config=state.metadata.config.digest, values=list(cells))
        scale = state.metadata.config.value_scale
        results: Dict[str, object] = {}
        for operator in operators:
            raw = digest.evaluate(operator)
            if operator == "sum":
                results[operator] = decode_value(int(raw), scale)
            elif operator in ("mean", "stdev"):
                results[operator] = float(raw) / scale
            elif operator == "var":
                results[operator] = float(raw) / (scale * scale)
            else:
                results[operator] = raw
        return results

    def get_stat_series(
        self, uuid: str, start: int, end: int, granularity_interval: int, operators: Sequence[str] = ("mean",)
    ) -> List[Dict[str, object]]:
        state = self._stream(uuid)
        interval = state.metadata.config.chunk_interval
        granularity_windows = max(1, granularity_interval // interval)
        window_start, window_end = self._clip_windows(state, TimeRange(start, end))
        series: List[Dict[str, object]] = []
        position = window_start
        while position < window_end:
            segment_end = min(position + granularity_windows, window_end)
            cells = state.index.query_range(position, segment_end)
            digest = Digest(config=state.metadata.config.digest, values=list(cells))
            entry: Dict[str, object] = {"window_start": position, "window_end": segment_end}
            for operator in operators:
                entry[operator] = digest.evaluate(operator)
            series.append(entry)
            position = segment_end
        return series

    def delete_range(self, uuid: str, start: int, end: int) -> int:
        state = self._stream(uuid)
        window_start, window_end = self._clip_windows(state, TimeRange(start, end))
        deleted = 0
        for window_index in range(window_start, window_end):
            if self.store.delete(chunk_storage_key(uuid, window_index)):
                deleted += 1
        return deleted

    # -- accounting -------------------------------------------------------------------

    def index_size_bytes(self, uuid: str) -> int:
        return self._stream(uuid).index.size_bytes()

    def num_windows(self, uuid: str) -> int:
        return self._stream(uuid).index.num_windows

    # -- helpers ----------------------------------------------------------------------

    def _stream(self, uuid: str) -> _PlainStream:
        state = self._streams.get(uuid)
        if state is None:
            raise StreamNotFoundError(f"unknown stream '{uuid}'")
        return state

    def _clip_windows(self, state: _PlainStream, time_range: TimeRange) -> Tuple[int, int]:
        config = state.metadata.config
        head = state.index.num_windows
        if time_range.end <= config.start_time or head == 0:
            return 0, 0
        window_start = max(0, time_range.start - config.start_time) // config.chunk_interval
        window_end = (
            max(0, time_range.end - config.start_time) + config.chunk_interval - 1
        ) // config.chunk_interval
        return min(window_start, head), min(window_end, head)
