"""The strawman configurations: Paillier and EC-ElGamal encrypted indices.

The paper's evaluation compares TimeCrypt against "an encrypted database"
strawman in which the per-chunk digest is encrypted with a conventional
additively homomorphic public-key scheme — Paillier or lifted EC-ElGamal —
instead of HEAC.  Everything else (chunking, index shape, storage layout)
matches TimeCrypt, which isolates the cost of the digest cipher:

* ciphertext expansion inflates the index (Table 2's "Index Size"),
* expensive homomorphic additions slow ingest and queries (Table 2, Fig. 5, 7),
* decryption is orders of magnitude slower (Table 3).

The strawman store keeps the private key client-side conceptually, but since
this facade exists purely for benchmarking, the same object exposes decrypt
helpers as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.crypto.ecelgamal import ECElGamal, ECElGamalCiphertext
from repro.crypto.paillier import PaillierPublicKey, generate_keypair
from repro.exceptions import ConfigurationError, QueryError, StreamExistsError, StreamNotFoundError
from repro.index.cache import NodeCache
from repro.index.node import DigestCombiner
from repro.index.tree import AggregationIndex
from repro.storage.kv import KeyValueStore
from repro.storage.memory import MemoryStore
from repro.timeseries.chunk import Chunk, ChunkBuilder
from repro.timeseries.digest import Digest
from repro.timeseries.point import DataPoint, encode_value
from repro.timeseries.stream import StreamConfig, StreamMetadata
from repro.util.encoding import decode_varint, encode_varint

#: Default Paillier modulus size for benchmarks.  The paper uses 3072-bit keys
#: (128-bit security); key generation and exponentiation at that size are very
#: slow in pure Python, so the benchmark harness passes the size explicitly and
#: reports which was used.
DEFAULT_PAILLIER_BITS = 1024


class _PaillierScheme:
    """Digest cipher adapter for Paillier."""

    name = "paillier"

    def __init__(self, key_bits: int = DEFAULT_PAILLIER_BITS) -> None:
        self._public, self._private = generate_keypair(key_bits)

    @property
    def public_key(self) -> PaillierPublicKey:
        return self._public

    @property
    def ciphertext_bytes(self) -> int:
        return self._public.ciphertext_bytes

    def encrypt(self, value: int) -> int:
        return self._public.encrypt(value)

    def add(self, a: int, b: int) -> int:
        return self._public.add(a, b)

    def decrypt(self, ciphertext: int) -> int:
        return self._private.decrypt(ciphertext)

    def encode(self, cells: Sequence[int]) -> bytes:
        width = self.ciphertext_bytes
        out = bytearray(encode_varint(len(cells)))
        for cell in cells:
            out += cell.to_bytes(width, "big")
        return bytes(out)

    def decode(self, blob: bytes) -> List[int]:
        width = self.ciphertext_bytes
        count, pos = decode_varint(blob, 0)
        cells = []
        for _ in range(count):
            cells.append(int.from_bytes(blob[pos : pos + width], "big"))
            pos += width
        return cells

    def combiner(self) -> DigestCombiner:
        return DigestCombiner(add=self.add, size_of=lambda _cell: self.ciphertext_bytes)


class _ECElGamalScheme:
    """Digest cipher adapter for additive EC-ElGamal."""

    name = "ec-elgamal"

    def __init__(self, max_plaintext: int = 1 << 32) -> None:
        self._scheme = ECElGamal.generate(max_plaintext=max_plaintext)

    @property
    def ciphertext_bytes(self) -> int:
        return 2 * 65  # two uncompressed P-256 points

    def encrypt(self, value: int) -> ECElGamalCiphertext:
        return self._scheme.encrypt(value)

    def add(self, a: ECElGamalCiphertext, b: ECElGamalCiphertext) -> ECElGamalCiphertext:
        return ECElGamal.add(a, b)

    def decrypt(self, ciphertext: ECElGamalCiphertext) -> int:
        return self._scheme.decrypt(ciphertext)

    def encode(self, cells: Sequence[ECElGamalCiphertext]) -> bytes:
        out = bytearray(encode_varint(len(cells)))
        for cell in cells:
            out += cell.encode()
        return bytes(out)

    def decode(self, blob: bytes) -> List[ECElGamalCiphertext]:
        from repro.crypto.ecc import Point

        count, pos = decode_varint(blob, 0)
        cells: List[ECElGamalCiphertext] = []
        for _ in range(count):
            c1 = Point.decode(blob[pos : pos + 65])
            c2 = Point.decode(blob[pos + 65 : pos + 130])
            cells.append(ECElGamalCiphertext(c1=c1, c2=c2))
            pos += 130
        return cells

    def combiner(self) -> DigestCombiner:
        return DigestCombiner(add=self.add, size_of=lambda _cell: self.ciphertext_bytes)


@dataclass
class _StrawmanStream:
    metadata: StreamMetadata
    index: AggregationIndex
    builder: ChunkBuilder


@dataclass
class StrawmanStore:
    """A TimeCrypt-shaped store whose digests use Paillier or EC-ElGamal.

    Only the digest/index path is modelled (the part the paper benchmarks);
    raw payload encryption is identical to TimeCrypt and therefore omitted
    here to keep the comparison focused on the homomorphic scheme.
    """

    scheme_name: str = "paillier"
    paillier_bits: int = DEFAULT_PAILLIER_BITS
    ec_max_plaintext: int = 1 << 32
    store: KeyValueStore = field(default_factory=MemoryStore)
    index_cache_bytes: int = 64 * 1024 * 1024
    _scheme: object = field(init=False)
    _streams: Dict[str, _StrawmanStream] = field(default_factory=dict, init=False)
    _cache: NodeCache = field(init=False)

    def __post_init__(self) -> None:
        if self.scheme_name == "paillier":
            self._scheme = _PaillierScheme(self.paillier_bits)
        elif self.scheme_name == "ec-elgamal":
            self._scheme = _ECElGamalScheme(self.ec_max_plaintext)
        else:
            raise ConfigurationError(
                f"unknown strawman scheme '{self.scheme_name}' (use 'paillier' or 'ec-elgamal')"
            )
        self._cache = NodeCache(
            capacity_bytes=self.index_cache_bytes, cell_size=self._scheme.ciphertext_bytes
        )

    @property
    def ciphertext_bytes(self) -> int:
        return self._scheme.ciphertext_bytes

    # -- stream lifecycle ---------------------------------------------------------

    def create_stream(
        self, metric: str = "", config: Optional[StreamConfig] = None, uuid: Optional[str] = None
    ) -> str:
        metadata = StreamMetadata.new(owner_id="strawman", metric=metric, config=config)
        if uuid is not None:
            metadata.uuid = uuid
        if metadata.uuid in self._streams:
            raise StreamExistsError(f"stream '{metadata.uuid}' already exists")
        index = AggregationIndex(
            stream_uuid=metadata.uuid,
            store=self.store,
            combiner=self._scheme.combiner(),
            encode_cells=self._scheme.encode,
            decode_cells=self._scheme.decode,
            fanout=metadata.config.index_fanout,
            cache=self._cache,
            max_windows=metadata.config.max_chunks,
        )
        self._streams[metadata.uuid] = _StrawmanStream(
            metadata=metadata, index=index, builder=ChunkBuilder(config=metadata.config)
        )
        return metadata.uuid

    def list_streams(self) -> List[str]:
        return sorted(self._streams)

    # -- ingest --------------------------------------------------------------------

    def insert_record(self, uuid: str, timestamp: int, value: float) -> None:
        state = self._stream(uuid)
        point = DataPoint(
            timestamp=timestamp, value=encode_value(value, state.metadata.config.value_scale)
        )
        self._ingest_chunks(state, state.builder.append(point))

    def insert_points(self, uuid: str, points: Sequence[DataPoint]) -> None:
        state = self._stream(uuid)
        self._ingest_chunks(state, state.builder.extend(points))

    def flush(self, uuid: str) -> None:
        state = self._stream(uuid)
        self._ingest_chunks(state, state.builder.flush())

    def ingest_digest(self, uuid: str, digest_values: Sequence[int]) -> None:
        """Directly append an already-computed digest (benchmark fast path)."""
        state = self._stream(uuid)
        cells = [self._scheme.encrypt(value) for value in digest_values]
        state.index.append(cells)

    def _ingest_chunks(self, state: _StrawmanStream, chunks: List[Chunk]) -> None:
        for chunk in chunks:
            cells = [self._scheme.encrypt(value) for value in chunk.digest.values]
            state.index.append(cells)

    # -- queries -----------------------------------------------------------------------

    def stat_range_windows(self, uuid: str, window_start: int, window_end: int) -> List[object]:
        """The encrypted aggregate cells over a window interval."""
        return self._stream(uuid).index.query_range(window_start, window_end)

    def get_stat_range(
        self, uuid: str, start: int, end: int, operators: Sequence[str] = ("sum", "count", "mean")
    ) -> Dict[str, object]:
        state = self._stream(uuid)
        config = state.metadata.config
        head = state.index.num_windows
        if head == 0:
            raise QueryError("no ingested data")
        window_start = min(max(0, start - config.start_time) // config.chunk_interval, head)
        window_end = min(
            (max(0, end - config.start_time) + config.chunk_interval - 1) // config.chunk_interval,
            head,
        )
        cells = state.index.query_range(window_start, window_end)
        values = [self._scheme.decrypt(cell) for cell in cells]
        digest = Digest(config=config.digest, values=values)
        return {operator: digest.evaluate(operator) for operator in operators}

    def decrypt_cells(self, cells: Sequence[object]) -> List[int]:
        return [self._scheme.decrypt(cell) for cell in cells]

    # -- accounting -----------------------------------------------------------------------

    def index_size_bytes(self, uuid: str) -> int:
        return self._stream(uuid).index.size_bytes()

    def num_windows(self, uuid: str) -> int:
        return self._stream(uuid).index.num_windows

    def _stream(self, uuid: str) -> _StrawmanStream:
        state = self._streams.get(uuid)
        if state is None:
            raise StreamNotFoundError(f"unknown stream '{uuid}'")
        return state
