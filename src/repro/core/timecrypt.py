"""The TimeCrypt facade: the ten-call API of Table 1.

:class:`TimeCrypt` is the data-owner/producer view: it owns the per-stream
key material, runs the client-side encryption pipeline, and talks to an
(untrusted) :class:`~repro.server.engine.ServerEngine`.  The API mirrors the
paper's Table 1:

==============================  =========================================================
Paper call                      Method
==============================  =========================================================
CreateStream(uuid, config)      :meth:`TimeCrypt.create_stream`
DeleteStream(uuid)              :meth:`TimeCrypt.delete_stream`
RollupStream(uuid, res, range)  :meth:`TimeCrypt.rollup_stream`
InsertRecord(uuid, t, val)      :meth:`TimeCrypt.insert_record` / :meth:`insert_records`
GetRange(uuid, Ts, Te)          :meth:`TimeCrypt.get_range`
GetStatRange(uuid, Ts, Te, ops) :meth:`TimeCrypt.get_stat_range` (also multi-stream)
DeleteRange(uuid, Ts, Te)       :meth:`TimeCrypt.delete_range`
GrantAccess(...)                :meth:`TimeCrypt.grant_access`
GrantOpenAccess(...)            :meth:`TimeCrypt.grant_open_access`
RevokeAccess(...)               :meth:`TimeCrypt.revoke_access`
==============================  =========================================================

:class:`TimeCryptConsumer` is the data-consumer view: it picks up sealed
grants from the server, reconstructs the scoped keystream, issues queries and
decrypts exactly what its grant allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.access.policy import AccessPolicy, Resolution, open_ended
from repro.access.principal import IdentityProvider, Principal
from repro.access.tokens import AccessToken
from repro.client.keymanager import OwnerKeyManager
from repro.crypto.prf import resolve_prg
from repro.client.reader import ConsumerReader
from repro.client.writer import StreamWriter
from repro.exceptions import AccessDeniedError, StreamNotFoundError, TimeCryptError
from repro.server.engine import ServerEngine
from repro.server.query_executor import MultiStreamAggregate
from repro.timeseries.point import DataPoint, encode_value
from repro.timeseries.stream import StreamConfig, StreamMetadata
from repro.util.timeutil import TimeRange


@dataclass
class _OwnedStream:
    """Owner-side per-stream state."""

    metadata: StreamMetadata
    keys: OwnerKeyManager
    writer: StreamWriter


@dataclass
class TimeCrypt:
    """The data owner / producer client of a TimeCrypt deployment."""

    server: ServerEngine
    owner_id: str = "owner"
    identity_provider: IdentityProvider = field(default_factory=IdentityProvider)
    _streams: Dict[str, _OwnedStream] = field(default_factory=dict, init=False)

    # -- stream lifecycle -----------------------------------------------------------

    def create_stream(
        self,
        metric: str = "",
        source: str = "",
        unit: str = "",
        config: Optional[StreamConfig] = None,
        tags: Optional[Dict[str, str]] = None,
        uuid: Optional[str] = None,
    ) -> str:
        """Create a stream; returns its UUID (Table 1: CreateStream)."""
        metadata = StreamMetadata.new(
            owner_id=self.owner_id,
            metric=metric,
            source=source,
            unit=unit,
            config=config,
            tags=tags,
        )
        if uuid is not None:
            metadata.uuid = uuid
        if metadata.config.prg == "auto":
            # Pin the resolved PRG into the persisted metadata: "auto" must
            # not be re-resolved on a later open, where a different build's
            # default would silently derive a different keystream.
            metadata.config = replace(metadata.config, prg=resolve_prg("auto"))
        self.server.create_stream(metadata)
        keys = OwnerKeyManager(stream_uuid=metadata.uuid, config=metadata.config)
        writer = StreamWriter(
            stream_uuid=metadata.uuid,
            config=metadata.config,
            cipher=keys.heac_cipher(),
            sink=self.server.insert_chunk,
            # Server handles without a bulk-ingest entry point fall back to
            # per-chunk delivery (RemoteServerClient additionally downgrades
            # itself when the remote dispatcher rejects the wire op).
            batch_sink=getattr(self.server, "insert_chunks", None),
        )
        self._streams[metadata.uuid] = _OwnedStream(metadata=metadata, keys=keys, writer=writer)
        return metadata.uuid

    def delete_stream(self, uuid: str) -> None:
        """Delete a stream and all of its data (Table 1: DeleteStream)."""
        self._owned(uuid)
        self.server.delete_stream(uuid)
        del self._streams[uuid]

    def rollup_stream(self, uuid: str, resolution_interval: int, before_time: Optional[int] = None) -> int:
        """Age out raw data finer than ``resolution_interval`` (Table 1: RollupStream)."""
        owned = self._owned(uuid)
        resolution = Resolution.from_interval(resolution_interval, owned.metadata.config.chunk_interval)
        return self.server.rollup_stream(uuid, resolution.chunks, before_time)

    def list_streams(self) -> List[str]:
        return sorted(self._streams)

    def stream_config(self, uuid: str) -> StreamConfig:
        return self._owned(uuid).metadata.config

    # -- ingest -------------------------------------------------------------------------

    def insert_record(self, uuid: str, timestamp: int, value: float) -> None:
        """Append one measurement (Table 1: InsertRecord)."""
        self._owned(uuid).writer.append(timestamp, value)

    def insert_records(self, uuid: str, records: Iterable[Tuple[int, float]]) -> None:
        """Append many measurements in timestamp order (bulk-ingest fast path).

        All chunks completed by the batch are encrypted together (sharing
        HEAC boundary keys) and delivered to the server in one call, which
        folds them into the index with one write per touched node.
        """
        owned = self._owned(uuid)
        scale = owned.metadata.config.value_scale
        owned.writer.extend(
            DataPoint(timestamp=timestamp, value=encode_value(value, scale))
            for timestamp, value in records
        )

    def insert_points(self, uuid: str, points: Iterable[DataPoint]) -> None:
        """Append pre-encoded fixed-point data points."""
        self._owned(uuid).writer.extend(points)

    def flush(self, uuid: str) -> None:
        """Seal and upload the currently open chunk."""
        self._owned(uuid).writer.flush()

    def flush_all(self) -> None:
        for uuid in self._streams:
            self.flush(uuid)

    # -- owner-side queries -----------------------------------------------------------------

    def owner_reader(self, uuid: str) -> ConsumerReader:
        """The owner's unrestricted reader for their own stream."""
        owned = self._owned(uuid)
        return ConsumerReader.for_owner(uuid, owned.metadata.config, owned.keys.key_tree)

    def get_range(self, uuid: str, start: int, end: int) -> List[DataPoint]:
        """Retrieve and decrypt raw records in ``[start, end)`` (Table 1: GetRange)."""
        reader = self.owner_reader(uuid)
        chunks = self.server.get_range(uuid, TimeRange(start, end))
        points = reader.decrypt_range(chunks)
        return [point for point in points if start <= point.timestamp < end]

    def get_stat_range(
        self, uuid: str | Sequence[str], start: int, end: int, operators: Sequence[str] = ("sum", "count", "mean")
    ) -> Dict[str, object]:
        """Statistical query over ``[start, end)`` (Table 1: GetStatRange).

        With a single UUID the result is decrypted with the owner's keys and
        the requested operators are evaluated.  With a list of UUIDs an
        inter-stream aggregate is computed (sum/count/mean over all streams).
        """
        if isinstance(uuid, str):
            result = self.server.stat_range(uuid, TimeRange(start, end))
            stats = self.owner_reader(uuid).decrypt_statistics(result)
            return {operator: stats.evaluate(operator) for operator in operators}
        aggregate = self.server.stat_range_multi(list(uuid), TimeRange(start, end))
        readers = {stream_uuid: self.owner_reader(stream_uuid) for stream_uuid in uuid}
        return self._evaluate_multi(aggregate, readers, operators)

    def delete_range(self, uuid: str, start: int, end: int) -> int:
        """Delete raw chunk payloads in a range, keeping digests (Table 1: DeleteRange)."""
        self._owned(uuid)
        return self.server.delete_range(uuid, TimeRange(start, end))

    # -- access control ------------------------------------------------------------------------

    def register_principal(self, principal: Principal) -> None:
        """Publish a principal's public key in the identity directory."""
        self.identity_provider.register(principal)

    def grant_access(
        self,
        uuid: str,
        principal_id: str,
        start: int,
        end: int,
        resolution_interval: Optional[int] = None,
    ) -> AccessPolicy:
        """Grant scoped access (Table 1: GrantAccess).

        ``resolution_interval`` (in time units) restricts the principal to
        aggregates of that granularity; omit it for full per-chunk access.
        """
        owned = self._owned(uuid)
        resolution = (
            Resolution.from_interval(resolution_interval, owned.metadata.config.chunk_interval)
            if resolution_interval is not None
            else Resolution(1)
        )
        policy = AccessPolicy(
            stream_uuid=uuid,
            principal_id=principal_id,
            time_range=TimeRange(start, end),
            resolution=resolution,
        )
        manager = owned.keys.grant_manager(self.identity_provider, self.server.token_store)
        manager.grant(policy)
        return policy

    def grant_access_many(
        self,
        uuid: str,
        grants: Sequence[Tuple[str, int, int, Optional[int]]],
    ) -> List[AccessPolicy]:
        """Grant scoped access to a cohort of principals in one burst.

        ``grants`` is a sequence of ``(principal_id, start, end,
        resolution_interval)`` tuples (``resolution_interval`` may be
        ``None`` for full per-chunk access).  All key material is derived and
        sealed client-side, then parked at the server with one token-store
        write — over the network transport that is a single ``put_grants``
        wire round trip for the whole cohort.
        """
        owned = self._owned(uuid)
        policies: List[AccessPolicy] = []
        for principal_id, start, end, resolution_interval in grants:
            resolution = (
                Resolution.from_interval(resolution_interval, owned.metadata.config.chunk_interval)
                if resolution_interval is not None
                else Resolution(1)
            )
            policies.append(
                AccessPolicy(
                    stream_uuid=uuid,
                    principal_id=principal_id,
                    time_range=TimeRange(start, end),
                    resolution=resolution,
                )
            )
        manager = owned.keys.grant_manager(self.identity_provider, self.server.token_store)
        manager.grant_many(policies)
        return policies

    def grant_open_access(
        self, uuid: str, principal_id: str, start: int, resolution_interval: Optional[int] = None
    ) -> AccessPolicy:
        """Grant an open-ended subscription (Table 1: GrantOpenAccess)."""
        owned = self._owned(uuid)
        resolution = (
            Resolution.from_interval(resolution_interval, owned.metadata.config.chunk_interval)
            if resolution_interval is not None
            else Resolution(1)
        )
        policy = open_ended(uuid, principal_id, start, resolution)
        manager = owned.keys.grant_manager(self.identity_provider, self.server.token_store)
        manager.grant(policy)
        return policy

    def revoke_access(self, uuid: str, principal_id: str, end: int) -> int:
        """Revoke access from ``end`` onward (Table 1: RevokeAccess).

        Forward secrecy only: data the principal could already decrypt stays
        decryptable (§3.3).  Returns the number of grants that were clipped.
        """
        owned = self._owned(uuid)
        manager = owned.keys.grant_manager(self.identity_provider, self.server.token_store)
        return len(manager.revoke(principal_id, end))

    def publish_resolution_envelopes(
        self, uuid: str, resolution_interval: int, start: int, end: int
    ) -> int:
        """Publish key envelopes so restricted consumers can decrypt new data."""
        owned = self._owned(uuid)
        config = owned.metadata.config
        resolution = Resolution.from_interval(resolution_interval, config.chunk_interval)
        manager = owned.keys.grant_manager(self.identity_provider, self.server.token_store)
        window_start = config.window_of(max(start, config.start_time))
        window_end = config.window_of(max(end - 1, config.start_time))
        return manager.publish_envelopes(resolution, window_start, window_end)

    # -- helpers -----------------------------------------------------------------------------------

    def _owned(self, uuid: str) -> _OwnedStream:
        owned = self._streams.get(uuid)
        if owned is None:
            raise StreamNotFoundError(f"stream '{uuid}' is not owned by this client")
        return owned

    @staticmethod
    def _evaluate_multi(
        aggregate: MultiStreamAggregate,
        readers: Dict[str, ConsumerReader],
        operators: Sequence[str],
    ) -> Dict[str, object]:
        values = ConsumerReader.decrypt_multi_stream(aggregate, readers)
        names = list(aggregate.component_names)
        results: Dict[str, object] = {}
        by_name = dict(zip(names, values))
        for operator in operators:
            operator = operator.lower()
            if operator == "sum":
                results[operator] = by_name["sum"]
            elif operator == "count":
                results[operator] = by_name["count"]
            elif operator == "mean":
                results[operator] = by_name["sum"] / by_name["count"] if by_name["count"] else 0.0
            else:
                raise AccessDeniedError(
                    f"inter-stream queries support sum/count/mean, not '{operator}'"
                )
        return results


@dataclass
class TimeCryptConsumer:
    """A data consumer: picks up grants, queries, and decrypts within its scope."""

    server: ServerEngine
    principal: Principal
    _readers: Dict[str, ConsumerReader] = field(default_factory=dict, init=False)
    _tokens: Dict[str, AccessToken] = field(default_factory=dict, init=False)
    #: Per-stream session cache of public stream configuration, so repeated
    #: queries (and repeated ``fetch_access`` calls) stop refetching stream
    #: metadata per call site.
    _configs: Dict[str, StreamConfig] = field(default_factory=dict, init=False)

    # -- grant pickup --------------------------------------------------------------

    def fetch_access(self, stream_uuid: str, config: Optional[StreamConfig] = None) -> AccessToken:
        """Pick up and decrypt the latest grant for a stream.

        The stream configuration is public metadata (chunk interval, digest
        layout); callers that do not already know it may omit it, and it is
        fetched from the server's stream registry once per session (cached
        afterwards).  Over a pipelined transport, prefer :meth:`warm_up` —
        it collapses the whole cold start (grants, metadata, envelopes, for
        any number of streams) into two wire round trips.
        """
        if config is None:
            config = self._config_of(stream_uuid)
        sealed_grants = self.server.fetch_grants(stream_uuid, self.principal.principal_id)
        token = self._unseal_latest(stream_uuid, sealed_grants)
        envelopes: Dict[int, bytes] = {}
        if not token.is_full_resolution:
            envelopes = self.server.fetch_envelopes(
                stream_uuid, token.resolution_chunks, token.window_start, token.window_end
            )
        return self._install_access(stream_uuid, token, config, envelopes)

    def warm_up(self, stream_uuids: Sequence[str]) -> Dict[str, AccessToken]:
        """Cold-start access to many streams in (at most) two round trips.

        Over a pipelined transport (:class:`~repro.net.client
        .RemoteServerClient` or anything exposing a compatible
        ``pipeline()``), the first round trip batches every stream's grant
        pickup together with the stream metadata not already in the session
        cache; tokens are unsealed locally, and a second round trip batches
        the key-envelope fetches for whichever tokens turned out to be
        resolution-restricted (their windows are inside the token, so this
        round trip cannot be merged into the first).  Full-resolution
        grants finish in one.  Against a non-pipelined server handle the
        per-stream scalar path is used instead — same result, more trips.

        Failures are per stream: a stream whose grant is missing, revoked,
        or otherwise unobtainable is simply absent from the returned
        mapping, and the remaining streams' access is still installed —
        one revoked grant must not void a whole dashboard's cold start.
        Only when *every* requested stream fails is the first error raised.
        """
        uuids = list(dict.fromkeys(stream_uuids))
        tokens: Dict[str, AccessToken] = {}
        errors: Dict[str, Exception] = {}

        def finish() -> Dict[str, AccessToken]:
            if uuids and errors and not tokens:
                raise errors[next(iter(errors))]
            return tokens

        pipeline_factory = getattr(self.server, "pipeline", None)
        if pipeline_factory is None:
            for uuid in uuids:
                try:
                    tokens[uuid] = self.fetch_access(uuid)
                except TimeCryptError as exc:
                    errors[uuid] = exc
            return finish()
        with pipeline_factory() as batch:
            grant_handles = {
                uuid: batch.fetch_grants(uuid, self.principal.principal_id) for uuid in uuids
            }
            meta_handles = {
                uuid: batch.stream_metadata(uuid)
                for uuid in uuids
                if uuid not in self._configs
            }
        restricted: Dict[str, AccessToken] = {}
        for uuid in uuids:
            try:
                if uuid in meta_handles:
                    self._configs[uuid] = meta_handles[uuid].result().config
                token = self._unseal_latest(uuid, grant_handles[uuid].result())
            except TimeCryptError as exc:
                errors[uuid] = exc
                continue
            if token.is_full_resolution:
                try:
                    self._install_access(uuid, token, self._configs[uuid], {})
                except TimeCryptError as exc:
                    errors[uuid] = exc
                    continue
                tokens[uuid] = token
            else:
                tokens[uuid] = token
                restricted[uuid] = token
        if restricted:
            with pipeline_factory() as batch:
                envelope_handles = {
                    uuid: batch.fetch_envelopes(
                        uuid, token.resolution_chunks, token.window_start, token.window_end
                    )
                    for uuid, token in restricted.items()
                }
            for uuid, token in restricted.items():
                try:
                    self._install_access(
                        uuid, token, self._configs[uuid], envelope_handles[uuid].result()
                    )
                except TimeCryptError as exc:
                    errors[uuid] = exc
                    tokens.pop(uuid, None)
        return finish()

    def _unseal_latest(self, stream_uuid: str, sealed_grants: Sequence[bytes]) -> AccessToken:
        if not sealed_grants:
            raise AccessDeniedError(
                f"no grant stored for '{self.principal.principal_id}' on stream '{stream_uuid}'"
            )
        return AccessToken.from_bytes(
            self.principal.decrypt_envelope(sealed_grants[-1], context=stream_uuid.encode("utf-8"))
        )

    def _install_access(
        self,
        stream_uuid: str,
        token: AccessToken,
        config: StreamConfig,
        envelopes: Dict[int, bytes],
    ) -> AccessToken:
        reader = ConsumerReader.from_access_token(token, config, envelopes)
        self._tokens[stream_uuid] = token
        self._readers[stream_uuid] = reader
        self._configs[stream_uuid] = config
        return token

    def reader(self, stream_uuid: str) -> ConsumerReader:
        reader = self._readers.get(stream_uuid)
        if reader is None:
            raise AccessDeniedError(f"no access fetched for stream '{stream_uuid}'")
        return reader

    def token(self, stream_uuid: str) -> AccessToken:
        token = self._tokens.get(stream_uuid)
        if token is None:
            raise AccessDeniedError(f"no access fetched for stream '{stream_uuid}'")
        return token

    # -- queries -----------------------------------------------------------------------

    def get_stat_range(
        self, stream_uuid: str, start: int, end: int, operators: Sequence[str] = ("sum", "count", "mean")
    ) -> Dict[str, object]:
        """Query and decrypt statistics over ``[start, end)`` within the granted scope."""
        reader = self.reader(stream_uuid)
        result = self.server.stat_range(stream_uuid, TimeRange(start, end))
        stats = reader.decrypt_statistics(result)
        return {operator: stats.evaluate(operator) for operator in operators}

    def get_stat_series(
        self,
        stream_uuid: str,
        start: int,
        end: int,
        granularity_interval: int,
        operators: Sequence[str] = ("mean",),
    ) -> List[Dict[str, object]]:
        """A dashboard series: one decrypted aggregate per granularity bucket."""
        reader = self.reader(stream_uuid)
        config_interval = self._config_of(stream_uuid).chunk_interval
        granularity_windows = max(1, granularity_interval // config_interval)
        results = self.server.stat_series(
            stream_uuid, TimeRange(start, end), granularity_windows
        )
        # Batch decryption: bucket-boundary keys shared between adjacent
        # aggregates are derived once for the whole series.
        series = []
        for result, stats in zip(results, reader.decrypt_series(results)):
            entry: Dict[str, object] = {
                "window_start": result.window_start,
                "window_end": result.window_end,
            }
            entry.update({operator: stats.evaluate(operator) for operator in operators})
            series.append(entry)
        return series

    def get_stat_range_multi(
        self, stream_uuids: Sequence[str], start: int, end: int
    ) -> Dict[str, object]:
        """Inter-stream query: requires fetched access to every stream involved."""
        aggregate = self.server.stat_range_multi(list(stream_uuids), TimeRange(start, end))
        readers = {uuid: self.reader(uuid) for uuid in stream_uuids}
        values = ConsumerReader.decrypt_multi_stream(aggregate, readers)
        by_name = dict(zip(aggregate.component_names, values))
        mean = by_name["sum"] / by_name["count"] if by_name.get("count") else 0.0
        return {"sum": by_name.get("sum"), "count": by_name.get("count"), "mean": mean}

    def get_range(self, stream_uuid: str, start: int, end: int) -> List[DataPoint]:
        """Retrieve and decrypt raw records (full-resolution grants only)."""
        reader = self.reader(stream_uuid)
        chunks = self.server.get_range(stream_uuid, TimeRange(start, end))
        points = reader.decrypt_range(chunks)
        return [point for point in points if start <= point.timestamp < end]

    def _config_of(self, stream_uuid: str) -> StreamConfig:
        config = self._configs.get(stream_uuid)
        if config is None:
            config = self.server.stream_metadata(stream_uuid).config
            self._configs[stream_uuid] = config
        return config
