"""Cryptographic substrates for the TimeCrypt reproduction.

This package contains every cryptographic building block the paper uses or
compares against:

* :mod:`repro.crypto.prf` — PRF/PRG abstractions (SHA-256, BLAKE2b, AES).
* :mod:`repro.crypto.aes` / :mod:`repro.crypto.gcm` — AES and AES-GCM, with a
  pure-Python reference path and an optional fast backend.
* :mod:`repro.crypto.chacha` — ChaCha20-Poly1305 (RFC 8439) from scratch.
* :mod:`repro.crypto.keytree` — the GGM key-derivation tree with access tokens.
* :mod:`repro.crypto.heac` — the Homomorphic Encryption-based Access Control
  scheme (key-cancelling additive stream cipher).
* :mod:`repro.crypto.hashchain` / :mod:`repro.crypto.keyregression` — hash
  chains and single/dual key regression for resolution keystreams.
* :mod:`repro.crypto.paillier` / :mod:`repro.crypto.ecelgamal` — the strawman
  additively-homomorphic schemes the paper benchmarks against.
* :mod:`repro.crypto.abe` — an attribute-gated scheme with a calibrated cost
  model standing in for pairing-based ABE (Sieve).
"""

from repro.crypto.heac import HEACCipher, HEACCiphertext
from repro.crypto.keytree import KeyDerivationTree, TreeToken
from repro.crypto.keyregression import DualKeyRegression, KeyRegression
from repro.crypto.prf import PRG, get_prg

__all__ = [
    "HEACCipher",
    "HEACCiphertext",
    "KeyDerivationTree",
    "TreeToken",
    "KeyRegression",
    "DualKeyRegression",
    "PRG",
    "get_prg",
]
