"""Attribute-gated encryption with a calibrated ABE cost model (paper §6.2).

The paper compares TimeCrypt's access-control path against attribute-based
encryption as used by Sieve: each chunk is protected under an attribute (its
chunk counter), principals receive keys whose attributes describe the ranges
they may read, and resolution access requires a proxy to re-aggregate.

Real CP-ABE requires bilinear pairings, which we cannot implement credibly in
pure Python within this project's scope.  The substitution (documented in
DESIGN.md §3) is:

* **Functional layer** — a symmetric attribute-gated scheme: every chunk key is
  wrapped once per matching attribute policy with an HMAC-derived KEK, so the
  grant/deny *semantics* (which principal can open which chunk) are enforced
  for real and exercised by tests.
* **Cost layer** — a :class:`ABECostModel` that charges the paper's measured
  pairing costs (53 ms per chunk encryption, 13 ms per chunk decryption at
  80-bit security, scaling linearly in the number of attributes) so the §6.2
  comparison keeps its shape without pretending Python HMACs are pairings.

Benchmarks report both the modelled latency and the actually measured
functional-layer latency, clearly labelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.crypto.prf import kdf, prf
from repro.exceptions import AccessDeniedError

#: Paper-reported per-chunk costs for the ABE baseline (seconds, 80-bit security,
#: one attribute).  Used by the cost model, not by the functional layer.
ABE_ENCRYPT_SECONDS_PER_ATTRIBUTE = 0.053
ABE_DECRYPT_SECONDS_PER_ATTRIBUTE = 0.013


@dataclass
class ABECostModel:
    """Accumulates the modelled pairing cost of ABE operations."""

    encrypt_seconds_per_attribute: float = ABE_ENCRYPT_SECONDS_PER_ATTRIBUTE
    decrypt_seconds_per_attribute: float = ABE_DECRYPT_SECONDS_PER_ATTRIBUTE
    modelled_encrypt_seconds: float = 0.0
    modelled_decrypt_seconds: float = 0.0
    encrypt_operations: int = 0
    decrypt_operations: int = 0

    def charge_encrypt(self, num_attributes: int = 1) -> float:
        cost = self.encrypt_seconds_per_attribute * max(1, num_attributes)
        self.modelled_encrypt_seconds += cost
        self.encrypt_operations += 1
        return cost

    def charge_decrypt(self, num_attributes: int = 1) -> float:
        cost = self.decrypt_seconds_per_attribute * max(1, num_attributes)
        self.modelled_decrypt_seconds += cost
        self.decrypt_operations += 1
        return cost

    @property
    def total_modelled_seconds(self) -> float:
        return self.modelled_encrypt_seconds + self.modelled_decrypt_seconds


@dataclass(frozen=True)
class AttributeKey:
    """A principal's key for a contiguous chunk-counter attribute range."""

    principal_id: str
    start: int
    end: int  # exclusive
    secret: bytes

    def covers(self, chunk_counter: int) -> bool:
        return self.start <= chunk_counter < self.end


@dataclass
class ABEAuthority:
    """The data owner's side: issues attribute keys and wraps chunk keys.

    The master secret plays the role of the ABE master key; per-range
    principal keys are PRF-derived, and a chunk key for counter ``c`` can be
    unwrapped by any principal key whose range covers ``c``.
    """

    master_secret: bytes
    cost_model: ABECostModel = field(default_factory=ABECostModel)

    def issue_key(self, principal_id: str, start: int, end: int) -> AttributeKey:
        """Issue a per-range attribute key (the analogue of an ABE secret key).

        The secret is range-specific (not principal-specific) so that the
        server-side wrapping published by :func:`wrap_chunk_key` can be opened
        by any principal granted that range, mirroring ABE policy matching.
        """
        if end <= start:
            raise ValueError("attribute range must be non-empty")
        secret = kdf(self.master_secret, f"abe-range:{start}:{end}")
        return AttributeKey(principal_id=principal_id, start=start, end=end, secret=secret)

    def chunk_kek(self, chunk_counter: int) -> bytes:
        """The key-encryption key protecting chunk ``chunk_counter``."""
        self.cost_model.charge_encrypt(num_attributes=1)
        return kdf(self.master_secret, f"abe-chunk:{chunk_counter}")

    def wrap_for_range(self, chunk_counter: int, start: int, end: int) -> bytes:
        """The wrapping value a principal with range ``[start, end)`` can recompute."""
        range_secret = kdf(self.master_secret, f"abe-range:{start}:{end}")
        return prf(range_secret, chunk_counter.to_bytes(8, "big"))


class ABEPrincipal:
    """A data consumer holding attribute keys for one or more ranges."""

    def __init__(self, principal_id: str, cost_model: ABECostModel | None = None) -> None:
        self.principal_id = principal_id
        self._keys: List[AttributeKey] = []
        self.cost_model = cost_model or ABECostModel()

    def add_key(self, key: AttributeKey) -> None:
        if key.principal_id != self.principal_id:
            raise AccessDeniedError("attribute key issued to a different principal")
        self._keys.append(key)

    def covered_ranges(self) -> List[Sequence[int]]:
        return [(key.start, key.end) for key in self._keys]

    def unwrap(self, authority_public_hint: Dict[str, bytes], chunk_counter: int) -> bytes:
        """Recover the chunk KEK for ``chunk_counter``; denies outside held ranges.

        ``authority_public_hint`` maps ``"start:end"`` range labels to the
        wrapped chunk KEK (KEK XOR range-derived pad), as published by the
        authority alongside each chunk.
        """
        for key in self._keys:
            if not key.covers(chunk_counter):
                continue
            label = f"{key.start}:{key.end}"
            wrapped = authority_public_hint.get(label)
            if wrapped is None:
                continue
            self.cost_model.charge_decrypt(num_attributes=1)
            pad = prf(key.secret, chunk_counter.to_bytes(8, "big"), len(wrapped))
            return bytes(a ^ b for a, b in zip(wrapped, pad))
        raise AccessDeniedError(
            f"principal {self.principal_id} holds no attribute covering chunk {chunk_counter}"
        )


def wrap_chunk_key(
    authority: ABEAuthority, chunk_counter: int, granted_ranges: Sequence[Sequence[int]]
) -> Dict[str, bytes]:
    """Publish the per-range wrappings of a chunk KEK (what the server stores).

    Each granted range gets the chunk KEK XOR-ed with a pad only principals
    holding that range's key can regenerate.
    """
    kek = kdf(authority.master_secret, f"abe-chunk:{chunk_counter}")
    wrappings: Dict[str, bytes] = {}
    for start, end in granted_ranges:
        if not (start <= chunk_counter < end):
            continue
        range_key = kdf(authority.master_secret, f"abe-range:{start}:{end}")
        pad = prf(range_key, chunk_counter.to_bytes(8, "big"), len(kek))
        wrappings[f"{start}:{end}"] = bytes(a ^ b for a, b in zip(kek, pad))
    return wrappings
