"""Pure-Python AES block cipher (AES-128/192/256).

TimeCrypt derives its keystream with an AES-based PRG and encrypts chunk
payloads with AES-GCM.  The paper runs on AES-NI; in this reproduction the
block cipher itself is a substrate we implement from scratch so that the
whole pipeline works without native dependencies.  :mod:`repro.crypto.gcm`
uses this implementation when the optional ``cryptography`` backend is not
available.

This is a straightforward table-driven implementation of FIPS-197:
SubBytes/ShiftRows/MixColumns/AddRoundKey operating on a 16-byte state.
It is deliberately simple rather than constant-time — it is a functional
reference for a research prototype, not a hardened production cipher.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["AES"]


def _build_sbox() -> Tuple[bytes, bytes]:
    """Construct the AES S-box and its inverse from the GF(2^8) definition."""

    def gf_mul(a: int, b: int) -> int:
        product = 0
        for _ in range(8):
            if b & 1:
                product ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B
            b >>= 1
        return product

    # Multiplicative inverses in GF(2^8) via exponentiation (a^254 = a^-1).
    def gf_inv(a: int) -> int:
        if a == 0:
            return 0
        result = 1
        power = a
        exponent = 254
        while exponent:
            if exponent & 1:
                result = gf_mul(result, power)
            power = gf_mul(power, power)
            exponent >>= 1
        return result

    sbox = bytearray(256)
    inv_sbox = bytearray(256)
    for value in range(256):
        # Affine transformation: b ^ rot(b,1) ^ rot(b,2) ^ rot(b,3) ^ rot(b,4) ^ 0x63
        b = gf_inv(value)
        affine = b
        for rot in (1, 2, 3, 4):
            affine ^= ((b << rot) | (b >> (8 - rot))) & 0xFF
        affine ^= 0x63
        sbox[value] = affine
        inv_sbox[affine] = value
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()


def _xtime(a: int) -> int:
    """Multiply by x (i.e. {02}) in GF(2^8)."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """General GF(2^8) multiplication (used by MixColumns and its inverse)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Precomputed multiplication tables for the MixColumns constants.
_MUL2 = bytes(_gf_mul(x, 2) for x in range(256))
_MUL3 = bytes(_gf_mul(x, 3) for x in range(256))
_MUL9 = bytes(_gf_mul(x, 9) for x in range(256))
_MUL11 = bytes(_gf_mul(x, 11) for x in range(256))
_MUL13 = bytes(_gf_mul(x, 13) for x in range(256))
_MUL14 = bytes(_gf_mul(x, 14) for x in range(256))

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]


class AES:
    """AES block cipher supporting 128-, 192-, and 256-bit keys.

    Only single-block ``encrypt_block`` / ``decrypt_block`` operations are
    exposed; modes of operation (CTR, GCM) are layered on top in
    :mod:`repro.crypto.gcm`.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24, or 32 bytes")
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    # -- key schedule -----------------------------------------------------

    def _expand_key(self, key: bytes) -> List[List[int]]:
        nk = len(key) // 4
        nr = self._rounds
        words: List[List[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (nr + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - nk], temp)])
        # Group words into 16-byte round keys (flat lists of 16 ints).
        round_keys = []
        for round_index in range(nr + 1):
            flat: List[int] = []
            for word in words[4 * round_index : 4 * round_index + 4]:
                flat.extend(word)
            round_keys.append(flat)
        return round_keys

    # -- round transformations --------------------------------------------

    @staticmethod
    def _add_round_key(state: List[int], round_key: List[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: List[int], box: bytes) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> List[int]:
        # State is column-major: state[row + 4*col].
        return [
            state[0], state[5], state[10], state[15],
            state[4], state[9], state[14], state[3],
            state[8], state[13], state[2], state[7],
            state[12], state[1], state[6], state[11],
        ]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> List[int]:
        return [
            state[0], state[13], state[10], state[7],
            state[4], state[1], state[14], state[11],
            state[8], state[5], state[2], state[15],
            state[12], state[9], state[6], state[3],
        ]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for col in range(4):
            i = 4 * col
            a0, a1, a2, a3 = state[i], state[i + 1], state[i + 2], state[i + 3]
            state[i] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            state[i + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            state[i + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            state[i + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for col in range(4):
            i = 4 * col
            a0, a1, a2, a3 = state[i], state[i + 1], state[i + 2], state[i + 3]
            state[i] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            state[i + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            state[i + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            state[i + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]

    # -- public block operations ------------------------------------------

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(plaintext) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = list(plaintext)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, self._rounds):
            self._sub_bytes(state, _SBOX)
            state = self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state, _SBOX)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self._rounds])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(ciphertext) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = list(ciphertext)
        self._add_round_key(state, self._round_keys[self._rounds])
        for round_index in range(self._rounds - 1, 0, -1):
            state = self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[round_index])
            self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
