"""ChaCha20-Poly1305 authenticated encryption (RFC 8439), from scratch.

TimeCrypt only requires *an* AEAD for chunk payloads (the paper uses
AES-GCM-128).  We additionally provide ChaCha20-Poly1305 as an alternative
chunk cipher: it is attractive for the IoT data producers the paper targets
(OpenMote-class devices without AES hardware), and having a second,
independently implemented AEAD lets the test suite cross-check the chunk
encryption layer.

The implementation follows RFC 8439: the ChaCha20 block function, the
Poly1305 one-time authenticator keyed from the first keystream block, and the
standard AEAD construction (AAD || pad || ciphertext || pad || lengths).
"""

from __future__ import annotations

import hmac
import os
import struct
from typing import List, Optional

from repro.exceptions import IntegrityError

KEY_BYTES = 32
NONCE_BYTES = 12
TAG_BYTES = 16

_MASK32 = 0xFFFFFFFF


def _rotl32(value: int, count: int) -> int:
    return ((value << count) & _MASK32) | (value >> (32 - count))


def _quarter_round(state: List[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """The ChaCha20 block function: 64 bytes of keystream."""
    if len(key) != KEY_BYTES:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != NONCE_BYTES:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    constants = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
    state = list(constants) + list(struct.unpack("<8L", key)) + [counter & _MASK32] + list(
        struct.unpack("<3L", nonce)
    )
    working = list(state)
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    output = [(w + s) & _MASK32 for w, s in zip(working, state)]
    return struct.pack("<16L", *output)


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, initial_counter: int = 1) -> bytes:
    """Encrypt/decrypt ``data`` with the ChaCha20 stream cipher."""
    out = bytearray()
    counter = initial_counter
    for offset in range(0, len(data), 64):
        keystream = chacha20_block(key, counter, nonce)
        block = data[offset : offset + 64]
        out += bytes(a ^ b for a, b in zip(block, keystream))
        counter += 1
    return bytes(out)


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the Poly1305 authenticator of ``message`` under a 32-byte key."""
    if len(key) != 32:
        raise ValueError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little") & 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
    s = int.from_bytes(key[16:], "little")
    prime = (1 << 130) - 5
    accumulator = 0
    for offset in range(0, len(message), 16):
        block = message[offset : offset + 16]
        n = int.from_bytes(block + b"\x01", "little")
        accumulator = ((accumulator + n) * r) % prime
    return ((accumulator + s) & ((1 << 128) - 1)).to_bytes(16, "little")


def _pad16(data: bytes) -> bytes:
    remainder = len(data) % 16
    return b"" if remainder == 0 else b"\x00" * (16 - remainder)


def _aead_mac_data(aad: bytes, ciphertext: bytes) -> bytes:
    return (
        aad
        + _pad16(aad)
        + ciphertext
        + _pad16(ciphertext)
        + struct.pack("<Q", len(aad))
        + struct.pack("<Q", len(ciphertext))
    )


class ChaCha20Poly1305:
    """The RFC 8439 AEAD construction."""

    def __init__(self, key: bytes) -> None:
        if len(key) != KEY_BYTES:
            raise ValueError("ChaCha20-Poly1305 key must be 32 bytes")
        self._key = key

    def _one_time_key(self, nonce: bytes) -> bytes:
        return chacha20_block(self._key, 0, nonce)[:32]

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ``ciphertext || tag``."""
        ciphertext = chacha20_xor(self._key, nonce, plaintext)
        tag = poly1305_mac(self._one_time_key(nonce), _aead_mac_data(aad, ciphertext))
        return ciphertext + tag

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt ``ciphertext || tag``; raises on tampering."""
        if len(data) < TAG_BYTES:
            raise IntegrityError("ciphertext shorter than the Poly1305 tag")
        ciphertext, tag = data[:-TAG_BYTES], data[-TAG_BYTES:]
        expected = poly1305_mac(self._one_time_key(nonce), _aead_mac_data(aad, ciphertext))
        if not hmac.compare_digest(tag, expected):
            raise IntegrityError("ChaCha20-Poly1305 tag mismatch")
        return chacha20_xor(self._key, nonce, ciphertext)


def chacha_encrypt(
    key: bytes, plaintext: bytes, aad: bytes = b"", nonce: Optional[bytes] = None
) -> bytes:
    """Encrypt returning ``nonce || ciphertext || tag`` (random nonce by default)."""
    if nonce is None:
        nonce = os.urandom(NONCE_BYTES)
    if len(nonce) != NONCE_BYTES:
        raise ValueError(f"nonce must be {NONCE_BYTES} bytes")
    return nonce + ChaCha20Poly1305(key).encrypt(nonce, plaintext, aad)


def chacha_decrypt(key: bytes, blob: bytes, aad: bytes = b"") -> bytes:
    """Decrypt a blob produced by :func:`chacha_encrypt`."""
    if len(blob) < NONCE_BYTES + TAG_BYTES:
        raise IntegrityError("AEAD blob too short")
    nonce, body = blob[:NONCE_BYTES], blob[NONCE_BYTES:]
    return ChaCha20Poly1305(key).decrypt(nonce, body, aad)
