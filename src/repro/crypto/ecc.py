"""Elliptic-curve arithmetic over NIST P-256 (prime256v1), from scratch.

The paper's second strawman encrypts index digests with additive EC-ElGamal
over prime256v1 (via OpenSSL).  We implement the curve group here: points in
Jacobian coordinates for fast double-and-add scalar multiplication, plus the
affine interface EC-ElGamal needs.  The same group also backs the ECIES-style
hybrid encryption used to wrap access tokens for principals.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exceptions import CryptoError

# NIST P-256 domain parameters.
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551
GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5


@dataclass(frozen=True)
class Point:
    """An affine point on P-256; ``x is None`` encodes the point at infinity."""

    x: Optional[int]
    y: Optional[int]

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def encode(self) -> bytes:
        """SEC1 encoding: 0x00 for infinity, uncompressed 0x04||x||y otherwise."""
        if self.is_infinity:
            return b"\x00"
        assert self.x is not None and self.y is not None
        return b"\x04" + self.x.to_bytes(32, "big") + self.y.to_bytes(32, "big")

    @staticmethod
    def decode(data: bytes) -> "Point":
        if data == b"\x00":
            return INFINITY
        if len(data) != 65 or data[0] != 0x04:
            raise CryptoError("invalid P-256 point encoding")
        x = int.from_bytes(data[1:33], "big")
        y = int.from_bytes(data[33:], "big")
        point = Point(x, y)
        if not is_on_curve(point):
            raise CryptoError("decoded point is not on the curve")
        return point


INFINITY = Point(None, None)
GENERATOR = Point(GX, GY)


def is_on_curve(point: Point) -> bool:
    """Check the short-Weierstrass equation ``y^2 = x^3 + ax + b``."""
    if point.is_infinity:
        return True
    assert point.x is not None and point.y is not None
    return (point.y * point.y - (point.x * point.x * point.x + A * point.x + B)) % P == 0


# -- Jacobian-coordinate arithmetic (internal) ---------------------------------

_JPoint = Tuple[int, int, int]  # (X, Y, Z); Z == 0 encodes infinity
_JINF: _JPoint = (1, 1, 0)


def _to_jacobian(point: Point) -> _JPoint:
    if point.is_infinity:
        return _JINF
    assert point.x is not None and point.y is not None
    return point.x, point.y, 1


def _from_jacobian(jpoint: _JPoint) -> Point:
    x, y, z = jpoint
    if z == 0:
        return INFINITY
    z_inv = pow(z, -1, P)
    z_inv2 = (z_inv * z_inv) % P
    return Point((x * z_inv2) % P, (y * z_inv2 * z_inv) % P)


def _jacobian_double(jpoint: _JPoint) -> _JPoint:
    x, y, z = jpoint
    if z == 0 or y == 0:
        return _JINF
    ysq = (y * y) % P
    s = (4 * x * ysq) % P
    m = (3 * x * x + A * pow(z, 4, P)) % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = (2 * y * z) % P
    return nx, ny, nz


def _jacobian_add(p1: _JPoint, p2: _JPoint) -> _JPoint:
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if z1 == 0:
        return p2
    if z2 == 0:
        return p1
    z1sq = (z1 * z1) % P
    z2sq = (z2 * z2) % P
    u1 = (x1 * z2sq) % P
    u2 = (x2 * z1sq) % P
    s1 = (y1 * z2sq * z2) % P
    s2 = (y2 * z1sq * z1) % P
    if u1 == u2:
        if s1 != s2:
            return _JINF
        return _jacobian_double(p1)
    h = (u2 - u1) % P
    r = (s2 - s1) % P
    h2 = (h * h) % P
    h3 = (h2 * h) % P
    u1h2 = (u1 * h2) % P
    nx = (r * r - h3 - 2 * u1h2) % P
    ny = (r * (u1h2 - nx) - s1 * h3) % P
    nz = (h * z1 * z2) % P
    return nx, ny, nz


def _jacobian_multiply(jpoint: _JPoint, scalar: int) -> _JPoint:
    scalar %= N
    if scalar == 0 or jpoint[2] == 0:
        return _JINF
    result = _JINF
    addend = jpoint
    while scalar:
        if scalar & 1:
            result = _jacobian_add(result, addend)
        addend = _jacobian_double(addend)
        scalar >>= 1
    return result


# -- public affine interface ---------------------------------------------------

def point_add(p1: Point, p2: Point) -> Point:
    """Group addition of affine points."""
    return _from_jacobian(_jacobian_add(_to_jacobian(p1), _to_jacobian(p2)))


def point_neg(point: Point) -> Point:
    if point.is_infinity:
        return INFINITY
    assert point.x is not None and point.y is not None
    return Point(point.x, (-point.y) % P)


def point_sub(p1: Point, p2: Point) -> Point:
    return point_add(p1, point_neg(p2))


def scalar_mult(scalar: int, point: Point = GENERATOR) -> Point:
    """``scalar * point`` via Jacobian double-and-add."""
    return _from_jacobian(_jacobian_multiply(_to_jacobian(point), scalar))


def random_scalar() -> int:
    """A uniformly random non-zero scalar modulo the group order."""
    return secrets.randbelow(N - 1) + 1


def generate_keypair() -> Tuple[int, Point]:
    """An EC keypair ``(private_scalar, public_point)``."""
    private = random_scalar()
    return private, scalar_mult(private)
