"""Additive (lifted) EC-ElGamal — the paper's second strawman digest cipher.

Plaintexts are encoded "in the exponent": ``Enc(m) = (r·G, m·G + r·Q)`` for
public key ``Q = x·G``.  Adding ciphertexts component-wise adds plaintexts,
so the scheme is additively homomorphic, but decryption recovers ``m·G`` and
must solve a small discrete logarithm to get ``m`` back.  We use a
baby-step/giant-step table, which works for the aggregate magnitudes a
monitoring digest reaches but makes decryption expensive and bounded — the
exact drawback the paper's evaluation highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto import ecc
from repro.exceptions import DecryptionError


@dataclass(frozen=True)
class ECElGamalCiphertext:
    """A lifted-ElGamal ciphertext ``(c1, c2) = (r·G, m·G + r·Q)``."""

    c1: ecc.Point
    c2: ecc.Point

    def encode(self) -> bytes:
        return self.c1.encode() + self.c2.encode()

    @property
    def size_bytes(self) -> int:
        """Serialized size; drives the strawman's index-size expansion."""
        return len(self.encode())


class ECElGamal:
    """Additive EC-ElGamal over P-256 with baby-step/giant-step decryption.

    Parameters
    ----------
    private_key:
        The decryption scalar; omit it to build an encrypt/aggregate-only
        instance (as the untrusted server would hold).
    max_plaintext:
        Upper bound (exclusive) on decryptable aggregates.  The baby-step
        table costs O(sqrt(max_plaintext)) space and each decryption costs
        O(sqrt(max_plaintext)) group operations.
    """

    def __init__(
        self,
        public_key: ecc.Point,
        private_key: Optional[int] = None,
        max_plaintext: int = 1 << 32,
    ) -> None:
        self._public = public_key
        self._private = private_key
        self._max_plaintext = max_plaintext
        self._baby_steps: Optional[Dict[bytes, int]] = None
        self._baby_count = 0

    @classmethod
    def generate(cls, max_plaintext: int = 1 << 32) -> "ECElGamal":
        private, public = ecc.generate_keypair()
        return cls(public_key=public, private_key=private, max_plaintext=max_plaintext)

    @property
    def public_key(self) -> ecc.Point:
        return self._public

    def public_instance(self) -> "ECElGamal":
        """An instance without the private key (what the server holds)."""
        return ECElGamal(self._public, None, self._max_plaintext)

    # -- encryption / homomorphism -------------------------------------------

    def encrypt(self, plaintext: int, randomness: Optional[int] = None) -> ECElGamalCiphertext:
        if plaintext < 0:
            raise ValueError("lifted ElGamal plaintexts must be non-negative")
        r = randomness if randomness is not None else ecc.random_scalar()
        c1 = ecc.scalar_mult(r)
        shared = ecc.scalar_mult(r, self._public)
        message_point = ecc.scalar_mult(plaintext) if plaintext else ecc.INFINITY
        c2 = ecc.point_add(message_point, shared)
        return ECElGamalCiphertext(c1=c1, c2=c2)

    @staticmethod
    def add(a: ECElGamalCiphertext, b: ECElGamalCiphertext) -> ECElGamalCiphertext:
        """Homomorphic addition (two point additions)."""
        return ECElGamalCiphertext(
            c1=ecc.point_add(a.c1, b.c1), c2=ecc.point_add(a.c2, b.c2)
        )

    # -- decryption ------------------------------------------------------------

    def _ensure_baby_table(self) -> Tuple[Dict[bytes, int], int]:
        if self._baby_steps is None:
            count = int(self._max_plaintext ** 0.5) + 1
            table: Dict[bytes, int] = {}
            point = ecc.INFINITY
            for i in range(count):
                table[point.encode()] = i
                point = ecc.point_add(point, ecc.GENERATOR)
            self._baby_steps = table
            self._baby_count = count
        return self._baby_steps, self._baby_count

    def decrypt(self, ciphertext: ECElGamalCiphertext) -> int:
        """Recover the aggregated plaintext (small discrete log)."""
        if self._private is None:
            raise DecryptionError("no EC-ElGamal private key available")
        shared = ecc.scalar_mult(self._private, ciphertext.c1)
        message_point = ecc.point_sub(ciphertext.c2, shared)
        return self._discrete_log(message_point)

    def _discrete_log(self, point: ecc.Point) -> int:
        if point.is_infinity:
            return 0
        table, count = self._ensure_baby_table()
        # Giant steps: point - j*(count*G) for j in [0, count).
        giant_stride = ecc.point_neg(ecc.scalar_mult(count))
        current = point
        for giant in range(count + 1):
            hit = table.get(current.encode())
            if hit is not None:
                value = giant * count + hit
                if value < self._max_plaintext:
                    return value
                break
            current = ecc.point_add(current, giant_stride)
        raise DecryptionError(
            f"EC-ElGamal aggregate exceeds the decodable bound {self._max_plaintext}"
        )
