"""AES-GCM authenticated encryption (chunk payload cipher).

TimeCrypt encrypts the raw data points of every chunk with AES-GCM-128 under
a per-chunk key derived from the HEAC keystream (``H(k_i - k_{i+1})``).  This
module provides:

* :class:`AesGcm` — a from-scratch GCM implementation (CTR mode + GHASH)
  layered on the pure-Python block cipher in :mod:`repro.crypto.aes`.
* :func:`aead_encrypt` / :func:`aead_decrypt` — the functions the rest of the
  library uses, which transparently use the native ``cryptography`` backend
  when it is available (our stand-in for AES-NI) and fall back to the pure
  Python path otherwise.

The ciphertext layout produced by both paths is ``nonce (12B) || body || tag
(16B)`` so blobs are interchangeable between backends.
"""

from __future__ import annotations

import hmac
import os
from typing import Optional

from repro.crypto.aes import AES
from repro.exceptions import IntegrityError

NONCE_BYTES = 12
TAG_BYTES = 16

try:  # pragma: no cover - environment dependent
    from cryptography.hazmat.primitives.ciphers.aead import AESGCM as _NativeAESGCM

    _HAVE_NATIVE = True
except Exception:  # pragma: no cover
    _HAVE_NATIVE = False


def _ghash_mult(x: int, y: int) -> int:
    """Multiplication in GF(2^128) with the GCM reduction polynomial."""
    result = 0
    reduction = 0xE1000000000000000000000000000000
    for bit_index in range(127, -1, -1):
        if (y >> bit_index) & 1:
            result ^= x
        if x & 1:
            x = (x >> 1) ^ reduction
        else:
            x >>= 1
    return result


class _GHash:
    """The GHASH universal hash over GF(2^128)."""

    def __init__(self, h_key: bytes) -> None:
        self._h = int.from_bytes(h_key, "big")
        self._state = 0

    def update(self, data: bytes) -> None:
        padded = data + b"\x00" * ((16 - len(data) % 16) % 16)
        for offset in range(0, len(padded), 16):
            block = int.from_bytes(padded[offset : offset + 16], "big")
            self._state = _ghash_mult(self._state ^ block, self._h)

    def update_lengths(self, aad_len: int, ct_len: int) -> None:
        block = (aad_len * 8).to_bytes(8, "big") + (ct_len * 8).to_bytes(8, "big")
        self._state = _ghash_mult(self._state ^ int.from_bytes(block, "big"), self._h)

    def digest(self) -> bytes:
        return self._state.to_bytes(16, "big")


class AesGcm:
    """AES in Galois/Counter Mode, implemented from the spec.

    This reference path is slow (pure Python) but exercised by tests against
    NIST vectors and kept interoperable with the native backend.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError("AES-GCM key must be 16, 24, or 32 bytes")
        self._aes = AES(key)
        self._h = self._aes.encrypt_block(b"\x00" * 16)

    def _counter_block(self, nonce: bytes, counter: int) -> bytes:
        if len(nonce) == 12:
            return nonce + counter.to_bytes(4, "big")
        ghash = _GHash(self._h)
        ghash.update(nonce)
        ghash.update_lengths(0, len(nonce))
        j0 = int.from_bytes(ghash.digest(), "big")
        return ((j0 + counter - 1) & ((1 << 128) - 1)).to_bytes(16, "big")

    def _ctr_transform(self, nonce: bytes, data: bytes) -> bytes:
        out = bytearray()
        counter = 2
        for offset in range(0, len(data), 16):
            keystream = self._aes.encrypt_block(self._counter_block(nonce, counter))
            block = data[offset : offset + 16]
            out += bytes(a ^ b for a, b in zip(block, keystream))
            counter += 1
        return bytes(out)

    def _tag(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        ghash = _GHash(self._h)
        ghash.update(aad)
        ghash.update(ciphertext)
        ghash.update_lengths(len(aad), len(ciphertext))
        s = self._aes.encrypt_block(self._counter_block(nonce, 1))
        return bytes(a ^ b for a, b in zip(ghash.digest(), s))

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ``ciphertext || tag`` for the given nonce and associated data."""
        ciphertext = self._ctr_transform(nonce, plaintext)
        return ciphertext + self._tag(nonce, ciphertext, aad)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext; raises on tampering."""
        if len(data) < TAG_BYTES:
            raise IntegrityError("ciphertext shorter than the GCM tag")
        ciphertext, tag = data[:-TAG_BYTES], data[-TAG_BYTES:]
        expected = self._tag(nonce, ciphertext, aad)
        if not hmac.compare_digest(tag, expected):
            raise IntegrityError("AES-GCM tag mismatch")
        return self._ctr_transform(nonce, ciphertext)


def aead_encrypt(
    key: bytes,
    plaintext: bytes,
    aad: bytes = b"",
    nonce: Optional[bytes] = None,
    force_pure_python: bool = False,
) -> bytes:
    """Encrypt with AES-GCM; returns ``nonce || ciphertext || tag``.

    A random 96-bit nonce is generated when none is supplied.  Nonce reuse
    under the same key breaks GCM; TimeCrypt avoids it by deriving a fresh
    key per chunk, and callers that pass explicit nonces are responsible for
    uniqueness.
    """
    if nonce is None:
        nonce = os.urandom(NONCE_BYTES)
    if len(nonce) != NONCE_BYTES:
        raise ValueError(f"nonce must be {NONCE_BYTES} bytes")
    if _HAVE_NATIVE and not force_pure_python:
        body = _NativeAESGCM(key).encrypt(nonce, plaintext, aad or None)
        return nonce + body
    return nonce + AesGcm(key).encrypt(nonce, plaintext, aad)


def aead_decrypt(
    key: bytes, blob: bytes, aad: bytes = b"", force_pure_python: bool = False
) -> bytes:
    """Decrypt a blob produced by :func:`aead_encrypt`; raises :class:`IntegrityError`."""
    if len(blob) < NONCE_BYTES + TAG_BYTES:
        raise IntegrityError("AEAD blob too short")
    nonce, body = blob[:NONCE_BYTES], blob[NONCE_BYTES:]
    if _HAVE_NATIVE and not force_pure_python:
        try:
            return _NativeAESGCM(key).decrypt(nonce, body, aad or None)
        except Exception as exc:
            raise IntegrityError("AES-GCM tag mismatch") from exc
    return AesGcm(key).decrypt(nonce, body, aad)
