"""Hash chains: the primitive underneath key regression (paper §A.2).

A hash chain is a sequence of states ``s_n -> s_{n-1} -> ... -> s_0`` where
``s_{i-1} = MSB_λ(G(s_i))`` for a length-expanding one-way function ``G``.
Walking the chain "forward" (towards lower indices) is cheap; inverting it is
infeasible.  Key regression exploits this asymmetry: handing out state ``s_i``
grants the ability to compute every state (and thus key) with index ``<= i``
but nothing newer.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.exceptions import KeyDerivationError

STATE_BYTES = 16
KEY_BYTES = 16


def expand(state: bytes) -> bytes:
    """Length-expanding one-way function ``G: {0,1}^λ -> {0,1}^{λ+l}``.

    Implemented as BLAKE2b with 32-byte output; the first 16 bytes are the
    "MSB" half (the next state), the last 16 bytes the "LSB" half (the key).
    """
    if len(state) != STATE_BYTES:
        raise ValueError(f"hash-chain state must be {STATE_BYTES} bytes")
    return hashlib.blake2b(state, digest_size=STATE_BYTES + KEY_BYTES, person=b"tc-hashchain0000").digest()


def next_state(state: bytes) -> bytes:
    """``MSB_λ(G(state))`` — one step along the chain."""
    return expand(state)[:STATE_BYTES]


def state_key(state: bytes) -> bytes:
    """``LSB_l(G(state))`` — the key derived from a state."""
    return expand(state)[STATE_BYTES:]


def walk(state: bytes, steps: int) -> bytes:
    """Apply :func:`next_state` ``steps`` times."""
    if steps < 0:
        raise KeyDerivationError("cannot walk a hash chain backwards")
    current = state
    for _ in range(steps):
        current = next_state(current)
    return current


class HashChain:
    """A materialised hash chain of ``length`` states.

    The chain is generated from a random ``seed`` assigned to the *last*
    state ``s_{length-1}``; earlier states are derived by repeated hashing.
    For long chains, materialising every state costs O(n) memory; the
    ``checkpoint_interval`` option keeps only every k-th state and re-derives
    the rest on demand (O(n/k) memory, O(k) worst-case lookup), which is how
    we keep million-entry resolution keystreams practical.
    """

    def __init__(self, seed: bytes, length: int, checkpoint_interval: int = 64) -> None:
        if len(seed) != STATE_BYTES:
            raise ValueError(f"seed must be {STATE_BYTES} bytes")
        if length <= 0:
            raise ValueError("chain length must be positive")
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self._length = length
        self._interval = checkpoint_interval
        self._checkpoints: Dict[int, bytes] = {}
        # Generate from the tail (index length-1) towards the head (index 0),
        # storing checkpoints along the way.
        state = seed
        for index in range(length - 1, -1, -1):
            if index % checkpoint_interval == 0 or index == length - 1:
                self._checkpoints[index] = state
            if index > 0:
                state = next_state(state)

    @property
    def length(self) -> int:
        return self._length

    def state(self, index: int) -> bytes:
        """The chain state ``s_index``."""
        if not 0 <= index < self._length:
            raise KeyDerivationError(f"chain index {index} out of range [0, {self._length})")
        cached = self._checkpoints.get(index)
        if cached is not None:
            return cached
        # The nearest checkpoint with a *higher* index can walk down to us.
        checkpoint_index = ((index // self._interval) + 1) * self._interval
        checkpoint_index = min(checkpoint_index, self._length - 1)
        checkpoint = self._checkpoints.get(checkpoint_index)
        if checkpoint is None:
            raise KeyDerivationError(f"missing checkpoint for index {index}")
        return walk(checkpoint, checkpoint_index - index)

    def key(self, index: int) -> bytes:
        """The key derived from state ``s_index``."""
        return state_key(self.state(index))

    def states(self, start: int, end: int) -> List[bytes]:
        """States for indices ``[start, end)`` in order."""
        return [self.state(i) for i in range(start, end)]
