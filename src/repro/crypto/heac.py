"""HEAC: Homomorphic Encryption-based Access Control (paper §4.2, §A.1).

HEAC is a symmetric, additively homomorphic stream cipher with a key encoding
that makes contiguous-range aggregation cheap to decrypt:

* Encryption of the digest value ``m_i`` for chunk window ``i`` is
  ``c_i = m_i + (k_i - k_{i+1})  mod M`` with ``M = 2^64``.
* Adding ciphertexts adds plaintexts (mod M).
* For a contiguous range ``[i, j)`` the inner keys telescope away, so
  decryption of ``sum(c_i .. c_{j-1})`` needs only ``k_i`` and ``k_j``
  ("key cancelling", §4.2.2) — this is also what enables resolution-based
  access control via outer-key sharing (§4.4.1).

Keys come from the GGM key-derivation tree (:mod:`repro.crypto.keytree`);
any object exposing ``leaf(index) -> bytes`` works as a keystream, so both
the data owner's full tree and a consumer's token-derived partial keystream
plug in directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Protocol, Sequence

from repro.crypto.prf import kdf
from repro.exceptions import DecryptionError, KeyDerivationError

#: Plaintext/ciphertext ring modulus.  The paper sets M = 2^64 so that any
#: 64-bit integer can be encrypted without leaking its magnitude.
MODULUS = 1 << 64
_MASK = MODULUS - 1


class Keystream(Protocol):
    """Anything that can produce the i-th 16-byte keystream key."""

    def leaf(self, leaf_index: int) -> bytes:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class HEACCiphertext:
    """A HEAC ciphertext tagged with the chunk-window interval it covers.

    ``window_start`` / ``window_end`` identify the half-open keystream
    interval ``[window_start, window_end)`` the ciphertext aggregates over.
    A freshly encrypted per-chunk digest value has ``window_end ==
    window_start + 1``.  Homomorphic addition of adjacent ciphertexts widens
    the interval; the interval is exactly what determines which two outer
    keys decrypt the aggregate.
    """

    value: int
    window_start: int
    window_end: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < MODULUS:
            raise ValueError("HEAC ciphertext value outside the 64-bit ring")
        if self.window_end <= self.window_start:
            raise ValueError("HEAC ciphertext must cover a non-empty window interval")

    @property
    def num_windows(self) -> int:
        return self.window_end - self.window_start

    def __add__(self, other: "HEACCiphertext") -> "HEACCiphertext":
        """Homomorphic addition of ciphertexts over adjacent window intervals."""
        if not isinstance(other, HEACCiphertext):
            return NotImplemented
        if self.window_end == other.window_start:
            first, second = self, other
        elif other.window_end == self.window_start:
            first, second = other, self
        else:
            raise ValueError(
                "HEAC ciphertexts can only be combined over adjacent window intervals; "
                f"got [{self.window_start},{self.window_end}) and "
                f"[{other.window_start},{other.window_end})"
            )
        return HEACCiphertext(
            value=(first.value + second.value) & _MASK,
            window_start=first.window_start,
            window_end=second.window_end,
        )

    def add_scalar(self, plaintext_delta: int) -> "HEACCiphertext":
        """Homomorphically add a known plaintext constant."""
        return HEACCiphertext(
            value=(self.value + plaintext_delta) & _MASK,
            window_start=self.window_start,
            window_end=self.window_end,
        )


def key_to_int(key: bytes) -> int:
    """Length-matching hash: fold a 128-bit key into the 64-bit ring (§A.1.5).

    The paper folds the PRF output by XOR-ing fixed-size substrings; the
    result stays uniform over ``[0, 2^64)``.
    """
    if len(key) < 16:
        raise ValueError("keystream keys must be at least 16 bytes")
    high = int.from_bytes(key[:8], "big")
    low = int.from_bytes(key[8:16], "big")
    return (high ^ low) & _MASK


class HEACCipher:
    """Encrypt/decrypt per-window digest values with the key-cancelling encoding."""

    def __init__(self, keystream: Keystream) -> None:
        self._keystream = keystream

    # -- key material -------------------------------------------------------

    def window_key(self, window_index: int) -> int:
        """The 64-bit additive key ``k_i`` for window ``i``."""
        return key_to_int(self._keystream.leaf(window_index))

    def encoded_key(self, window_index: int) -> int:
        """The encoded one-time pad ``k_i - k_{i+1} mod M``."""
        return (self.window_key(window_index) - self.window_key(window_index + 1)) & _MASK

    def chunk_payload_key(self, window_index: int, length: int = 16) -> bytes:
        """Derive the AEAD key for the raw chunk payload of window ``i``.

        The paper uses ``H(k_i - k_{i+1})``; we use a domain-separated PRF of
        the encoded key so payload keys are independent of digest pads.
        """
        encoded = self.encoded_key(window_index).to_bytes(8, "big")
        return kdf(self._keystream.leaf(window_index), "chunk-payload:" + encoded.hex(), length)

    # -- encryption / decryption ---------------------------------------------

    def encrypt(self, plaintext: int, window_index: int) -> HEACCiphertext:
        """Encrypt the digest value of chunk window ``window_index``."""
        value = (plaintext + self.encoded_key(window_index)) & _MASK
        return HEACCiphertext(value=value, window_start=window_index, window_end=window_index + 1)

    def encrypt_vector(self, plaintexts: Sequence[int], window_index: int) -> List[HEACCiphertext]:
        """Encrypt a digest vector; each component gets an independent pad.

        Component ``j`` is padded with keys derived for the sub-position
        ``window_index`` of a component-specific keystream slice, realised by
        mixing the component index into the keystream key via the PRF.  This
        keeps one tree per stream while never reusing a pad.
        """
        return [
            HEACCiphertext(
                value=(plaintext + self._component_pad(window_index, component)) & _MASK,
                window_start=window_index,
                window_end=window_index + 1,
            )
            for component, plaintext in enumerate(plaintexts)
        ]

    def decrypt(self, ciphertext: HEACCiphertext) -> int:
        """Decrypt a (possibly range-aggregated) ciphertext.

        Only the two outer keys ``k_start`` and ``k_end`` are needed; a
        consumer whose keystream cannot derive them gets a
        :class:`DecryptionError` — that failure *is* the access-control
        enforcement.
        """
        try:
            outer_start = self.window_key(ciphertext.window_start)
            outer_end = self.window_key(ciphertext.window_end)
        except KeyDerivationError as exc:
            raise DecryptionError(
                "missing outer keys for windows "
                f"[{ciphertext.window_start}, {ciphertext.window_end})"
            ) from exc
        return (ciphertext.value - outer_start + outer_end) & _MASK

    def decrypt_vector(
        self, ciphertexts: Sequence[HEACCiphertext], component_offset: int = 0
    ) -> List[int]:
        """Decrypt a vector of per-component range aggregates."""
        plaintexts = []
        for component, ciphertext in enumerate(ciphertexts, start=component_offset):
            pad = (
                self._component_outer_pad(ciphertext.window_start, component)
                - self._component_outer_pad(ciphertext.window_end, component)
            ) & _MASK
            plaintexts.append((ciphertext.value - pad) & _MASK)
        return plaintexts

    def outer_pad(self, window_start: int, window_end: int, component: int = 0) -> int:
        """The additive pad covering ``[window_start, window_end)`` for one component.

        Subtracting this pad from a range-aggregated ciphertext value yields
        the plaintext aggregate; it is what remains after all inner keys
        cancel.  Exposed for multi-stream decryption, where pads from several
        streams are removed from one combined value.
        """
        return (
            self._component_key(window_start, component)
            - self._component_key(window_end, component)
        ) & _MASK

    def decrypt_signed(self, ciphertext: HEACCiphertext) -> int:
        """Decrypt and reinterpret the 64-bit result as a signed integer."""
        value = self.decrypt(ciphertext)
        return value - MODULUS if value >= MODULUS // 2 else value

    # -- component pads ------------------------------------------------------

    def _component_key(self, window_index: int, component: int) -> int:
        if component == 0:
            return self.window_key(window_index)
        derived = kdf(self._keystream.leaf(window_index), f"digest-component:{component}")
        return key_to_int(derived)

    def _component_outer_pad(self, window_index: int, component: int) -> int:
        return self._component_key(window_index, component)

    def _component_pad(self, window_index: int, component: int) -> int:
        return (
            self._component_key(window_index, component)
            - self._component_key(window_index + 1, component)
        ) & _MASK


def aggregate(ciphertexts: Iterable[HEACCiphertext]) -> HEACCiphertext:
    """Homomorphically sum ciphertexts covering a contiguous window range.

    The inputs may arrive in any order; they are sorted by window interval
    and must tile a contiguous range with no gaps or overlaps.
    """
    ordered = sorted(ciphertexts, key=lambda c: c.window_start)
    if not ordered:
        raise ValueError("cannot aggregate an empty ciphertext sequence")
    result = ordered[0]
    for ciphertext in ordered[1:]:
        result = result + ciphertext
    return result


def aggregate_componentwise(
    vectors: Iterable[Sequence[HEACCiphertext]],
) -> List[HEACCiphertext]:
    """Aggregate digest vectors component by component."""
    materialised = [list(vector) for vector in vectors]
    if not materialised:
        raise ValueError("cannot aggregate an empty vector sequence")
    width = len(materialised[0])
    if any(len(vector) != width for vector in materialised):
        raise ValueError("all digest vectors must have the same number of components")
    return [aggregate(vector[i] for vector in materialised) for i in range(width)]
