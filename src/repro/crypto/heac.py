"""HEAC: Homomorphic Encryption-based Access Control (paper §4.2, §A.1).

HEAC is a symmetric, additively homomorphic stream cipher with a key encoding
that makes contiguous-range aggregation cheap to decrypt:

* Encryption of the digest value ``m_i`` for chunk window ``i`` is
  ``c_i = m_i + (k_i - k_{i+1})  mod M`` with ``M = 2^64``.
* Adding ciphertexts adds plaintexts (mod M).
* For a contiguous range ``[i, j)`` the inner keys telescope away, so
  decryption of ``sum(c_i .. c_{j-1})`` needs only ``k_i`` and ``k_j``
  ("key cancelling", §4.2.2) — this is also what enables resolution-based
  access control via outer-key sharing (§4.4.1).

Keys come from the GGM key-derivation tree (:mod:`repro.crypto.keytree`);
any object exposing ``leaf(index) -> bytes`` works as a keystream, so both
the data owner's full tree and a consumer's token-derived partial keystream
plug in directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Protocol, Sequence, Tuple

from repro.crypto.prf import kdf
from repro.exceptions import DecryptionError, KeyDerivationError

#: Plaintext/ciphertext ring modulus.  The paper sets M = 2^64 so that any
#: 64-bit integer can be encrypted without leaking its magnitude.
MODULUS = 1 << 64
_MASK = MODULUS - 1


class Keystream(Protocol):
    """Anything that can produce the i-th 16-byte keystream key.

    Implementations may additionally expose ``leaf_range(start, end)``
    returning the keys of a half-open interval in one batch; the HEAC batch
    paths use it when present and fall back to per-leaf derivation otherwise.
    """

    def leaf(self, leaf_index: int) -> bytes:  # pragma: no cover - protocol
        ...


def _fetch_leaves(keystream: Keystream, indices: Sequence[int]) -> Dict[int, bytes]:
    """Fetch keystream keys for sorted unique ``indices``, batching where possible.

    Contiguous index runs go through the keystream's ``leaf_range`` when it
    has one (amortized O(1) PRG calls per key); isolated indices and
    keystreams without batch support use ``leaf``.  Either way each index is
    derived exactly once.
    """
    leaf_range = getattr(keystream, "leaf_range", None)
    leaves: Dict[int, bytes] = {}
    if leaf_range is None:
        for index in indices:
            leaves[index] = keystream.leaf(index)
        return leaves
    run_start = 0
    while run_start < len(indices):
        run_end = run_start + 1
        while run_end < len(indices) and indices[run_end] == indices[run_end - 1] + 1:
            run_end += 1
        if run_end - run_start > 1:
            first = indices[run_start]
            for offset, key in enumerate(leaf_range(first, indices[run_end - 1] + 1)):
                leaves[first + offset] = key
        else:
            leaves[indices[run_start]] = keystream.leaf(indices[run_start])
        run_start = run_end
    return leaves


@dataclass(frozen=True)
class HEACCiphertext:
    """A HEAC ciphertext tagged with the chunk-window interval it covers.

    ``window_start`` / ``window_end`` identify the half-open keystream
    interval ``[window_start, window_end)`` the ciphertext aggregates over.
    A freshly encrypted per-chunk digest value has ``window_end ==
    window_start + 1``.  Homomorphic addition of adjacent ciphertexts widens
    the interval; the interval is exactly what determines which two outer
    keys decrypt the aggregate.
    """

    value: int
    window_start: int
    window_end: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < MODULUS:
            raise ValueError("HEAC ciphertext value outside the 64-bit ring")
        if self.window_end <= self.window_start:
            raise ValueError("HEAC ciphertext must cover a non-empty window interval")

    @property
    def num_windows(self) -> int:
        return self.window_end - self.window_start

    def __add__(self, other: "HEACCiphertext") -> "HEACCiphertext":
        """Homomorphic addition of ciphertexts over adjacent window intervals."""
        if not isinstance(other, HEACCiphertext):
            return NotImplemented
        if self.window_end == other.window_start:
            first, second = self, other
        elif other.window_end == self.window_start:
            first, second = other, self
        else:
            raise ValueError(
                "HEAC ciphertexts can only be combined over adjacent window intervals; "
                f"got [{self.window_start},{self.window_end}) and "
                f"[{other.window_start},{other.window_end})"
            )
        return HEACCiphertext(
            value=(first.value + second.value) & _MASK,
            window_start=first.window_start,
            window_end=second.window_end,
        )

    def add_scalar(self, plaintext_delta: int) -> "HEACCiphertext":
        """Homomorphically add a known plaintext constant."""
        return HEACCiphertext(
            value=(self.value + plaintext_delta) & _MASK,
            window_start=self.window_start,
            window_end=self.window_end,
        )


def payload_key_from_leaf(leaf: bytes, encoded_key: int, length: int = 16) -> bytes:
    """The AEAD key for a chunk payload, from its window's keystream key.

    The paper uses ``H(k_i - k_{i+1})``; we use a domain-separated PRF of the
    encoded key so payload keys are independent of digest pads.  Single
    definition shared by the scalar and batch paths — a drifted copy would
    write chunks the other path cannot decrypt.
    """
    encoded = encoded_key.to_bytes(8, "big")
    return kdf(leaf, "chunk-payload:" + encoded.hex(), length)


def component_key_from_leaf(leaf: bytes, component: int) -> int:
    """The 64-bit additive key of one digest component, from a keystream key.

    Component 0 folds the keystream key directly; higher components first
    derive an independent key via a domain-separated PRF so each component of
    a digest vector gets its own pad stream.  This is the single definition
    all scalar and batch paths share — batch/scalar bit-identity depends on
    there being exactly one.
    """
    if component == 0:
        return key_to_int(leaf)
    return key_to_int(kdf(leaf, f"digest-component:{component}"))


def key_to_int(key: bytes) -> int:
    """Length-matching hash: fold a 128-bit key into the 64-bit ring (§A.1.5).

    The paper folds the PRF output by XOR-ing fixed-size substrings; the
    result stays uniform over ``[0, 2^64)``.
    """
    if len(key) < 16:
        raise ValueError("keystream keys must be at least 16 bytes")
    high = int.from_bytes(key[:8], "big")
    low = int.from_bytes(key[8:16], "big")
    return (high ^ low) & _MASK


class HEACCipher:
    """Encrypt/decrypt per-window digest values with the key-cancelling encoding."""

    def __init__(self, keystream: Keystream) -> None:
        self._keystream = keystream

    # -- key material -------------------------------------------------------

    def window_key(self, window_index: int) -> int:
        """The 64-bit additive key ``k_i`` for window ``i``."""
        return key_to_int(self._keystream.leaf(window_index))

    def encoded_key(self, window_index: int) -> int:
        """The encoded one-time pad ``k_i - k_{i+1} mod M``."""
        return (self.window_key(window_index) - self.window_key(window_index + 1)) & _MASK

    def chunk_payload_key(self, window_index: int, length: int = 16) -> bytes:
        """Derive the AEAD key for the raw chunk payload of window ``i``."""
        return payload_key_from_leaf(
            self._keystream.leaf(window_index), self.encoded_key(window_index), length
        )

    # -- encryption / decryption ---------------------------------------------

    def encrypt(self, plaintext: int, window_index: int) -> HEACCiphertext:
        """Encrypt the digest value of chunk window ``window_index``."""
        value = (plaintext + self.encoded_key(window_index)) & _MASK
        return HEACCiphertext(value=value, window_start=window_index, window_end=window_index + 1)

    def encrypt_vector(self, plaintexts: Sequence[int], window_index: int) -> List[HEACCiphertext]:
        """Encrypt a digest vector; each component gets an independent pad.

        Component ``j`` is padded with keys derived for the sub-position
        ``window_index`` of a component-specific keystream slice, realised by
        mixing the component index into the keystream key via the PRF.  This
        keeps one tree per stream while never reusing a pad.
        """
        return [
            HEACCiphertext(
                value=(plaintext + self._component_pad(window_index, component)) & _MASK,
                window_start=window_index,
                window_end=window_index + 1,
            )
            for component, plaintext in enumerate(plaintexts)
        ]

    def decrypt(self, ciphertext: HEACCiphertext) -> int:
        """Decrypt a (possibly range-aggregated) ciphertext.

        Only the two outer keys ``k_start`` and ``k_end`` are needed; a
        consumer whose keystream cannot derive them gets a
        :class:`DecryptionError` — that failure *is* the access-control
        enforcement.
        """
        try:
            outer_start = self.window_key(ciphertext.window_start)
            outer_end = self.window_key(ciphertext.window_end)
        except KeyDerivationError as exc:
            raise DecryptionError(
                "missing outer keys for windows "
                f"[{ciphertext.window_start}, {ciphertext.window_end})"
            ) from exc
        return (ciphertext.value - outer_start + outer_end) & _MASK

    def decrypt_vector(
        self, ciphertexts: Sequence[HEACCiphertext], component_offset: int = 0
    ) -> List[int]:
        """Decrypt a vector of per-component range aggregates."""
        plaintexts = []
        for component, ciphertext in enumerate(ciphertexts, start=component_offset):
            pad = (
                self._component_outer_pad(ciphertext.window_start, component)
                - self._component_outer_pad(ciphertext.window_end, component)
            ) & _MASK
            plaintexts.append((ciphertext.value - pad) & _MASK)
        return plaintexts

    # -- batch paths ---------------------------------------------------------

    def window_batch(self, window_start: int, window_end: int) -> "HEACWindowBatch":
        """Precompute key material for the consecutive windows ``[start, end)``.

        Encrypting ``n`` consecutive windows needs the ``n + 1`` boundary
        keys ``k_start .. k_end``; the batch derives them once (through the
        keystream's ``leaf_range`` when available) and memoises per-component
        derived keys, so adjacent windows share their boundary key material
        instead of re-deriving it.
        """
        return HEACWindowBatch(self._keystream, window_start, window_end)

    def encrypt_windows(
        self, plaintext_vectors: Sequence[Sequence[int]], window_start: int
    ) -> List[List[HEACCiphertext]]:
        """Encrypt digest vectors for consecutive windows starting at ``window_start``.

        Bit-identical to calling :meth:`encrypt_vector` per window, but each
        boundary key (and each per-component derived key) is computed once
        for the whole batch instead of twice per adjacent window pair.
        """
        batch = self.window_batch(window_start, window_start + len(plaintext_vectors))
        return [
            batch.encrypt_vector(plaintexts, window_start + offset)
            for offset, plaintexts in enumerate(plaintext_vectors)
        ]

    def decrypt_ranges(
        self,
        ciphertext_vectors: Sequence[Sequence[HEACCiphertext]],
        component_offset: int = 0,
    ) -> List[List[int]]:
        """Decrypt many range-aggregate vectors, deriving shared keys once.

        Dashboard-style series share every inner bucket boundary between two
        adjacent aggregates (and all components of one aggregate share its two
        boundary keys); the scalar path re-derives each of those from scratch.
        Here every distinct boundary window is derived exactly once —
        contiguous boundaries (granularity-1 series) additionally go through
        the keystream's batch derivation.  Results are bit-identical to
        :meth:`decrypt_vector` per vector.
        """
        boundaries = sorted(
            {c.window_start for vector in ciphertext_vectors for c in vector}
            | {c.window_end for vector in ciphertext_vectors for c in vector}
        )
        leaves = _fetch_leaves(self._keystream, boundaries)
        component_keys: Dict[Tuple[int, int], int] = {}

        def component_key(window_index: int, component: int) -> int:
            memo_key = (window_index, component)
            cached = component_keys.get(memo_key)
            if cached is None:
                cached = component_keys[memo_key] = component_key_from_leaf(
                    leaves[window_index], component
                )
            return cached

        plaintext_vectors: List[List[int]] = []
        for vector in ciphertext_vectors:
            plaintexts = []
            for component, ciphertext in enumerate(vector, start=component_offset):
                pad = (
                    component_key(ciphertext.window_start, component)
                    - component_key(ciphertext.window_end, component)
                ) & _MASK
                plaintexts.append((ciphertext.value - pad) & _MASK)
            plaintext_vectors.append(plaintexts)
        return plaintext_vectors

    def outer_pad(self, window_start: int, window_end: int, component: int = 0) -> int:
        """The additive pad covering ``[window_start, window_end)`` for one component.

        Subtracting this pad from a range-aggregated ciphertext value yields
        the plaintext aggregate; it is what remains after all inner keys
        cancel.  Exposed for multi-stream decryption, where pads from several
        streams are removed from one combined value.
        """
        return (
            self._component_key(window_start, component)
            - self._component_key(window_end, component)
        ) & _MASK

    def outer_pads(self, window_start: int, window_end: int, num_components: int) -> List[int]:
        """All component pads covering ``[window_start, window_end)`` in one pass.

        The scalar path (:meth:`outer_pad` per component) re-derives both
        boundary keystream keys for every component — ``2·num_components``
        keystream walks.  Here the two boundary leaves are fetched once
        (through the keystream's ``leaf_range`` when the boundaries are
        adjacent) and every component key is derived from the cached leaf,
        so an inter-stream dashboard pulls each involved stream's outer pads
        with exactly one keystream pass per stream.  Bit-identical to the
        scalar path.
        """
        leaves = _fetch_leaves(self._keystream, sorted({window_start, window_end}))
        return [
            (
                component_key_from_leaf(leaves[window_start], component)
                - component_key_from_leaf(leaves[window_end], component)
            )
            & _MASK
            for component in range(num_components)
        ]

    def decrypt_signed(self, ciphertext: HEACCiphertext) -> int:
        """Decrypt and reinterpret the 64-bit result as a signed integer."""
        value = self.decrypt(ciphertext)
        return value - MODULUS if value >= MODULUS // 2 else value

    # -- component pads ------------------------------------------------------

    def _component_key(self, window_index: int, component: int) -> int:
        return component_key_from_leaf(self._keystream.leaf(window_index), component)

    def _component_outer_pad(self, window_index: int, component: int) -> int:
        return self._component_key(window_index, component)

    def _component_pad(self, window_index: int, component: int) -> int:
        return (
            self._component_key(window_index, component)
            - self._component_key(window_index + 1, component)
        ) & _MASK


class HEACWindowBatch:
    """Precomputed HEAC key material for consecutive windows ``[start, end)``.

    Built by :meth:`HEACCipher.window_batch`.  Holds the ``n + 1`` boundary
    keystream keys for ``n`` windows (derived in one batch) and memoises the
    per-component derived keys, so encrypting window ``i`` and window
    ``i + 1`` shares their common boundary instead of deriving it twice —
    the scalar path derives every boundary key ``2·(components)`` times.
    All outputs are bit-identical to the scalar :class:`HEACCipher` methods.
    """

    def __init__(self, keystream: Keystream, window_start: int, window_end: int) -> None:
        if window_end < window_start:
            raise ValueError("window batch interval must not be reversed")
        self._start = window_start
        self._end = window_end
        leaves = _fetch_leaves(keystream, range(window_start, window_end + 1))
        self._leaves = [leaves[i] for i in range(window_start, window_end + 1)]
        self._window_keys = [key_to_int(leaf) for leaf in self._leaves]
        self._component_keys: Dict[Tuple[int, int], int] = {}

    @property
    def window_start(self) -> int:
        return self._start

    @property
    def window_end(self) -> int:
        return self._end

    def leaf(self, window_index: int) -> bytes:
        """The keystream key for a boundary in ``[window_start, window_end]``."""
        if not self._start <= window_index <= self._end:
            raise KeyDerivationError(
                f"window {window_index} outside batch [{self._start}, {self._end}]"
            )
        return self._leaves[window_index - self._start]

    def window_key(self, window_index: int) -> int:
        if not self._start <= window_index <= self._end:
            raise KeyDerivationError(
                f"window {window_index} outside batch [{self._start}, {self._end}]"
            )
        return self._window_keys[window_index - self._start]

    def encoded_key(self, window_index: int) -> int:
        """The encoded one-time pad ``k_i - k_{i+1} mod M``."""
        return (self.window_key(window_index) - self.window_key(window_index + 1)) & _MASK

    def chunk_payload_key(self, window_index: int, length: int = 16) -> bytes:
        """Same derivation as :meth:`HEACCipher.chunk_payload_key`, from cached keys."""
        return payload_key_from_leaf(
            self.leaf(window_index), self.encoded_key(window_index), length
        )

    def _component_key(self, window_index: int, component: int) -> int:
        if component == 0:
            return self.window_key(window_index)  # precomputed for the whole batch
        memo_key = (window_index, component)
        cached = self._component_keys.get(memo_key)
        if cached is None:
            cached = self._component_keys[memo_key] = component_key_from_leaf(
                self.leaf(window_index), component
            )
        return cached

    def encrypt_vector(self, plaintexts: Sequence[int], window_index: int) -> List[HEACCiphertext]:
        """Encrypt one window's digest vector from the batch's key material."""
        return [
            HEACCiphertext(
                value=(
                    plaintext
                    + (
                        (
                            self._component_key(window_index, component)
                            - self._component_key(window_index + 1, component)
                        )
                        & _MASK
                    )
                )
                & _MASK,
                window_start=window_index,
                window_end=window_index + 1,
            )
            for component, plaintext in enumerate(plaintexts)
        ]


def aggregate(ciphertexts: Iterable[HEACCiphertext]) -> HEACCiphertext:
    """Homomorphically sum ciphertexts covering a contiguous window range.

    The inputs may arrive in any order; they are sorted by window interval
    and must tile a contiguous range with no gaps or overlaps.
    """
    ordered = sorted(ciphertexts, key=lambda c: c.window_start)
    if not ordered:
        raise ValueError("cannot aggregate an empty ciphertext sequence")
    result = ordered[0]
    for ciphertext in ordered[1:]:
        result = result + ciphertext
    return result


def aggregate_componentwise(
    vectors: Iterable[Sequence[HEACCiphertext]],
) -> List[HEACCiphertext]:
    """Aggregate digest vectors component by component."""
    materialised = [list(vector) for vector in vectors]
    if not materialised:
        raise ValueError("cannot aggregate an empty vector sequence")
    width = len(materialised[0])
    if any(len(vector) != width for vector in materialised):
        raise ValueError("all digest vectors must have the same number of components")
    return [aggregate(vector[i] for vector in materialised) for i in range(width)]
