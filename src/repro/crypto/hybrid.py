"""Hybrid (ECIES-style) public-key encryption for access tokens.

TimeCrypt stores access tokens on the untrusted server, encrypted under each
principal's public key ("hybrid encryption", §3.2).  We realise this with an
ECIES construction over the P-256 group from :mod:`repro.crypto.ecc`:

* an ephemeral keypair is generated per message,
* the shared secret ``ephemeral_priv · recipient_pub`` is hashed into an AEAD
  key,
* the payload is sealed with AES-GCM (or the pure-Python fallback).

The identity provider mapping principal identities to public keys (Keybase in
the paper) is modelled in :mod:`repro.access.principal`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

from repro.crypto import ecc
from repro.crypto.gcm import aead_decrypt, aead_encrypt
from repro.exceptions import DecryptionError


@dataclass(frozen=True)
class HybridCiphertext:
    """An ECIES envelope: ephemeral public point plus sealed payload."""

    ephemeral_public: bytes
    sealed: bytes

    def encode(self) -> bytes:
        return (
            len(self.ephemeral_public).to_bytes(2, "big")
            + self.ephemeral_public
            + self.sealed
        )

    @staticmethod
    def decode(blob: bytes) -> "HybridCiphertext":
        if len(blob) < 2:
            raise DecryptionError("hybrid ciphertext too short")
        point_len = int.from_bytes(blob[:2], "big")
        if len(blob) < 2 + point_len:
            raise DecryptionError("hybrid ciphertext truncated")
        return HybridCiphertext(
            ephemeral_public=blob[2 : 2 + point_len], sealed=blob[2 + point_len :]
        )


def _derive_aead_key(shared_point: ecc.Point, ephemeral_public: bytes) -> bytes:
    material = shared_point.encode() + ephemeral_public
    return hashlib.sha256(b"timecrypt-ecies" + material).digest()[:16]


def generate_keypair() -> Tuple[int, bytes]:
    """A recipient keypair ``(private_scalar, encoded_public_point)``."""
    private, public = ecc.generate_keypair()
    return private, public.encode()


def encrypt(recipient_public: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    """Seal ``plaintext`` for the holder of ``recipient_public``; returns an encoded envelope."""
    recipient_point = ecc.Point.decode(recipient_public)
    ephemeral_private, ephemeral_point = ecc.generate_keypair()
    ephemeral_public = ephemeral_point.encode()
    shared = ecc.scalar_mult(ephemeral_private, recipient_point)
    key = _derive_aead_key(shared, ephemeral_public)
    sealed = aead_encrypt(key, plaintext, aad)
    return HybridCiphertext(ephemeral_public=ephemeral_public, sealed=sealed).encode()


def decrypt(recipient_private: int, blob: bytes, aad: bytes = b"") -> bytes:
    """Open an envelope produced by :func:`encrypt`."""
    envelope = HybridCiphertext.decode(blob)
    ephemeral_point = ecc.Point.decode(envelope.ephemeral_public)
    shared = ecc.scalar_mult(recipient_private, ephemeral_point)
    key = _derive_aead_key(shared, envelope.ephemeral_public)
    return aead_decrypt(key, envelope.sealed, aad)
