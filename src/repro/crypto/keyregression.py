"""Single and dual key regression (paper §4.4.2 and §A.2).

Key regression distributes *past* keys efficiently: an entity holding state
``s_i`` can derive every key ``k_j`` with ``j <= i`` but nothing newer.  Dual
key regression combines two opposing hash chains so a share can be bounded on
*both* ends: holding ``(s1_i, s2_j)`` with ``j <= i`` yields exactly the keys
``k_j .. k_i``.

TimeCrypt uses dual key regression for the per-resolution keystreams that
wrap the outer keys of HEAC (§4.4): one dual-key-regression instance per
resolution level, with key envelopes stored server-side.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

from repro.crypto.hashchain import HashChain, STATE_BYTES, state_key, walk
from repro.crypto.prf import kdf
from repro.exceptions import KeyDerivationError


class KeyRegression:
    """Single-chain key regression: share state ``s_i`` to grant keys ``k_0..k_i``."""

    def __init__(self, seed: Optional[bytes] = None, length: int = 1 << 16) -> None:
        self._chain = HashChain(seed or os.urandom(STATE_BYTES), length)

    @property
    def length(self) -> int:
        return self._chain.length

    def key(self, index: int) -> bytes:
        return self._chain.key(index)

    def share_state(self, index: int) -> bytes:
        """The state to hand to a principal to grant keys ``0..index``."""
        return self._chain.state(index)

    @staticmethod
    def derive_from_state(state: bytes, state_index: int, key_index: int) -> bytes:
        """Principal-side derivation of ``k_key_index`` from shared ``s_state_index``."""
        if key_index > state_index:
            raise KeyDerivationError(
                f"state {state_index} cannot derive the newer key {key_index}"
            )
        return state_key(walk(state, state_index - key_index))


@dataclass(frozen=True)
class DualKeyRegressionToken:
    """The pair of states shared with a principal, bounding keys to ``[lower, upper]``."""

    lower: int
    upper: int
    primary_state: bytes
    secondary_state: bytes
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.lower <= self.upper < self.length:
            raise ValueError(
                f"invalid dual-key-regression bounds [{self.lower}, {self.upper}] "
                f"for chain length {self.length}"
            )


class DualKeyRegression:
    """Dual key regression: bounded-interval key sharing.

    The primary chain is consumed from high indices to low (like single key
    regression); the secondary chain runs in the opposite direction.  The key
    at position ``i`` is ``KDF(s1_i XOR s2_i)``.  Sharing ``(s1_u, s2_l)``
    lets the recipient compute primary states ``<= u`` and secondary states
    ``>= l``, hence exactly the keys ``l .. u``.
    """

    def __init__(
        self,
        primary_seed: Optional[bytes] = None,
        secondary_seed: Optional[bytes] = None,
        length: int = 1 << 16,
    ) -> None:
        if length <= 0:
            raise ValueError("key regression length must be positive")
        self._length = length
        # Primary chain: state index i is derivable from any state index >= i.
        self._primary = HashChain(primary_seed or os.urandom(STATE_BYTES), length)
        # Secondary chain: generated in the reverse direction.  We reuse the
        # HashChain machinery by storing it reversed: secondary state at
        # logical position i corresponds to chain index (length - 1 - i), so
        # holding the state at logical position l lets one derive positions >= l.
        self._secondary = HashChain(secondary_seed or os.urandom(STATE_BYTES), length)

    @property
    def length(self) -> int:
        return self._length

    # -- owner-side API -----------------------------------------------------

    def _secondary_state(self, position: int) -> bytes:
        return self._secondary.state(self._length - 1 - position)

    def key(self, position: int) -> bytes:
        """The ``position``-th key of the regression keystream."""
        if not 0 <= position < self._length:
            raise KeyDerivationError(f"position {position} out of range [0, {self._length})")
        mixed = bytes(a ^ b for a, b in zip(self._primary.state(position), self._secondary_state(position)))
        return kdf(mixed, "dual-key-regression")

    def keys(self, start: int, end: int) -> List[bytes]:
        return [self.key(position) for position in range(start, end)]

    def share(self, lower: int, upper: int) -> DualKeyRegressionToken:
        """Produce the token granting exactly the keys ``lower .. upper`` (inclusive)."""
        if not 0 <= lower <= upper < self._length:
            raise KeyDerivationError(
                f"cannot share interval [{lower}, {upper}] from a chain of length {self._length}"
            )
        return DualKeyRegressionToken(
            lower=lower,
            upper=upper,
            primary_state=self._primary.state(upper),
            secondary_state=self._secondary_state(lower),
            length=self._length,
        )

    # -- principal-side API ---------------------------------------------------

    @staticmethod
    def derive_from_token(token: DualKeyRegressionToken, position: int) -> bytes:
        """Derive the key at ``position`` from a shared token.

        Raises :class:`KeyDerivationError` when ``position`` falls outside the
        token's ``[lower, upper]`` interval — by construction the required
        chain states cannot be computed in that case.
        """
        if not token.lower <= position <= token.upper:
            raise KeyDerivationError(
                f"token grants keys [{token.lower}, {token.upper}]; "
                f"position {position} is outside"
            )
        primary = walk(token.primary_state, token.upper - position)
        secondary = walk(token.secondary_state, position - token.lower)
        mixed = bytes(a ^ b for a, b in zip(primary, secondary))
        return kdf(mixed, "dual-key-regression")
