"""The GGM key-derivation tree with access tokens (paper §4.2.3, Fig. 2, §A.1.3).

The keystream used by HEAC is the sequence of leaf labels of a balanced
binary tree.  The root is a random seed; the two children of a node are
``G0(node)`` and ``G1(node)`` for a length-doubling PRG ``G``.  Leaf ``i``
(reading the bits of ``i`` from the most significant to the least significant
tree level) is the i-th key of the keystream.

Sharing works by handing out *inner nodes* ("access tokens"): a principal
holding the token for an inner node can derive every leaf in its subtree but
— by the one-wayness of the PRG — nothing outside it.  Granting access to an
arbitrary leaf interval ``[lo, hi]`` therefore amounts to computing the
minimal set of maximal subtrees covering the interval (at most ``2·h`` tokens
for a tree of height ``h``).

Batch derivation
----------------

Deriving each leaf independently costs one root-to-leaf walk, i.e. O(h) PRG
calls per key.  ``leaf_range(start, end)`` instead computes the minimal
aligned-subtree cover of ``[start, end)`` (at most ``2·h`` cover nodes) and
expands each covered subtree with an iterative level-order traversal: the
current frontier of node labels is fed to ``PRG.expand_many`` and replaced by
its children until the leaf level is reached.  A full subtree with ``n``
leaves has ``n - 1`` inner nodes, so the whole range costs

    ``n - c + Σ depth(cover_i)  ≈  n + O(h²)``

PRG calls for ``n = end - start`` keys and ``c`` cover nodes — amortized O(1)
calls per key instead of O(h), a ~10–15× call-count reduction at the default
height of 30, on top of the per-call savings of the batch PRG API.  The
result is bit-identical to per-leaf derivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.crypto.prf import DEFAULT_PRG, PRG, SEED_BYTES, get_prg
from repro.exceptions import KeyDerivationError


def _aligned_cover(start: int, end: int, height: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(depth, index)`` of the canonical minimal subtree cover of ``[start, end)``.

    Maximal aligned subtrees, left to right; at most ``2·height`` entries.
    ``depth`` is measured from the root of a tree of the given ``height``.
    """
    num_keys = 1 << height
    position = start
    while position < end:
        # Largest aligned subtree starting at `position` that fits in the range.
        span = position & -position if position else num_keys
        while span > end - position:
            span >>= 1
        depth = height - span.bit_length() + 1
        yield depth, position >> (height - depth)
        position += span


def _expand_subtree(prg: PRG, value: bytes, levels: int) -> List[bytes]:
    """All ``2**levels`` leaves under ``value``, by iterative level-order expansion."""
    frontier = [value]
    for _ in range(levels):
        pairs = prg.expand_many(frontier)
        frontier = [child for pair in pairs for child in pair]
    return frontier


@dataclass(frozen=True)
class TreeToken:
    """An access token: one inner (or leaf) node of the key-derivation tree.

    Attributes
    ----------
    depth:
        Depth of the node (0 = root, ``height`` = leaf level).
    index:
        Index of the node within its level (0-based, left to right).
    value:
        The node's 16-byte pseudorandom label.
    height:
        Total height of the tree the token belongs to.
    """

    depth: int
    index: int
    value: bytes
    height: int

    @property
    def leaf_span(self) -> Tuple[int, int]:
        """The inclusive leaf-index interval ``[lo, hi]`` covered by this token."""
        width = 1 << (self.height - self.depth)
        lo = self.index * width
        return lo, lo + width - 1

    def covers(self, leaf_index: int) -> bool:
        lo, hi = self.leaf_span
        return lo <= leaf_index <= hi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.leaf_span
        return f"TreeToken(depth={self.depth}, index={self.index}, leaves=[{lo},{hi}])"


class KeyDerivationTree:
    """The key-derivation tree owned by a data owner.

    Parameters
    ----------
    seed:
        The 16-byte root secret.
    height:
        Tree height ``h``; the keystream has ``2**h`` keys.  The paper uses
        trees large enough to be "virtually infinite" (2^30 keys and beyond).
    prg:
        Name of the PRG construction (see :mod:`repro.crypto.prf`).
    cache_levels:
        Number of levels below the root whose nodes are memoised.  Caching the
        top of the tree turns repeated sequential derivations into O(1) work
        for the hot path while bounding memory.
    """

    def __init__(
        self,
        seed: bytes,
        height: int = 30,
        prg: str = DEFAULT_PRG,
        cache_levels: int = 16,
    ) -> None:
        if len(seed) != SEED_BYTES:
            raise ValueError(f"seed must be {SEED_BYTES} bytes")
        if not 1 <= height <= 62:
            raise ValueError("tree height must be between 1 and 62")
        self._seed = seed
        self._height = height
        self._prg_name = prg
        self._prg: PRG = get_prg(prg)
        self._cache_levels = max(0, min(cache_levels, height))
        self._node_cache: Dict[Tuple[int, int], bytes] = {(0, 0): seed}

    # -- properties --------------------------------------------------------

    @property
    def height(self) -> int:
        return self._height

    @property
    def num_keys(self) -> int:
        return 1 << self._height

    @property
    def prg_name(self) -> str:
        return self._prg_name

    # -- node derivation ---------------------------------------------------

    def _node(self, depth: int, index: int) -> bytes:
        """Label of the node at ``(depth, index)``, derived from the root."""
        if not 0 <= depth <= self._height:
            raise KeyDerivationError(f"depth {depth} outside tree of height {self._height}")
        if not 0 <= index < (1 << depth):
            raise KeyDerivationError(f"node index {index} out of range at depth {depth}")
        cached = self._node_cache.get((depth, index))
        if cached is not None:
            return cached
        # Walk down from the deepest cached ancestor.
        value = self._seed
        start_depth = 0
        for ancestor_depth in range(min(depth, self._cache_levels), 0, -1):
            ancestor_index = index >> (depth - ancestor_depth)
            hit = self._node_cache.get((ancestor_depth, ancestor_index))
            if hit is not None:
                value = hit
                start_depth = ancestor_depth
                break
        for level in range(start_depth + 1, depth + 1):
            bit = (index >> (depth - level)) & 1
            value = self._prg.child(value, bit)
            if level <= self._cache_levels:
                self._node_cache[(level, index >> (depth - level))] = value
        return value

    def leaf(self, leaf_index: int) -> bytes:
        """The ``leaf_index``-th key of the keystream."""
        if not 0 <= leaf_index < self.num_keys:
            raise KeyDerivationError(
                f"leaf index {leaf_index} outside keystream of {self.num_keys} keys"
            )
        return self._node(self._height, leaf_index)

    def keys(self, start: int, end: int) -> Iterator[bytes]:
        """Yield keystream keys ``start .. end-1`` (half-open interval)."""
        if end < start:
            raise KeyDerivationError("invalid key range")
        for leaf_index in range(start, end):
            yield self.leaf(leaf_index)

    def leaf_range(self, start: int, end: int) -> List[bytes]:
        """Keystream keys ``start .. end-1`` via minimal-subtree batch expansion.

        Bit-identical to ``[self.leaf(i) for i in range(start, end)]`` but
        amortized O(1) PRG calls per key (see the module docstring).  Batch
        results bypass the node memo cache: the caller gets the whole range at
        once, so per-node memoisation would only cost memory.
        """
        if not 0 <= start <= end <= self.num_keys:
            raise KeyDerivationError(
                f"key range [{start}, {end}) outside keystream of {self.num_keys} keys"
            )
        keys: List[bytes] = []
        for depth, index in _aligned_cover(start, end, self._height):
            keys.extend(
                _expand_subtree(self._prg, self._node(depth, index), self._height - depth)
            )
        return keys

    # -- token computation ---------------------------------------------------

    def token_for(self, depth: int, index: int) -> TreeToken:
        """Construct the access token for an explicit tree node."""
        return TreeToken(depth=depth, index=index, value=self._node(depth, index), height=self._height)

    def tokens_for_range(self, start: int, end: int) -> List[TreeToken]:
        """Minimal set of tokens covering leaves ``[start, end)``.

        The cover is canonical: maximal aligned subtrees from left to right,
        at most ``2·height`` tokens for any range.
        """
        if not 0 <= start <= end <= self.num_keys:
            raise KeyDerivationError(
                f"key range [{start}, {end}) outside keystream of {self.num_keys} keys"
            )
        return [
            self.token_for(depth, index)
            for depth, index in _aligned_cover(start, end, self._height)
        ]

    def tokens_for_ranges(self, ranges: Sequence[Tuple[int, int]]) -> List[TreeToken]:
        """Token covers for many ranges sharing one traversal (cohort grants).

        Per-range output is bit-identical to :meth:`tokens_for_range`, but a
        cohort of overlapping ranges (a burst of grants over the same recent
        window) derives each cover node once and reuses every path node
        walked for an earlier range in the batch, the way :meth:`leaf_range`
        amortizes the per-leaf walk — instead of one independent
        root-to-node traversal per grant.  Returns one token list per input
        range, in input order.
        """
        covers: List[List[Tuple[int, int]]] = []
        for start, end in ranges:
            if not 0 <= start <= end <= self.num_keys:
                raise KeyDerivationError(
                    f"key range [{start}, {end}) outside keystream of {self.num_keys} keys"
                )
            covers.append(list(_aligned_cover(start, end, self._height)))
        # Derive the union of cover nodes shallow-to-deep through a batch-local
        # memo: every node on a walked path is remembered, so a later range
        # restarts from the deepest shared ancestor already derived.
        memo: Dict[Tuple[int, int], bytes] = {}
        values: Dict[Tuple[int, int], bytes] = {}
        for depth, index in sorted({coord for cover in covers for coord in cover}):
            values[(depth, index)] = self._node_via(depth, index, memo)
        return [
            [
                TreeToken(depth=depth, index=index, value=values[(depth, index)], height=self._height)
                for depth, index in cover
            ]
            for cover in covers
        ]

    def _node_via(self, depth: int, index: int, memo: Dict[Tuple[int, int], bytes]) -> bytes:
        """:meth:`_node` variant memoising every node on the walked path."""
        cached = memo.get((depth, index)) or self._node_cache.get((depth, index))
        if cached is not None:
            return cached
        value = self._seed
        start_depth = 0
        for ancestor_depth in range(depth - 1, 0, -1):
            ancestor_index = index >> (depth - ancestor_depth)
            hit = memo.get((ancestor_depth, ancestor_index)) or self._node_cache.get(
                (ancestor_depth, ancestor_index)
            )
            if hit is not None:
                value = hit
                start_depth = ancestor_depth
                break
        for level in range(start_depth + 1, depth + 1):
            node_index = index >> (depth - level)
            value = self._prg.child(value, node_index & 1)
            memo[(level, node_index)] = value
            if level <= self._cache_levels:
                self._node_cache[(level, node_index)] = value
        return value

    def root_token(self) -> TreeToken:
        """Token granting the entire keystream (the root seed)."""
        return TreeToken(depth=0, index=0, value=self._seed, height=self._height)


class DerivedKeystream:
    """Keystream view reconstructed from access tokens (the principal's side).

    A data consumer holds tokens covering some leaf ranges and can derive
    exactly those keys.  Lookups outside the covered ranges raise
    :class:`KeyDerivationError` — that is the crypto-enforced access control.
    """

    def __init__(self, tokens: Sequence[TreeToken], prg: str = DEFAULT_PRG) -> None:
        if not tokens:
            raise ValueError("at least one token is required")
        heights = {token.height for token in tokens}
        if len(heights) != 1:
            raise ValueError("all tokens must come from the same tree")
        self._height = heights.pop()
        self._prg = get_prg(prg)
        self._tokens = sorted(tokens, key=lambda t: t.leaf_span)
        self._cache: Dict[int, bytes] = {}

    @property
    def covered_ranges(self) -> List[Tuple[int, int]]:
        """Inclusive leaf intervals this keystream can derive, merged and sorted."""
        merged: List[Tuple[int, int]] = []
        for token in self._tokens:
            lo, hi = token.leaf_span
            if merged and lo <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return merged

    def can_derive(self, leaf_index: int) -> bool:
        return any(token.covers(leaf_index) for token in self._tokens)

    def can_derive_range(self, start: int, end: int) -> bool:
        """True when every leaf in ``[start, end)`` is covered."""
        if end <= start:
            return True
        for lo, hi in self.covered_ranges:
            if lo <= start and end - 1 <= hi:
                return True
        return False

    def leaf(self, leaf_index: int) -> bytes:
        """Derive a keystream key from the held tokens."""
        cached = self._cache.get(leaf_index)
        if cached is not None:
            return cached
        for token in self._tokens:
            if token.covers(leaf_index):
                value = token.value
                lo, _hi = token.leaf_span
                offset = leaf_index - lo
                for level in range(self._height - token.depth - 1, -1, -1):
                    bit = (offset >> level) & 1
                    value = self._prg.child(value, bit)
                if len(self._cache) < 65536:
                    self._cache[leaf_index] = value
                return value
        raise KeyDerivationError(f"no token covers keystream position {leaf_index}")

    def keys(self, start: int, end: int) -> Iterator[bytes]:
        for leaf_index in range(start, end):
            yield self.leaf(leaf_index)

    def leaf_range(self, start: int, end: int) -> List[bytes]:
        """Derive keys ``start .. end-1`` in one batch from the held tokens.

        Bit-identical to per-leaf derivation; raises
        :class:`KeyDerivationError` at the first position no token covers,
        exactly like :meth:`leaf` would.  Within each covering token the
        requested sub-interval is expanded through its minimal aligned-subtree
        cover, so shared prefixes are derived once instead of once per leaf.
        """
        if not 0 <= start <= end:
            raise KeyDerivationError(f"invalid key range [{start}, {end})")
        keys: List[bytes] = []
        position = start
        while position < end:
            token = next((t for t in self._tokens if t.covers(position)), None)
            if token is None:
                raise KeyDerivationError(f"no token covers keystream position {position}")
            lo, hi = token.leaf_span
            sub_end = min(end, hi + 1)
            sub_height = self._height - token.depth
            for depth, index in _aligned_cover(position - lo, sub_end - lo, sub_height):
                value = token.value
                for level in range(depth - 1, -1, -1):
                    value = self._prg.child(value, (index >> level) & 1)
                keys.extend(_expand_subtree(self._prg, value, sub_height - depth))
            position = sub_end
        return keys


def merge_token_sets(*token_sets: Sequence[TreeToken]) -> List[TreeToken]:
    """Combine token sets (e.g. from multiple grants), dropping exact duplicates."""
    seen = set()
    merged: List[TreeToken] = []
    for tokens in token_sets:
        for token in tokens:
            key = (token.depth, token.index, token.height)
            if key not in seen:
                seen.add(key)
                merged.append(token)
    return merged
