"""The GGM key-derivation tree with access tokens (paper §4.2.3, Fig. 2, §A.1.3).

The keystream used by HEAC is the sequence of leaf labels of a balanced
binary tree.  The root is a random seed; the two children of a node are
``G0(node)`` and ``G1(node)`` for a length-doubling PRG ``G``.  Leaf ``i``
(reading the bits of ``i`` from the most significant to the least significant
tree level) is the i-th key of the keystream.

Sharing works by handing out *inner nodes* ("access tokens"): a principal
holding the token for an inner node can derive every leaf in its subtree but
— by the one-wayness of the PRG — nothing outside it.  Granting access to an
arbitrary leaf interval ``[lo, hi]`` therefore amounts to computing the
minimal set of maximal subtrees covering the interval (at most ``2·h`` tokens
for a tree of height ``h``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.crypto.prf import DEFAULT_PRG, PRG, SEED_BYTES, get_prg
from repro.exceptions import KeyDerivationError


@dataclass(frozen=True)
class TreeToken:
    """An access token: one inner (or leaf) node of the key-derivation tree.

    Attributes
    ----------
    depth:
        Depth of the node (0 = root, ``height`` = leaf level).
    index:
        Index of the node within its level (0-based, left to right).
    value:
        The node's 16-byte pseudorandom label.
    height:
        Total height of the tree the token belongs to.
    """

    depth: int
    index: int
    value: bytes
    height: int

    @property
    def leaf_span(self) -> Tuple[int, int]:
        """The inclusive leaf-index interval ``[lo, hi]`` covered by this token."""
        width = 1 << (self.height - self.depth)
        lo = self.index * width
        return lo, lo + width - 1

    def covers(self, leaf_index: int) -> bool:
        lo, hi = self.leaf_span
        return lo <= leaf_index <= hi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.leaf_span
        return f"TreeToken(depth={self.depth}, index={self.index}, leaves=[{lo},{hi}])"


class KeyDerivationTree:
    """The key-derivation tree owned by a data owner.

    Parameters
    ----------
    seed:
        The 16-byte root secret.
    height:
        Tree height ``h``; the keystream has ``2**h`` keys.  The paper uses
        trees large enough to be "virtually infinite" (2^30 keys and beyond).
    prg:
        Name of the PRG construction (see :mod:`repro.crypto.prf`).
    cache_levels:
        Number of levels below the root whose nodes are memoised.  Caching the
        top of the tree turns repeated sequential derivations into O(1) work
        for the hot path while bounding memory.
    """

    def __init__(
        self,
        seed: bytes,
        height: int = 30,
        prg: str = DEFAULT_PRG,
        cache_levels: int = 16,
    ) -> None:
        if len(seed) != SEED_BYTES:
            raise ValueError(f"seed must be {SEED_BYTES} bytes")
        if not 1 <= height <= 62:
            raise ValueError("tree height must be between 1 and 62")
        self._seed = seed
        self._height = height
        self._prg_name = prg
        self._prg: PRG = get_prg(prg)
        self._cache_levels = max(0, min(cache_levels, height))
        self._node_cache: Dict[Tuple[int, int], bytes] = {(0, 0): seed}

    # -- properties --------------------------------------------------------

    @property
    def height(self) -> int:
        return self._height

    @property
    def num_keys(self) -> int:
        return 1 << self._height

    @property
    def prg_name(self) -> str:
        return self._prg_name

    # -- node derivation ---------------------------------------------------

    def _node(self, depth: int, index: int) -> bytes:
        """Label of the node at ``(depth, index)``, derived from the root."""
        if not 0 <= depth <= self._height:
            raise KeyDerivationError(f"depth {depth} outside tree of height {self._height}")
        if not 0 <= index < (1 << depth):
            raise KeyDerivationError(f"node index {index} out of range at depth {depth}")
        cached = self._node_cache.get((depth, index))
        if cached is not None:
            return cached
        # Walk down from the deepest cached ancestor.
        value = self._seed
        start_depth = 0
        for ancestor_depth in range(min(depth, self._cache_levels), 0, -1):
            ancestor_index = index >> (depth - ancestor_depth)
            hit = self._node_cache.get((ancestor_depth, ancestor_index))
            if hit is not None:
                value = hit
                start_depth = ancestor_depth
                break
        for level in range(start_depth + 1, depth + 1):
            bit = (index >> (depth - level)) & 1
            value = self._prg.child(value, bit)
            if level <= self._cache_levels:
                self._node_cache[(level, index >> (depth - level))] = value
        return value

    def leaf(self, leaf_index: int) -> bytes:
        """The ``leaf_index``-th key of the keystream."""
        if not 0 <= leaf_index < self.num_keys:
            raise KeyDerivationError(
                f"leaf index {leaf_index} outside keystream of {self.num_keys} keys"
            )
        return self._node(self._height, leaf_index)

    def keys(self, start: int, end: int) -> Iterator[bytes]:
        """Yield keystream keys ``start .. end-1`` (half-open interval)."""
        if end < start:
            raise KeyDerivationError("invalid key range")
        for leaf_index in range(start, end):
            yield self.leaf(leaf_index)

    # -- token computation ---------------------------------------------------

    def token_for(self, depth: int, index: int) -> TreeToken:
        """Construct the access token for an explicit tree node."""
        return TreeToken(depth=depth, index=index, value=self._node(depth, index), height=self._height)

    def tokens_for_range(self, start: int, end: int) -> List[TreeToken]:
        """Minimal set of tokens covering leaves ``[start, end)``.

        The cover is canonical: maximal aligned subtrees from left to right,
        at most ``2·height`` tokens for any range.
        """
        if not 0 <= start <= end <= self.num_keys:
            raise KeyDerivationError(
                f"key range [{start}, {end}) outside keystream of {self.num_keys} keys"
            )
        tokens: List[TreeToken] = []
        position = start
        while position < end:
            # Largest aligned subtree starting at `position` that fits in the range.
            span = position & -position if position else self.num_keys
            while span > end - position:
                span >>= 1
            depth = self._height - span.bit_length() + 1
            tokens.append(self.token_for(depth, position >> (self._height - depth)))
            position += span
        return tokens

    def root_token(self) -> TreeToken:
        """Token granting the entire keystream (the root seed)."""
        return TreeToken(depth=0, index=0, value=self._seed, height=self._height)


class DerivedKeystream:
    """Keystream view reconstructed from access tokens (the principal's side).

    A data consumer holds tokens covering some leaf ranges and can derive
    exactly those keys.  Lookups outside the covered ranges raise
    :class:`KeyDerivationError` — that is the crypto-enforced access control.
    """

    def __init__(self, tokens: Sequence[TreeToken], prg: str = DEFAULT_PRG) -> None:
        if not tokens:
            raise ValueError("at least one token is required")
        heights = {token.height for token in tokens}
        if len(heights) != 1:
            raise ValueError("all tokens must come from the same tree")
        self._height = heights.pop()
        self._prg = get_prg(prg)
        self._tokens = sorted(tokens, key=lambda t: t.leaf_span)
        self._cache: Dict[int, bytes] = {}

    @property
    def covered_ranges(self) -> List[Tuple[int, int]]:
        """Inclusive leaf intervals this keystream can derive, merged and sorted."""
        merged: List[Tuple[int, int]] = []
        for token in self._tokens:
            lo, hi = token.leaf_span
            if merged and lo <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return merged

    def can_derive(self, leaf_index: int) -> bool:
        return any(token.covers(leaf_index) for token in self._tokens)

    def can_derive_range(self, start: int, end: int) -> bool:
        """True when every leaf in ``[start, end)`` is covered."""
        if end <= start:
            return True
        for lo, hi in self.covered_ranges:
            if lo <= start and end - 1 <= hi:
                return True
        return False

    def leaf(self, leaf_index: int) -> bytes:
        """Derive a keystream key from the held tokens."""
        cached = self._cache.get(leaf_index)
        if cached is not None:
            return cached
        for token in self._tokens:
            if token.covers(leaf_index):
                value = token.value
                lo, _hi = token.leaf_span
                offset = leaf_index - lo
                for level in range(self._height - token.depth - 1, -1, -1):
                    bit = (offset >> level) & 1
                    value = self._prg.child(value, bit)
                if len(self._cache) < 65536:
                    self._cache[leaf_index] = value
                return value
        raise KeyDerivationError(f"no token covers keystream position {leaf_index}")

    def keys(self, start: int, end: int) -> Iterator[bytes]:
        for leaf_index in range(start, end):
            yield self.leaf(leaf_index)


def merge_token_sets(*token_sets: Sequence[TreeToken]) -> List[TreeToken]:
    """Combine token sets (e.g. from multiple grants), dropping exact duplicates."""
    seen = set()
    merged: List[TreeToken] = []
    for tokens in token_sets:
        for token in tokens:
            key = (token.depth, token.index, token.height)
            if key not in seen:
                seen.add(key)
                merged.append(token)
    return merged
