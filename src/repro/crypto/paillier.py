"""Paillier additively homomorphic encryption (the paper's first strawman).

The evaluation (Table 2, Table 3, Figures 5 and 7) compares TimeCrypt against
an encrypted index whose digests are Paillier ciphertexts.  Paillier is a
public-key scheme over Z_{n^2}: encryption of ``m`` is ``g^m · r^n mod n^2``,
and multiplying ciphertexts adds plaintexts.  It is orders of magnitude more
expensive than HEAC in both CPU (modular exponentiation) and space (a 3072-bit
modulus yields 768-byte ciphertexts for 64-bit plaintexts ≈ 96× expansion),
which is exactly the comparison the paper makes.

Implementation notes
--------------------
* Key generation uses probabilistic Miller-Rabin primality testing over
  ``secrets``-sourced candidates; 3072-bit moduli (128-bit security) are the
  paper's setting but key generation at that size takes minutes in pure
  Python, so benchmarks default to smaller moduli and report the size used.
* We use the standard simplification ``g = n + 1`` which makes encryption a
  single exponentiation ``(1 + n·m) · r^n mod n^2``.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from math import gcd
from typing import Tuple

from repro.exceptions import CryptoError, DecryptionError

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]


def _is_probable_prime(candidate: int, rounds: int = 40) -> bool:
    """Miller-Rabin primality test."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(candidate - 3) + 2
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int) -> int:
    """Generate a random probable prime of exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size too small")
    while True:
        candidate = secrets.randbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate):
            return candidate


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public parameters ``(n, n^2)``; ``g`` is implicitly ``n + 1``."""

    n: int
    n_squared: int

    @property
    def key_bits(self) -> int:
        return self.n.bit_length()

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized ciphertext size (the source of the index-size expansion)."""
        return (self.n_squared.bit_length() + 7) // 8

    def encrypt(self, plaintext: int, randomness: int | None = None) -> int:
        """Encrypt ``plaintext`` (reduced mod n)."""
        m = plaintext % self.n
        r = randomness if randomness is not None else self._sample_randomness()
        # (1 + n)^m = 1 + n*m mod n^2 — avoids one exponentiation.
        g_m = (1 + self.n * m) % self.n_squared
        return (g_m * pow(r, self.n, self.n_squared)) % self.n_squared

    def add(self, ciphertext_a: int, ciphertext_b: int) -> int:
        """Homomorphic addition: multiply ciphertexts mod n^2."""
        return (ciphertext_a * ciphertext_b) % self.n_squared

    def add_plain(self, ciphertext: int, plaintext: int) -> int:
        """Homomorphically add a plaintext constant."""
        return (ciphertext * pow(1 + self.n, plaintext % self.n, self.n_squared)) % self.n_squared

    def multiply_plain(self, ciphertext: int, scalar: int) -> int:
        """Homomorphically multiply the plaintext by a constant."""
        return pow(ciphertext, scalar % self.n, self.n_squared)

    def _sample_randomness(self) -> int:
        while True:
            r = secrets.randbelow(self.n - 1) + 1
            if gcd(r, self.n) == 1:
                return r


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private parameters derived from the factorisation of ``n``."""

    public_key: PaillierPublicKey
    lam: int
    mu: int

    def decrypt(self, ciphertext: int) -> int:
        if not 0 <= ciphertext < self.public_key.n_squared:
            raise DecryptionError("Paillier ciphertext out of range")
        n = self.public_key.n
        u = pow(ciphertext, self.lam, self.public_key.n_squared)
        l_value = (u - 1) // n
        return (l_value * self.mu) % n

    def decrypt_signed(self, ciphertext: int) -> int:
        """Decrypt, mapping the upper half of Z_n to negative integers."""
        value = self.decrypt(ciphertext)
        n = self.public_key.n
        return value - n if value > n // 2 else value


def generate_keypair(key_bits: int = 2048) -> Tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier keypair with an RSA-style modulus of ``key_bits`` bits."""
    if key_bits < 64:
        raise CryptoError("Paillier modulus must be at least 64 bits")
    while True:
        p = generate_prime(key_bits // 2)
        q = generate_prime(key_bits - key_bits // 2)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != key_bits:
            continue
        lam = (p - 1) * (q - 1)
        if gcd(n, lam) != 1:
            continue
        break
    public = PaillierPublicKey(n=n, n_squared=n * n)
    # With g = n + 1, mu = lam^{-1} mod n.
    mu = pow(lam, -1, n)
    return public, PaillierPrivateKey(public_key=public, lam=lam, mu=mu)


class PaillierAggregator:
    """Digest-style helper mirroring the HEAC cipher interface for benchmarks."""

    def __init__(self, public_key: PaillierPublicKey, private_key: PaillierPrivateKey | None = None) -> None:
        self._public = public_key
        self._private = private_key

    @property
    def ciphertext_bytes(self) -> int:
        return self._public.ciphertext_bytes

    def encrypt(self, plaintext: int) -> int:
        return self._public.encrypt(plaintext)

    def add(self, ciphertext_a: int, ciphertext_b: int) -> int:
        return self._public.add(ciphertext_a, ciphertext_b)

    def decrypt(self, ciphertext: int) -> int:
        if self._private is None:
            raise DecryptionError("no Paillier private key available")
        return self._private.decrypt(ciphertext)
