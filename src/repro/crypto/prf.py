"""Pseudorandom generators and functions used for key derivation.

TimeCrypt's GGM key-derivation tree (Figure 2) needs a length-doubling PRG
``G(x) = G0(x) || G1(x)``.  The paper evaluates three instantiations (Figure 6):
a software AES, SHA-256, and hardware AES (AES-NI) and picks AES-NI.  We expose
the same menu:

* ``sha256``   — ``G_b(x) = SHA256(b || x)``
* ``blake2``   — ``G_b(x) = BLAKE2b(b || x)`` (fast software hash)
* ``aes``      — ``G_b(x) = AES_x(b)`` using the pure-Python block cipher
* ``aes-ni``   — same construction but backed by the ``cryptography`` package's
  native AES when it is importable (our stand-in for hardware AES)
* ``aes-ni-fk`` — fixed-key AES in Matyas–Meyer–Oseas mode,
  ``G_b(x) = AES_K(x ⊕ c_b) ⊕ (x ⊕ c_b)`` with a public constant key ``K``.
  The paper's construction re-keys AES with every node label, which is ~free
  with a hardware key schedule but costs a fresh OpenSSL EVP context per node
  through Python's ``cryptography`` layer; the fixed-key variant (standard in
  high-throughput GGM/FSS implementations, secure in the random-permutation
  model) reuses one context and lets the batch path encrypt a whole expansion
  frontier in a single native call.  Default when native AES is available.
* ``hmac-sha256`` — an HMAC-based PRF, used where a keyed PRF (rather than a
  PRG) is the natural primitive (e.g. deriving AEAD keys from HEAC keys).

All PRGs operate on λ = 16-byte (128-bit) seeds and produce 16-byte children,
matching the paper's 128-bit security level.
"""

from __future__ import annotations

import hashlib
import hmac
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple, Type

from repro.exceptions import ConfigurationError

SEED_BYTES = 16

try:  # pragma: no cover - depends on environment
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

    _HAVE_FAST_AES = True
except Exception:  # pragma: no cover
    _HAVE_FAST_AES = False


class PRG(ABC):
    """A length-doubling pseudorandom generator over 128-bit seeds."""

    name = "abstract"

    @abstractmethod
    def expand(self, seed: bytes) -> Tuple[bytes, bytes]:
        """Return the two 16-byte children ``(G0(seed), G1(seed))``."""

    def expand_many(self, seeds: Sequence[bytes]) -> List[Tuple[bytes, bytes]]:
        """Expand a batch of seeds; the i-th result is ``expand(seeds[i])``.

        Subclasses override this when there is real per-call setup to
        amortize over the whole batch (cipher contexts, a single native
        encryption call); the hash PRGs have none, so they keep this default.
        The output is bit-identical to calling :meth:`expand` per seed.
        """
        return [self.expand(seed) for seed in seeds]

    def left(self, seed: bytes) -> bytes:
        return self.expand(seed)[0]

    def right(self, seed: bytes) -> bytes:
        return self.expand(seed)[1]

    def child(self, seed: bytes, bit: int) -> bytes:
        """Return ``G_bit(seed)`` for ``bit`` in {0, 1}."""
        if bit not in (0, 1):
            raise ValueError("child bit must be 0 or 1")
        return self.expand(seed)[bit]

    @staticmethod
    def _check_seed(seed: bytes) -> None:
        if len(seed) != SEED_BYTES:
            raise ValueError(f"seed must be {SEED_BYTES} bytes, got {len(seed)}")


class Sha256PRG(PRG):
    """``G_b(x) = SHA256(bytes([b]) || x)`` truncated to 128 bits."""

    name = "sha256"

    def expand(self, seed: bytes) -> Tuple[bytes, bytes]:
        self._check_seed(seed)
        left = hashlib.sha256(b"\x00" + seed).digest()[:SEED_BYTES]
        right = hashlib.sha256(b"\x01" + seed).digest()[:SEED_BYTES]
        return left, right


class Blake2PRG(PRG):
    """``G(x) = BLAKE2b(x)`` producing 32 bytes split into two children."""

    name = "blake2"

    def expand(self, seed: bytes) -> Tuple[bytes, bytes]:
        self._check_seed(seed)
        digest = hashlib.blake2b(seed, digest_size=32, person=b"timecryptPRG0000").digest()
        return digest[:SEED_BYTES], digest[SEED_BYTES:]


class AesPRG(PRG):
    """``G_b(x) = AES_x(block(b))`` with the seed as the AES key.

    Uses the pure-Python AES implementation in :mod:`repro.crypto.aes`, which
    mirrors the paper's "AES (software)" data point in Figure 6.
    """

    name = "aes"

    def __init__(self) -> None:
        from repro.crypto.aes import AES  # local import to avoid cycles

        self._aes_cls = AES
        self._block0 = b"\x00" * 16
        self._block1 = b"\x01" + b"\x00" * 15

    def expand(self, seed: bytes) -> Tuple[bytes, bytes]:
        self._check_seed(seed)
        cipher = self._aes_cls(seed)
        return cipher.encrypt_block(self._block0), cipher.encrypt_block(self._block1)


class AesNiPRG(PRG):
    """AES-based PRG using the ``cryptography`` native backend (AES-NI stand-in).

    The seed is the AES key, so every distinct seed needs its own key
    schedule.  Building a fresh ``Cipher``/encryptor per expansion costs more
    than the AES rounds themselves, so encryptor contexts are kept in a small
    LRU cache: ECB is stateless per block, which makes it safe to reuse one
    context for any number of 32-byte ``update`` calls without finalizing.
    GGM derivation walks revisit the same inner-node seeds constantly (every
    leaf under a shared ancestor re-expands that ancestor's descendants), so
    the cache turns the dominant cost into a dict lookup.
    """

    name = "aes-ni"

    #: Bound on cached per-seed encryptor contexts (~100 bytes each).
    _CACHE_CAPACITY = 4096

    def __init__(self) -> None:
        if not _HAVE_FAST_AES:  # pragma: no cover - environment dependent
            raise ConfigurationError(
                "the 'cryptography' package is required for the aes-ni PRG"
            )
        self._plain = b"\x00" * 16 + b"\x01" + b"\x00" * 15
        self._contexts: "OrderedDict[bytes, object]" = OrderedDict()

    def _context(self, seed: bytes):
        """The reusable ECB encryptor for ``seed`` (LRU-cached key schedule)."""
        context = self._contexts.get(seed)
        if context is not None:
            self._contexts.move_to_end(seed)
            return context
        self._check_seed(seed)
        context = Cipher(algorithms.AES(seed), modes.ECB()).encryptor()
        self._contexts[seed] = context
        if len(self._contexts) > self._CACHE_CAPACITY:
            self._contexts.popitem(last=False)
        return context

    def expand(self, seed: bytes) -> Tuple[bytes, bytes]:
        out = self._context(seed).update(self._plain)
        return out[:16], out[16:]

    def expand_many(self, seeds: Sequence[bytes]) -> List[Tuple[bytes, bytes]]:
        context = self._context
        plain = self._plain
        results: List[Tuple[bytes, bytes]] = []
        for seed in seeds:
            out = context(seed).update(plain)
            results.append((out[:16], out[16:]))
        return results


class AesNiFixedKeyPRG(PRG):
    """Fixed-key AES PRG (MMO mode): ``G_b(x) = AES_K(x ⊕ c_b) ⊕ (x ⊕ c_b)``.

    ``K`` is a public constant, so one-wayness rests on the standard
    random-permutation assumption for fixed-key AES rather than on AES as a
    PRF family.  One reusable ECB context serves every expansion (no per-node
    key schedule), and :meth:`expand_many` encrypts the concatenated inputs
    of the whole batch in a single native call — the throughput workhorse
    behind ``leaf_range``.  ``c_0 = 0`` and ``c_1`` flips one input bit, which
    is all the left/right domain separation MMO needs.
    """

    name = "aes-ni-fk"

    #: Public fixed key; nothing secret about it, it only has to be an
    #: "unstructured" constant (nothing-up-my-sleeve derivation).
    _KEY = hashlib.sha256(b"timecrypt fixed-key aes prg").digest()[:SEED_BYTES]

    def __init__(self) -> None:
        if not _HAVE_FAST_AES:  # pragma: no cover - environment dependent
            raise ConfigurationError(
                "the 'cryptography' package is required for the aes-ni-fk PRG"
            )
        self._encrypt = Cipher(algorithms.AES(self._KEY), modes.ECB()).encryptor().update

    @staticmethod
    def _tweaked(seed: bytes) -> bytes:
        """``seed ⊕ c_1`` — flip the lowest bit of the first byte."""
        return bytes([seed[0] ^ 1]) + seed[1:]

    def expand(self, seed: bytes) -> Tuple[bytes, bytes]:
        self._check_seed(seed)
        in1 = self._tweaked(seed)
        ct = self._encrypt(seed + in1)
        left = (int.from_bytes(ct[:16], "big") ^ int.from_bytes(seed, "big")).to_bytes(16, "big")
        right = (int.from_bytes(ct[16:], "big") ^ int.from_bytes(in1, "big")).to_bytes(16, "big")
        return left, right

    def expand_many(self, seeds: Sequence[bytes]) -> List[Tuple[bytes, bytes]]:
        buffer = bytearray()
        for seed in seeds:
            self._check_seed(seed)
            buffer += seed
            buffer += self._tweaked(seed)
        ct = self._encrypt(bytes(buffer))
        from_bytes = int.from_bytes
        results: List[Tuple[bytes, bytes]] = []
        for index, seed in enumerate(seeds):
            offset = index * 32
            left = (
                from_bytes(ct[offset : offset + 16], "big") ^ from_bytes(seed, "big")
            ).to_bytes(16, "big")
            right = (
                from_bytes(ct[offset + 16 : offset + 32], "big")
                ^ from_bytes(buffer[offset + 16 : offset + 32], "big")
            ).to_bytes(16, "big")
            results.append((left, right))
        return results


_PRG_REGISTRY: Dict[str, Type[PRG]] = {
    Sha256PRG.name: Sha256PRG,
    Blake2PRG.name: Blake2PRG,
    AesPRG.name: AesPRG,
}
if _HAVE_FAST_AES:
    _PRG_REGISTRY[AesNiPRG.name] = AesNiPRG
    _PRG_REGISTRY[AesNiFixedKeyPRG.name] = AesNiFixedKeyPRG

DEFAULT_PRG = "aes-ni-fk" if _HAVE_FAST_AES else "blake2"


def available_prgs() -> Tuple[str, ...]:
    """Names of the PRG constructions usable in this environment."""
    return tuple(sorted(_PRG_REGISTRY))


def resolve_prg(name: str) -> str:
    """Map the ``auto`` selector to the fastest available PRG.

    ``auto`` must be resolved exactly once, when a stream is created, and the
    concrete name persisted — re-resolving later could pick a different
    default and silently derive a different keystream.
    """
    return DEFAULT_PRG if name == "auto" else name


def get_prg(name: str = DEFAULT_PRG) -> PRG:
    """Instantiate a PRG by name (``sha256``, ``blake2``, ``aes``, ``aes-ni``)."""
    try:
        return _PRG_REGISTRY[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown PRG '{name}'; available: {', '.join(available_prgs())}"
        ) from None


def prf(key: bytes, message: bytes, out_len: int = SEED_BYTES) -> bytes:
    """HMAC-SHA256 based PRF, truncated or expanded (counter mode) to ``out_len``."""
    if out_len <= 0:
        raise ValueError("output length must be positive")
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < out_len:
        blocks.append(
            hmac.new(key, counter.to_bytes(4, "big") + message, hashlib.sha256).digest()
        )
        counter += 1
    return b"".join(blocks)[:out_len]


def prf_int(key: bytes, message: bytes, modulus: int) -> int:
    """Derive a pseudorandom integer in ``[0, modulus)`` from the PRF."""
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    # Draw 16 extra bytes to make the modulo bias negligible.
    nbytes = (modulus.bit_length() + 7) // 8 + 16
    return int.from_bytes(prf(key, message, nbytes), "big") % modulus


def kdf(key: bytes, label: str, out_len: int = SEED_BYTES) -> bytes:
    """Domain-separated key derivation: ``PRF(key, label)``."""
    return prf(key, label.encode("utf-8"), out_len)
