"""Pseudorandom generators and functions used for key derivation.

TimeCrypt's GGM key-derivation tree (Figure 2) needs a length-doubling PRG
``G(x) = G0(x) || G1(x)``.  The paper evaluates three instantiations (Figure 6):
a software AES, SHA-256, and hardware AES (AES-NI) and picks AES-NI.  We expose
the same menu:

* ``sha256``   — ``G_b(x) = SHA256(b || x)``
* ``blake2``   — ``G_b(x) = BLAKE2b(b || x)`` (fast software hash)
* ``aes``      — ``G_b(x) = AES_x(b)`` using the pure-Python block cipher
* ``aes-ni``   — same construction but backed by the ``cryptography`` package's
  native AES when it is importable (our stand-in for hardware AES)
* ``hmac-sha256`` — an HMAC-based PRF, used where a keyed PRF (rather than a
  PRG) is the natural primitive (e.g. deriving AEAD keys from HEAC keys).

All PRGs operate on λ = 16-byte (128-bit) seeds and produce 16-byte children,
matching the paper's 128-bit security level.
"""

from __future__ import annotations

import hashlib
import hmac
from abc import ABC, abstractmethod
from typing import Dict, Tuple, Type

from repro.exceptions import ConfigurationError

SEED_BYTES = 16

try:  # pragma: no cover - depends on environment
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

    _HAVE_FAST_AES = True
except Exception:  # pragma: no cover
    _HAVE_FAST_AES = False


class PRG(ABC):
    """A length-doubling pseudorandom generator over 128-bit seeds."""

    name = "abstract"

    @abstractmethod
    def expand(self, seed: bytes) -> Tuple[bytes, bytes]:
        """Return the two 16-byte children ``(G0(seed), G1(seed))``."""

    def left(self, seed: bytes) -> bytes:
        return self.expand(seed)[0]

    def right(self, seed: bytes) -> bytes:
        return self.expand(seed)[1]

    def child(self, seed: bytes, bit: int) -> bytes:
        """Return ``G_bit(seed)`` for ``bit`` in {0, 1}."""
        if bit not in (0, 1):
            raise ValueError("child bit must be 0 or 1")
        return self.expand(seed)[bit]

    @staticmethod
    def _check_seed(seed: bytes) -> None:
        if len(seed) != SEED_BYTES:
            raise ValueError(f"seed must be {SEED_BYTES} bytes, got {len(seed)}")


class Sha256PRG(PRG):
    """``G_b(x) = SHA256(bytes([b]) || x)`` truncated to 128 bits."""

    name = "sha256"

    def expand(self, seed: bytes) -> Tuple[bytes, bytes]:
        self._check_seed(seed)
        left = hashlib.sha256(b"\x00" + seed).digest()[:SEED_BYTES]
        right = hashlib.sha256(b"\x01" + seed).digest()[:SEED_BYTES]
        return left, right


class Blake2PRG(PRG):
    """``G(x) = BLAKE2b(x)`` producing 32 bytes split into two children."""

    name = "blake2"

    def expand(self, seed: bytes) -> Tuple[bytes, bytes]:
        self._check_seed(seed)
        digest = hashlib.blake2b(seed, digest_size=32, person=b"timecryptPRG0000").digest()
        return digest[:SEED_BYTES], digest[SEED_BYTES:]


class AesPRG(PRG):
    """``G_b(x) = AES_x(block(b))`` with the seed as the AES key.

    Uses the pure-Python AES implementation in :mod:`repro.crypto.aes`, which
    mirrors the paper's "AES (software)" data point in Figure 6.
    """

    name = "aes"

    def __init__(self) -> None:
        from repro.crypto.aes import AES  # local import to avoid cycles

        self._aes_cls = AES
        self._block0 = b"\x00" * 16
        self._block1 = b"\x01" + b"\x00" * 15

    def expand(self, seed: bytes) -> Tuple[bytes, bytes]:
        self._check_seed(seed)
        cipher = self._aes_cls(seed)
        return cipher.encrypt_block(self._block0), cipher.encrypt_block(self._block1)


class AesNiPRG(PRG):
    """AES-based PRG using the ``cryptography`` native backend (AES-NI stand-in)."""

    name = "aes-ni"

    def __init__(self) -> None:
        if not _HAVE_FAST_AES:  # pragma: no cover - environment dependent
            raise ConfigurationError(
                "the 'cryptography' package is required for the aes-ni PRG"
            )
        self._plain = b"\x00" * 16 + b"\x01" + b"\x00" * 15

    def expand(self, seed: bytes) -> Tuple[bytes, bytes]:
        self._check_seed(seed)
        cipher = Cipher(algorithms.AES(seed), modes.ECB())
        encryptor = cipher.encryptor()
        out = encryptor.update(self._plain) + encryptor.finalize()
        return out[:16], out[16:]


_PRG_REGISTRY: Dict[str, Type[PRG]] = {
    Sha256PRG.name: Sha256PRG,
    Blake2PRG.name: Blake2PRG,
    AesPRG.name: AesPRG,
}
if _HAVE_FAST_AES:
    _PRG_REGISTRY[AesNiPRG.name] = AesNiPRG

DEFAULT_PRG = "aes-ni" if _HAVE_FAST_AES else "blake2"


def available_prgs() -> Tuple[str, ...]:
    """Names of the PRG constructions usable in this environment."""
    return tuple(sorted(_PRG_REGISTRY))


def get_prg(name: str = DEFAULT_PRG) -> PRG:
    """Instantiate a PRG by name (``sha256``, ``blake2``, ``aes``, ``aes-ni``)."""
    try:
        return _PRG_REGISTRY[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown PRG '{name}'; available: {', '.join(available_prgs())}"
        ) from None


def prf(key: bytes, message: bytes, out_len: int = SEED_BYTES) -> bytes:
    """HMAC-SHA256 based PRF, truncated or expanded (counter mode) to ``out_len``."""
    if out_len <= 0:
        raise ValueError("output length must be positive")
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < out_len:
        blocks.append(
            hmac.new(key, counter.to_bytes(4, "big") + message, hashlib.sha256).digest()
        )
        counter += 1
    return b"".join(blocks)[:out_len]


def prf_int(key: bytes, message: bytes, modulus: int) -> int:
    """Derive a pseudorandom integer in ``[0, modulus)`` from the PRF."""
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    # Draw 16 extra bytes to make the modulo bias negligible.
    nbytes = (modulus.bit_length() + 7) // 8 + 16
    return int.from_bytes(prf(key, message, nbytes), "big") % modulus


def kdf(key: bytes, label: str, out_len: int = SEED_BYTES) -> bytes:
    """Domain-separated key derivation: ``PRF(key, label)``."""
    return prf(key, label.encode("utf-8"), out_len)
