"""Exception hierarchy for the TimeCrypt reproduction.

Every subsystem raises exceptions derived from :class:`TimeCryptError` so that
callers can catch all library errors with a single handler while still being
able to discriminate between, say, an authorization failure and a corrupted
ciphertext.
"""

from __future__ import annotations

from typing import Optional


class TimeCryptError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(TimeCryptError):
    """A stream or system configuration value is invalid."""


class CryptoError(TimeCryptError):
    """Base class for cryptographic failures."""


class DecryptionError(CryptoError):
    """A ciphertext could not be decrypted (wrong key, tampered data, ...)."""


class IntegrityError(DecryptionError):
    """An authenticated ciphertext failed its integrity check."""


class KeyDerivationError(CryptoError):
    """A key could not be derived (out-of-range index, bad token, ...)."""


class AccessDeniedError(TimeCryptError):
    """A principal attempted an operation outside its granted scope."""


class RevokedAccessError(AccessDeniedError):
    """The principal's access to the requested range has been revoked."""


class StreamNotFoundError(TimeCryptError):
    """The requested stream UUID does not exist."""


class StreamExistsError(TimeCryptError):
    """Attempted to create a stream whose UUID already exists."""


class ChunkError(TimeCryptError):
    """A chunk is malformed, out of order, or violates stream configuration."""


class OutOfOrderError(ChunkError):
    """A record or chunk arrived with a timestamp before the stream head."""


class IndexError_(TimeCryptError):
    """The aggregation index is inconsistent or a node is missing.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class StorageError(TimeCryptError):
    """The backing key-value store failed an operation."""


class PartitionError(StorageError):
    """No healthy replica could serve the requested partition."""


class ClusterMembershipError(StorageError):
    """An invalid cluster topology change (unknown, duplicate, or last node)."""


class WrongShardError(TimeCryptError):
    """The stream addressed by a request is owned by a different engine shard.

    Carried over the wire as a typed redirect: the response's ``result``
    names the owning shard and the routing-table epoch the answering engine
    observed, so a client with a stale table can refresh and re-route
    instead of guessing.
    """


class OverloadedError(TimeCryptError):
    """The server shed the request because a dispatch queue was full.

    This is the typed backpressure signal: the wire response carries a
    ``retry_after_ms`` hint, and clients retry with capped exponential
    backoff before surfacing the error.  Deliberately *not* a
    :class:`TransportError` — the connection is healthy, the server is just
    saturated, so the storage cluster's mark-down machinery should only see
    it once client-side retries are exhausted.
    """

    def __init__(self, message: str = "server overloaded", retry_after_ms: Optional[int] = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class TransportError(TimeCryptError):
    """The client/server transport failed (framing, connection, timeout)."""


class ProtocolError(TransportError):
    """A malformed or unexpected message was received."""


class QueryError(TimeCryptError):
    """A statistical or range query is malformed or unsupported."""


class UnsupportedOperatorError(QueryError):
    """The requested statistical operator is not in the stream's digest config."""
