"""The encrypted time-partitioned aggregation index (paper §4.5, Fig. 4)."""

from repro.index.cache import NodeCache
from repro.index.node import IndexNode
from repro.index.query import RangePlan, plan_range
from repro.index.tree import AggregationIndex

__all__ = ["IndexNode", "AggregationIndex", "NodeCache", "RangePlan", "plan_range"]
