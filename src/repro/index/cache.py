"""The index-node cache.

The server keeps hot index nodes in memory (the paper uses an LRU cache via
the caffeine library); cold nodes are fetched from the key-value store.  The
cache is byte-budgeted so the "small cache (1 MB)" configuration of Figure 7
can be reproduced directly, and it reports hit/miss statistics which the
end-to-end benchmarks surface.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.index.node import IndexNode
from repro.util.cache import CacheStats, LRUCache

#: Fixed per-node bookkeeping overhead charged on top of the digest cells
#: (coordinates, interval bounds, python object headers are ignored — we
#: charge what a compact serialized node would occupy).
_NODE_OVERHEAD_BYTES = 32

NodeKey = Tuple[str, int, int]  # (stream uuid, level, position)


class NodeCache:
    """LRU cache of index nodes keyed by (stream, level, position)."""

    def __init__(self, capacity_bytes: int = 64 * 1024 * 1024, cell_size: int = 8) -> None:
        self._cell_size = cell_size
        self._cache: LRUCache[NodeKey, IndexNode] = LRUCache(
            capacity=capacity_bytes, weigher=self._weigh
        )

    def _weigh(self, node: IndexNode) -> int:
        return _NODE_OVERHEAD_BYTES + self._cell_size * node.width

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def capacity_bytes(self) -> int:
        return self._cache.capacity

    @property
    def used_bytes(self) -> int:
        return self._cache.weight

    def __len__(self) -> int:
        return len(self._cache)

    def get(self, key: NodeKey) -> Optional[IndexNode]:
        return self._cache.get(key)

    def get_or_load(self, key: NodeKey, loader: Callable[[], Optional[IndexNode]]) -> Optional[IndexNode]:
        """Return the cached node, or load it; missing nodes are not negative-cached."""
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        node = loader()
        if node is not None:
            self._cache.put(key, node)
        return node

    def put(self, key: NodeKey, node: IndexNode) -> None:
        self._cache.put(key, node)

    def invalidate(self, key: NodeKey) -> bool:
        return self._cache.invalidate(key)

    def clear(self) -> None:
        self._cache.clear()
