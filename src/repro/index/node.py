"""Index nodes: per-level aggregated digest vectors.

The aggregation index is a k-ary tree over chunk windows.  A node at level
``L`` and position ``p`` summarises the window interval
``[p * k^L, (p+1) * k^L)``: its digest is the component-wise sum of its
children's digests.  Because the digests are HEAC ciphertexts (or Paillier /
EC-ElGamal ciphertexts in the strawman configurations) the server can compute
these sums without ever seeing a plaintext.

The node is cipher-agnostic: it stores opaque "cells" plus the window
interval, and the tree combines cells through a pluggable
:class:`DigestCombiner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, List, Sequence, TypeVar

from repro.crypto.heac import HEACCiphertext
from repro.exceptions import IndexError_

Cell = TypeVar("Cell")


@dataclass(frozen=True)
class IndexNode(Generic[Cell]):
    """One node of the aggregation tree.

    Attributes
    ----------
    level:
        0 for leaves (one chunk window per node), increasing towards the root.
    position:
        Index of the node within its level.
    window_start / window_end:
        Half-open chunk-window interval the node summarises.  For partially
        filled nodes at the head of the stream the interval reflects only the
        windows actually ingested so far.
    cells:
        The aggregated digest vector (one opaque cell per digest component).
    """

    level: int
    position: int
    window_start: int
    window_end: int
    cells: tuple

    def __post_init__(self) -> None:
        if self.level < 0 or self.position < 0:
            raise IndexError_("index node coordinates must be non-negative")
        if self.window_end <= self.window_start:
            raise IndexError_("index node must cover a non-empty window interval")

    @property
    def num_windows(self) -> int:
        return self.window_end - self.window_start

    @property
    def width(self) -> int:
        return len(self.cells)


class DigestCombiner(Generic[Cell]):
    """How digest cells are added together and how large they are.

    ``add`` must be associative; ``size_of`` reports the serialized size of a
    cell so index-size accounting (Table 2) works uniformly across ciphers.
    """

    def __init__(self, add: Callable[[Cell, Cell], Cell], size_of: Callable[[Cell], int]) -> None:
        self._add = add
        self._size_of = size_of

    def add(self, left: Cell, right: Cell) -> Cell:
        return self._add(left, right)

    def size_of(self, cell: Cell) -> int:
        return self._size_of(cell)

    def combine_vectors(self, left: Sequence[Cell], right: Sequence[Cell]) -> List[Cell]:
        if len(left) != len(right):
            raise IndexError_("cannot combine digest vectors of different widths")
        return [self._add(a, b) for a, b in zip(left, right)]

    def vector_size(self, cells: Sequence[Cell]) -> int:
        return sum(self._size_of(cell) for cell in cells)


def heac_combiner() -> DigestCombiner[HEACCiphertext]:
    """Combiner for HEAC digest cells (modular addition, 8-byte cells)."""
    return DigestCombiner(add=lambda a, b: a + b, size_of=lambda _cell: 8)


def plaintext_combiner() -> DigestCombiner[int]:
    """Combiner for the plaintext baseline (plain integer addition, 8-byte cells)."""
    return DigestCombiner(add=lambda a, b: a + b, size_of=lambda _cell: 8)
