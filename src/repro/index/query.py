"""Range-query planning over the k-ary aggregation tree.

A statistical query over chunk windows ``[start, end)`` should touch as few
index nodes as possible: whole aligned subtrees are answered by a single
pre-aggregated node, and only the ragged edges of the range require drilling
down towards the leaves.  The cover produced here touches at most
``2·(k−1)·log_k(n)`` nodes (the paper's worst-case bound) and is computed
greedily from the largest aligned blocks downward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.exceptions import QueryError


@dataclass(frozen=True)
class NodeRef:
    """A reference to one index node in a query plan."""

    level: int
    position: int
    window_start: int
    window_end: int


@dataclass(frozen=True)
class RangePlan:
    """The set of nodes whose digests sum to the answer for ``[start, end)``."""

    window_start: int
    window_end: int
    nodes: Tuple[NodeRef, ...]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def levels_touched(self) -> Tuple[int, ...]:
        return tuple(sorted({node.level for node in self.nodes}))

    def storage_keys(self, key_for: Callable[[int, int], bytes]) -> List[bytes]:
        """The backend keys of every node in the plan, in cover order.

        ``key_for`` maps ``(level, position)`` to a storage key; the executor
        fetches the whole list with one ``multi_get`` instead of one ``get``
        per node, which is what makes a range query cost O(node groups per
        backend) round trips rather than O(nodes).
        """
        return [key_for(node.level, node.position) for node in self.nodes]


def _block_size(fanout: int, level: int) -> int:
    return fanout ** level


def plan_range(start: int, end: int, fanout: int, max_level: int) -> RangePlan:
    """Greedy aligned-block cover of the window interval ``[start, end)``.

    Parameters
    ----------
    start, end:
        Chunk-window interval (half open).  ``end`` must not exceed the number
        of ingested windows; the caller clips it.
    fanout:
        k of the k-ary tree.
    max_level:
        Highest tree level available (the root's level for the current stream
        length); the plan never references nodes above it.
    """
    if fanout < 2:
        raise QueryError("index fanout must be at least 2")
    if end < start:
        raise QueryError(f"invalid window range [{start}, {end})")
    nodes: List[NodeRef] = []
    position = start
    while position < end:
        # The largest level whose block is aligned at `position` and fits in the range.
        level = 0
        while level < max_level:
            size_up = _block_size(fanout, level + 1)
            if position % size_up == 0 and position + size_up <= end:
                level += 1
            else:
                break
        size = _block_size(fanout, level)
        nodes.append(
            NodeRef(
                level=level,
                position=position // size,
                window_start=position,
                window_end=position + size,
            )
        )
        position += size
    return RangePlan(window_start=start, window_end=end, nodes=tuple(nodes))


def worst_case_nodes(fanout: int, num_windows: int) -> int:
    """The analytic worst-case plan size ``2·(k−1)·ceil(log_k n)`` (paper §6.1)."""
    if num_windows <= 1:
        return 1
    levels = 0
    capacity = 1
    while capacity < num_windows:
        capacity *= fanout
        levels += 1
    return 2 * (fanout - 1) * levels
