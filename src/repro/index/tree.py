"""The k-ary time-partitioned aggregation index (paper §4.5, Fig. 4).

The index is an append-only k-ary tree built bottom-up over chunk digests:
leaf node ``i`` holds the digest of chunk window ``i``; an inner node at
level ``L`` and position ``P`` aggregates the windows ``[P·k^L, (P+1)·k^L)``.
Because time series ingest is in-order append-only, updating the tree on
ingest touches exactly one node per level (the right-most "spine"), so an
append costs one combine and one store write per level — constant work.

The tree persists every node in the backing key-value store and serves reads
through the byte-budgeted :class:`~repro.index.cache.NodeCache`, mirroring
the paper's "only relevant segments of the tree are loaded into memory".

The tree is cipher-agnostic: cells are combined via a
:class:`~repro.index.node.DigestCombiner` and (de)serialized via caller
supplied functions, so the same code serves HEAC, Paillier, EC-ElGamal, and
the plaintext baseline.

Batch ingest
------------

A scalar :meth:`AggregationIndex.append` costs one node load, one combine and
one store write per tree level, plus a meta-record write — O(levels) writes
per chunk.  :meth:`AggregationIndex.append_many` appends ``n`` consecutive
digests in one pass: per level it walks the touched spine positions (at most
``n / fanout^level + 1`` of them), folds every new leaf of a position into
its node in memory, and writes each touched node exactly once; the
window-count meta record is written once per batch.  Store writes drop from
``n · (levels + 1) + n`` to ``n + Σ_L (n / fanout^L + 1) + 1`` — for
``n = fanout`` that is ~2 writes per leaf instead of ``levels + 2``.  The
final stored bytes are identical to ``n`` scalar appends (intermediate spine
states are simply never materialised).

Beyond writing each node once, the whole batch (touched nodes + the meta
record + any caller-coalesced extra records, e.g. the chunk payloads of a
bulk ingest) lands in **one** ``multi_put`` round trip against the backend,
and a range query fetches every plan node missing from the cache with one
``multi_get`` — the storage-side half of the batching story.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, List, Optional, Sequence, TypeVar

from repro.exceptions import IndexError_, QueryError
from repro.index.cache import NodeCache
from repro.index.node import DigestCombiner, IndexNode
from repro.index.query import RangePlan, plan_range
from repro.storage.kv import KeyValueStore
from repro.timeseries.serialization import index_node_storage_key
from repro.util.encoding import decode_varint, encode_varint

Cell = TypeVar("Cell")

#: Default bound on stream length used to size the tree depth: enough for
#: 2^40 chunk windows (≈ 350 years of 10 ms chunks), giving 7 levels at k=64.
DEFAULT_MAX_WINDOWS = 1 << 40


def levels_for(fanout: int, max_windows: int) -> int:
    """Number of inner levels needed so one node can cover ``max_windows`` leaves."""
    levels = 0
    capacity = 1
    while capacity < max_windows:
        capacity *= fanout
        levels += 1
    return max(1, levels)


class AggregationIndex(Generic[Cell]):
    """Append-only k-ary aggregation tree over one stream's chunk digests."""

    def __init__(
        self,
        stream_uuid: str,
        store: KeyValueStore,
        combiner: DigestCombiner[Cell],
        encode_cells: Callable[[Sequence[Cell]], bytes],
        decode_cells: Callable[[bytes], List[Cell]],
        fanout: int = 64,
        cache: Optional[NodeCache] = None,
        max_windows: int = DEFAULT_MAX_WINDOWS,
    ) -> None:
        if fanout < 2:
            raise IndexError_("index fanout must be at least 2")
        if max_windows < 1:
            raise IndexError_("max_windows must be positive")
        self._stream_uuid = stream_uuid
        self._store = store
        self._combiner = combiner
        self._encode_cells = encode_cells
        self._decode_cells = decode_cells
        self._fanout = fanout
        self._max_level = levels_for(fanout, max_windows)
        # Note: `cache or NodeCache()` would discard an *empty* caller-provided
        # cache (NodeCache defines __len__), so compare against None explicitly.
        self._cache = cache if cache is not None else NodeCache()
        self._pruned_watermarks: Dict[int, int] = {}
        #: Cumulative count of batched store round trips (multi_get/multi_put/
        #: multi_delete) issued by this index; the engine diffs it around a
        #: query to report fetch round trips per query.
        self.store_batch_ops = 0
        self._num_windows = self._load_meta()

    # -- properties -------------------------------------------------------------

    @property
    def fanout(self) -> int:
        return self._fanout

    @property
    def num_windows(self) -> int:
        """Number of leaf windows ingested so far."""
        return self._num_windows

    @property
    def cache(self) -> NodeCache:
        return self._cache

    @property
    def max_level(self) -> int:
        """Highest inner level maintained by the tree."""
        return self._max_level

    # -- persistence -------------------------------------------------------------

    def _meta_key(self) -> bytes:
        return f"index/{self._stream_uuid}/meta".encode("ascii")

    def _load_meta(self) -> int:
        """Load the meta record: window count plus per-level pruned watermarks.

        The record is ``varint(count)`` optionally followed by
        ``varint(num_entries)`` and ``num_entries`` ``(level, watermark)``
        varint pairs; records written before watermarks existed decode as an
        empty watermark map.
        """
        blob = self._store.get(self._meta_key())
        if blob is None:
            return 0
        count, pos = decode_varint(blob, 0)
        if pos < len(blob):
            num_entries, pos = decode_varint(blob, pos)
            for _ in range(num_entries):
                level, pos = decode_varint(blob, pos)
                watermark, pos = decode_varint(blob, pos)
                self._pruned_watermarks[level] = watermark
        return count

    def _meta_blob(self) -> bytes:
        blob = encode_varint(self._num_windows)
        if self._pruned_watermarks:
            blob += encode_varint(len(self._pruned_watermarks))
            for level in sorted(self._pruned_watermarks):
                blob += encode_varint(level) + encode_varint(self._pruned_watermarks[level])
        return blob

    def _save_meta(self) -> None:
        self._store.put(self._meta_key(), self._meta_blob())

    def _node_key(self, level: int, position: int) -> bytes:
        return index_node_storage_key(self._stream_uuid, level, position)

    def _encode_node(self, node: IndexNode) -> bytes:
        return (
            encode_varint(node.window_start)
            + encode_varint(node.window_end)
            + self._encode_cells(node.cells)
        )

    def _buffer_node(self, batch: Dict[bytes, bytes], staged: List[IndexNode], node: IndexNode) -> None:
        """Stage a node into the batch write set (cached only after the flush succeeds)."""
        batch[self._node_key(node.level, node.position)] = self._encode_node(node)
        staged.append(node)

    def _decode_node(self, level: int, position: int, blob: bytes) -> IndexNode:
        window_start, pos = decode_varint(blob, 0)
        window_end, pos = decode_varint(blob, pos)
        cells = self._decode_cells(blob[pos:])
        return IndexNode(
            level=level,
            position=position,
            window_start=window_start,
            window_end=window_end,
            cells=tuple(cells),
        )

    def _load_node(self, level: int, position: int) -> Optional[IndexNode]:
        cache_key = (self._stream_uuid, level, position)

        def loader() -> Optional[IndexNode]:
            blob = self._store.get(self._node_key(level, position))
            return self._decode_node(level, position, blob) if blob is not None else None

        return self._cache.get_or_load(cache_key, loader)

    def _load_plan_nodes(self, plan: RangePlan) -> Dict[tuple, Optional[IndexNode]]:
        """Load a query plan's node cover, batching cache misses.

        Every node missing from the cache is fetched with one ``multi_get``
        against the backend (zero round trips when the cache already holds
        the whole cover), and the fetched nodes are cached.
        """
        nodes: Dict[tuple, Optional[IndexNode]] = {}
        missing: List[tuple] = []
        for ref, key in zip(plan.nodes, plan.storage_keys(self._node_key)):
            coordinates = (ref.level, ref.position)
            cached = self._cache.get((self._stream_uuid, ref.level, ref.position))
            if cached is not None:
                nodes[coordinates] = cached
            elif coordinates not in nodes:
                missing.append((coordinates, key))
                nodes[coordinates] = None
        if missing:
            blobs = self._store.multi_get([key for _, key in missing])
            self.store_batch_ops += 1
            for (level, position), key in missing:
                blob = blobs.get(key)
                if blob is not None:
                    node = self._decode_node(level, position, blob)
                    self._cache.put((self._stream_uuid, level, position), node)
                    nodes[(level, position)] = node
        return nodes

    # -- ingest -------------------------------------------------------------------

    def append(self, cells: Sequence[Cell]) -> int:
        """Append the digest of the next chunk window; returns its window index.

        The leaf is written and every ancestor on the right-most spine is
        updated (or created), which costs one combine and one write per level.
        """
        return self.append_many([cells])

    def append_many(
        self,
        cell_vectors: Sequence[Sequence[Cell]],
        extra_puts: Optional[Sequence[tuple]] = None,
    ) -> int:
        """Append ``n`` consecutive chunk digests in one pass; returns the first index.

        Per level, the new leaves are folded into each touched spine node in
        memory and every touched node is written once, instead of once per
        appended leaf; the window-count meta record is also written once.  The
        stored bytes after the batch are identical to ``n`` scalar appends
        (see the module docstring for the write-count arithmetic).

        The whole write set — every touched node, the meta record, and any
        ``extra_puts`` (``(key, value)`` pairs the caller wants coalesced
        into the same backend round trip, e.g. the encrypted chunk payloads
        of a bulk ingest) — is flushed with a single ``multi_put``.

        Leaves arrive strictly in window order, so the first leaf of any
        ancestor block is always the block's left-most ingested window;
        ancestor nodes are created with ``window_start`` at that leaf and grow
        until their block is full.  Only the left-most touched position per
        level can pre-exist — every later position starts at a window this
        batch introduces.
        """
        if not cell_vectors:
            if extra_puts:
                self._store.multi_put(list(extra_puts))
                self.store_batch_ops += 1
            return self._num_windows
        batch: Dict[bytes, bytes] = dict(extra_puts or ())
        staged: List[IndexNode] = []
        start = self._num_windows
        leaf_cells: List[tuple] = []
        for offset, cells in enumerate(cell_vectors):
            window_index = start + offset
            leaf_cells.append(tuple(cells))
            self._buffer_node(
                batch,
                staged,
                IndexNode(
                    level=0,
                    position=window_index,
                    window_start=window_index,
                    window_end=window_index + 1,
                    cells=leaf_cells[-1],
                ),
            )
        end = start + len(leaf_cells)
        for level in range(1, self._max_level + 1):
            block = self._fanout ** level
            for position in range(start // block, (end - 1) // block + 1):
                block_start = max(start, position * block)
                block_end = min(end, (position + 1) * block)
                existing = self._load_node(level, position) if block_start == start else None
                if existing is not None:
                    if existing.window_end != block_start:
                        raise IndexError_(
                            f"index spine out of sync at level {level}: node ends at "
                            f"{existing.window_end}, leaf is {block_start}"
                        )
                    window_start = existing.window_start
                    cells = list(existing.cells)
                else:
                    window_start = block_start
                    cells = list(leaf_cells[block_start - start])
                    block_start += 1
                for window_index in range(block_start, block_end):
                    cells = self._combiner.combine_vectors(
                        cells, leaf_cells[window_index - start]
                    )
                self._buffer_node(
                    batch,
                    staged,
                    IndexNode(
                        level=level,
                        position=position,
                        window_start=window_start,
                        window_end=block_end,
                        cells=tuple(cells),
                    ),
                )
        # Flush before mutating any in-memory state: if the backend rejects
        # the batch, the index head and cache still match storage and the
        # caller can retry the same batch.
        self._num_windows = end
        try:
            batch[self._meta_key()] = self._meta_blob()
            self._store.multi_put(list(batch.items()))
        except BaseException:
            self._num_windows = start
            raise
        self.store_batch_ops += 1
        for node in staged:
            self._cache.put((self._stream_uuid, node.level, node.position), node)
        return start

    # -- queries ---------------------------------------------------------------------

    def query_range(
        self, window_start: int, window_end: int, plan: Optional[RangePlan] = None
    ) -> List[Cell]:
        """Aggregate digest cells over the window interval ``[start, end)``.

        A caller that already computed the cover (the engine does, for its
        query statistics) passes it as ``plan`` so the greedy cover walk runs
        once per query, not twice.
        """
        if window_end <= window_start:
            raise QueryError(f"empty window range [{window_start}, {window_end})")
        if window_start < 0 or window_end > self._num_windows:
            raise QueryError(
                f"window range [{window_start}, {window_end}) outside ingested "
                f"range [0, {self._num_windows})"
            )
        if plan is None:
            plan = self.plan(window_start, window_end)
        elif plan.window_start != window_start or plan.window_end != window_end:
            raise QueryError(
                f"plan covers [{plan.window_start}, {plan.window_end}), query "
                f"asked for [{window_start}, {window_end})"
            )
        loaded = self._load_plan_nodes(plan)
        total: Optional[List[Cell]] = None
        for ref in plan.nodes:
            node = loaded[(ref.level, ref.position)]
            if node is None:
                raise IndexError_(
                    f"missing index node level={ref.level} position={ref.position}"
                )
            if node.window_start != ref.window_start or node.window_end < ref.window_end:
                raise IndexError_(
                    f"index node level={ref.level} position={ref.position} covers "
                    f"[{node.window_start}, {node.window_end}), plan expected "
                    f"[{ref.window_start}, {ref.window_end})"
                )
            total = (
                list(node.cells)
                if total is None
                else self._combiner.combine_vectors(total, node.cells)
            )
        assert total is not None
        return total

    def plan(self, window_start: int, window_end: int) -> RangePlan:
        """The node cover used to answer a range query (exposed for benchmarks)."""
        return plan_range(window_start, window_end, self._fanout, self._max_level)

    def node(self, level: int, position: int) -> Optional[IndexNode]:
        """Fetch a single node (used by rollup and inspection tooling)."""
        return self._load_node(level, position)

    # -- maintenance -------------------------------------------------------------------

    def prune_below(self, level: int, before_window: int) -> int:
        """Data decay: drop nodes below ``level`` that end at or before ``before_window``.

        Models the paper's "archiving at lower resolutions": fine-grained
        nodes for aged-out data are removed while coarser aggregates remain
        queryable.  Returns the number of nodes deleted.

        A per-level pruned watermark is persisted in the meta record so that
        repeated rollups resume deleting where the previous one stopped;
        without it every invocation re-attempts deletes from position 0 and
        periodic rollups degrade quadratically over the stream's lifetime.
        """
        if level <= 0:
            return 0
        # Clamp to the ingested head: advancing the watermark past windows
        # that do not exist yet would make them unprunable once ingested.
        before_window = min(before_window, self._num_windows)
        doomed: List[tuple] = []
        watermarks_moved = False
        for target_level in range(0, min(level, self._max_level + 1)):
            block = self._fanout ** target_level
            full_blocks = before_window // block
            start_position = self._pruned_watermarks.get(target_level, 0)
            doomed.extend((target_level, position) for position in range(start_position, full_blocks))
            if full_blocks > start_position:
                self._pruned_watermarks[target_level] = full_blocks
                watermarks_moved = True
        deleted = 0
        if doomed:
            # All levels' prunable nodes go in one multi_delete round trip.
            existed = self._store.multi_delete(
                [self._node_key(target_level, position) for target_level, position in doomed]
            )
            self.store_batch_ops += 1
            deleted = len(existed)
            for target_level, position in doomed:
                self._cache.invalidate((self._stream_uuid, target_level, position))
        if watermarks_moved:
            self._save_meta()
        return deleted

    def size_bytes(self) -> int:
        """Serialized size of all stored index nodes (Table 2's index size)."""
        prefix = f"index/{self._stream_uuid}/".encode("ascii")
        return sum(len(key) + len(value) for key, value in self._store.scan_prefix(prefix))

    def node_count(self) -> int:
        """Number of stored index nodes (excluding the window-count record)."""
        prefix = f"index/{self._stream_uuid}/".encode("ascii")
        return sum(1 for key, _ in self._store.scan_prefix(prefix) if not key.endswith(b"/meta"))
