"""Client/server transport: the Netty + protobuf stand-in.

The original prototype exposes the TimeCrypt API over Netty with protobuf
messages.  Here the wire format is a hand-rolled length-prefixed binary
protocol (:mod:`repro.net.messages`, :mod:`repro.net.framing`) carried either
over real TCP sockets (:mod:`repro.net.server`, :mod:`repro.net.client`) or
over a zero-copy in-process transport used by benchmarks so that socket
overhead does not mask the cryptography being measured.
"""

from repro.net.client import RemoteServerClient
from repro.net.framing import read_frame, write_frame
from repro.net.messages import Request, Response
from repro.net.server import TimeCryptTCPServer

__all__ = [
    "Request",
    "Response",
    "read_frame",
    "write_frame",
    "TimeCryptTCPServer",
    "RemoteServerClient",
]
