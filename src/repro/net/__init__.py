"""Client/server transport: the Netty + protobuf stand-in.

The original prototype exposes the TimeCrypt API over Netty with protobuf
messages.  Here the wire format is a hand-rolled length-prefixed binary
protocol (:mod:`repro.net.messages`, :mod:`repro.net.framing`) carried either
over real TCP sockets (:mod:`repro.net.server`, :mod:`repro.net.client`) or
over a zero-copy in-process transport used by benchmarks so that socket
overhead does not mask the cryptography being measured.

Since protocol v2 the wire is **pipelined and request-multiplexed**: v2
frames carry per-request correlation ids (see :mod:`repro.net.framing` for
the exact header layout), the server dispatches frames from a bounded
worker pool and answers out of order, and the client multiplexes any number
of in-flight requests over one connection — ``call_many`` / ``pipeline()``
ship whole request batches in a single round trip.  v1 lockstep peers keep
working on the same port: the first two magic bytes of every frame select
the protocol version, and ``hello`` negotiates capabilities up front.
"""

from repro.net.client import RemoteServerClient, RequestPipeline, WireStats
from repro.net.framing import (
    Frame,
    FrameAssembler,
    read_any_frame,
    read_frame,
    write_frame,
    write_frame_v2,
)
from repro.net.messages import Request, Response
from repro.net.server import RequestDispatcher, TimeCryptTCPServer, WireDispatcher

__all__ = [
    "Request",
    "Response",
    "WireDispatcher",
    "Frame",
    "FrameAssembler",
    "read_frame",
    "read_any_frame",
    "write_frame",
    "write_frame_v2",
    "RequestDispatcher",
    "TimeCryptTCPServer",
    "RemoteServerClient",
    "RequestPipeline",
    "WireStats",
]
