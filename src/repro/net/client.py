"""The network client: a pipelined remote ServerEngine proxy.

:class:`RemoteServerClient` speaks the framed wire protocol to a
:class:`~repro.net.server.TimeCryptTCPServer` and exposes the same method
surface as :class:`~repro.server.engine.ServerEngine`, so the
:class:`~repro.core.timecrypt.TimeCrypt` facade and the consumer client work
unchanged whether the server is in-process or across the network.

Transport model (protocol v2, the default): one dedicated **reader thread**
drains response frames and resolves them against a correlation-id → future
table, so any number of requests can be in flight on one connection and
responses may arrive in any order.  On top of that sit three calling styles:

* ``_call`` — write one request, wait for its future (one round trip);
* :meth:`call_many` — write a whole batch of requests back-to-back in one
  ``sendall``, then wait for all futures: N requests, **one** round trip;
* :meth:`pipeline` — a context manager that records ServerEngine-shaped
  calls as deferred handles and flushes them through :meth:`call_many` on
  exit, so heterogeneous bursts (grant pickups, range reads, stat queries)
  also collapse into one round trip.

The protocol version is negotiated at connect time with a ``hello``
request; a peer that cannot answer it (a v1-only lockstep server) drops the
connection, and the client transparently reconnects in v1 mode — one locked
request/response exchange per operation, exactly the original wire
behaviour.  :class:`WireStats` counts requests and round trips either way,
which is what the network benchmarks assert against.

Two backpressure mechanisms ride on the v2 transport (see
:mod:`repro.net.server`): servers advertise a per-connection **credit
window** in ``hello`` and return one credit per response, and the client
blocks frame submission on the window (``flow_control=False`` floods like a
legacy client); a server shedding under load answers with a typed
``overloaded`` error, which the client retries with capped exponential
backoff (``overload_retries``) before surfacing
:class:`~repro.exceptions.OverloadedError` to the caller.
"""

from __future__ import annotations

import itertools
import logging
import socket
import threading
import time
from concurrent.futures import Future
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.crypto.heac import HEACCiphertext
from repro.obs.metrics import REGISTRY
from repro.obs.tracing import SPANS, current_context, new_span_id, new_trace_id
from repro.exceptions import (
    OverloadedError,
    ProtocolError,
    QueryError,
    TimeCryptError,
    TransportError,
)
from repro.net.framing import (
    MEMORY_COUNTERS,
    PROTOCOL_VERSION,
    FrameReader,
    encode_frame_segments_v2,
    encode_frame_v2,
    read_any_frame,
    read_frame,
    write_frame,
    write_frame_v2,
    write_vectored,
)
from repro.net.messages import (
    WIRE_COMPRESSION_SCHEMES,
    WIRE_COMPRESSION_THRESHOLD,
    Request,
    Response,
    ShardRoutingTable,
    maybe_compress_segments,
    retain,
)
from repro.server.engine import _metadata_from_json, _metadata_to_json
from repro.server.query_executor import MultiStreamAggregate, StatQueryResult
from repro.timeseries.serialization import (
    EncryptedChunk,
    decode_encrypted_chunk,
    encode_encrypted_chunk,
)
from repro.timeseries.stream import StreamMetadata
from repro.util.timeutil import TimeRange

logger = logging.getLogger(__name__)

#: Exception classes re-raised by name when the server reports them.
_ERROR_TYPES: Dict[str, type] = {
    cls.__name__: cls
    for cls in TimeCryptError.__subclasses__() + [TimeCryptError]
}


def _register_error_types() -> None:
    """Index the full TimeCryptError hierarchy (grandchildren included)."""
    pending = [TimeCryptError]
    while pending:
        cls = pending.pop()
        _ERROR_TYPES[cls.__name__] = cls
        pending.extend(cls.__subclasses__())


_register_error_types()


def _remote_error(response: Response) -> TimeCryptError:
    error_cls = _ERROR_TYPES.get(response.error_type or "", TimeCryptError)
    error = error_cls(response.error or "remote error")
    if isinstance(error, OverloadedError) and isinstance(response.result, dict):
        hint = response.result.get("retry_after_ms")
        if isinstance(hint, (int, float)) and hint > 0:
            error.retry_after_ms = int(hint)
    return error


def _raise_remote(response: Response) -> None:
    raise _remote_error(response)


def _is_overloaded(response: Response) -> bool:
    return (not response.ok) and response.error_type == "OverloadedError"


@dataclass
class WireStats:
    """Client-side wire accounting.

    ``round_trips`` counts *wait points*: one per lockstep call and one per
    flushed pipeline/batch, however many requests it carried.  This is the
    quantity that maps to network latency and that ``BENCH_net.json``
    tracks; ``requests_sent`` is the op count for computing batching ratios.
    """

    requests_sent: int = 0
    responses_received: int = 0
    round_trips: int = 0
    batches_sent: int = 0
    #: Times frame submission found the credit window empty and had to wait.
    credit_stalls: int = 0
    #: Requests re-sent after the server shed them with a typed ``overloaded``.
    overload_retries: int = 0
    #: Wire bytes written / read (frame headers included).
    bytes_sent: int = 0
    bytes_received: int = 0
    #: Vectored-send bookkeeping: batches shipped through ``write_vectored``
    #: and small segments it merged into a single iovec.
    vectored_writes: int = 0
    frames_coalesced: int = 0
    #: Request frames that went out in the negotiated compressed form.
    frames_compressed: int = 0

    def reset(self) -> None:
        self.requests_sent = 0
        self.responses_received = 0
        self.round_trips = 0
        self.batches_sent = 0
        self.credit_stalls = 0
        self.overload_retries = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.vectored_writes = 0
        self.frames_coalesced = 0
        self.frames_compressed = 0


class _CreditGate:
    """The client half of credit-based flow control.

    Initialised from the window the server advertised in ``hello``; every
    accepted frame costs one credit and every response returns the credits
    the server piggybacked.  ``available`` can never go negative (credits
    are taken under the condition lock, at most what is there) and never
    exceeds the window (grants are clamped, so refunds after a connection
    failure cannot inflate it).
    """

    def __init__(self, window: int) -> None:
        self._window = max(1, int(window))
        self._available = self._window
        self._cond = threading.Condition()

    @property
    def window(self) -> int:
        return self._window

    @property
    def available(self) -> int:
        with self._cond:
            return self._available

    def acquire(self, upto: int, timeout: float) -> int:
        """Block until at least one credit is free; take up to ``upto``.

        Returns how many credits were taken, or 0 if the window never
        refilled within ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._available <= 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return 0
                self._cond.wait(remaining)
            taken = min(max(1, int(upto)), self._available)
            self._available -= taken
            return taken

    def grant(self, count: int) -> None:
        if count <= 0:
            return
        with self._cond:
            self._available = min(self._window, self._available + int(count))
            self._cond.notify_all()


class PipelineResult:
    """A deferred result handle returned by :class:`RequestPipeline` methods."""

    def __init__(self, decoder: Callable[[Response], Any]) -> None:
        self._decoder = decoder
        self._response: Optional[Response] = None
        self._error: Optional[Exception] = None
        self._resolved = False

    def _resolve(self, response: Response) -> None:
        self._response = response
        self._resolved = True

    def _fail(self, error: Exception) -> None:
        self._error = error
        self._resolved = True

    def result(self) -> Any:
        """The decoded response; raises the remote (or transport) error on failure."""
        if not self._resolved:
            raise ProtocolError("pipeline result read before the pipeline was flushed")
        if self._error is not None:
            raise self._error
        assert self._response is not None
        if not self._response.ok:
            _raise_remote(self._response)
        return self._decoder(self._response)


class RequestPipeline:
    """Records ServerEngine-shaped calls; one round trip flushes them all.

    Used as a context manager::

        with client.pipeline() as batch:
            heads = [batch.stream_head(uuid) for uuid in uuids]
            grants = batch.fetch_grants(uuid, "bob")
        print([handle.result() for handle in heads])

    Every method returns a :class:`PipelineResult`; results become readable
    after the ``with`` block (or an explicit :meth:`flush`).  A failed
    request raises its remote error from ``result()`` without affecting the
    other requests in the batch — mid-batch errors stay per-request.
    """

    def __init__(self, client: "RemoteServerClient") -> None:
        self._client = client
        self._requests: List[Request] = []
        self._handles: List[PipelineResult] = []

    def __len__(self) -> int:
        return len(self._requests)

    def __enter__(self) -> "RequestPipeline":
        return self

    def __exit__(self, exc_type: object, *_exc_info: object) -> None:
        if exc_type is None:
            self.flush()

    def flush(self) -> None:
        """Ship all recorded requests as one framed batch and resolve handles.

        On a transport failure every handle is failed with that error (so
        ``result()`` reports the real cause, not an unflushed-pipeline
        state) and the recorded batch is cleared before re-raising.
        """
        if not self._requests:
            return
        requests, handles = self._requests, self._handles
        self._requests = []
        self._handles = []
        try:
            responses = self._client.call_many(requests)
        except Exception as exc:
            for handle in handles:
                handle._fail(exc)
            raise
        for handle, response in zip(handles, responses):
            handle._resolve(response)

    def _defer(self, request: Request, decoder: Callable[[Response], Any]) -> PipelineResult:
        handle = PipelineResult(decoder)
        self._requests.append(request)
        self._handles.append(handle)
        return handle

    # -- deferred ServerEngine-shaped calls ---------------------------------------

    def ping(self) -> PipelineResult:
        return self._defer(Request("ping"), lambda r: bool(r.result.get("pong")))

    def stream_head(self, stream_uuid: str) -> PipelineResult:
        return self._defer(
            Request("stream_head", {"uuid": stream_uuid}), lambda r: int(r.result["head"])
        )

    def stream_metadata(self, stream_uuid: str) -> PipelineResult:
        return self._defer(
            Request("stream_metadata", {"uuid": stream_uuid}),
            lambda r: _metadata_from_json(r.attachments[0]),
        )

    def insert_chunks(self, chunks: Sequence[EncryptedChunk]) -> PipelineResult:
        if not chunks:
            raise ProtocolError("insert_chunks requires at least one chunk")
        return self._defer(
            Request("insert_chunks", {}, [encode_encrypted_chunk(chunk) for chunk in chunks]),
            lambda r: int(r.result["window_index"]),
        )

    def get_range(self, stream_uuid: str, time_range: TimeRange) -> PipelineResult:
        return self._defer(
            Request(
                "get_range",
                {"uuid": stream_uuid, "start": time_range.start, "end": time_range.end},
            ),
            lambda r: [decode_encrypted_chunk(blob) for blob in r.attachments],
        )

    def stat_range(self, stream_uuid: str, time_range: TimeRange) -> PipelineResult:
        return self._defer(
            Request(
                "stat_range",
                {"uuid": stream_uuid, "start": time_range.start, "end": time_range.end},
            ),
            lambda r: RemoteServerClient._stat_from_json(r.result["stat"]),
        )

    def put_grant(self, stream_uuid: str, principal_id: str, sealed_token: bytes) -> PipelineResult:
        return self._defer(
            Request(
                "put_grant", {"uuid": stream_uuid, "principal_id": principal_id}, [sealed_token]
            ),
            lambda r: int(r.result["grant_id"]),
        )

    def fetch_grants(self, stream_uuid: str, principal_id: str) -> PipelineResult:
        return self._defer(
            Request("fetch_grants", {"uuid": stream_uuid, "principal_id": principal_id}),
            lambda r: [retain(blob) for blob in r.attachments],
        )

    def fetch_envelopes(
        self, stream_uuid: str, resolution_chunks: int, window_start: int, window_end: int
    ) -> PipelineResult:
        return self._defer(
            Request(
                "fetch_envelopes",
                {
                    "uuid": stream_uuid,
                    "resolution_chunks": resolution_chunks,
                    "window_start": window_start,
                    "window_end": window_end,
                },
            ),
            lambda r: dict(zip(r.result["windows"], (retain(blob) for blob in r.attachments))),
        )


class _RemoteTokenStore:
    """Token-store facade forwarding grant/envelope traffic over the wire."""

    def __init__(self, client: "RemoteServerClient") -> None:
        self._client = client

    def put_grant(self, stream_uuid: str, principal_id: str, sealed_token: bytes) -> int:
        response = self._client._call(
            Request(
                "put_grant",
                {"uuid": stream_uuid, "principal_id": principal_id},
                [sealed_token],
            )
        )
        return int(response.result["grant_id"])

    def put_grants(self, grants: Sequence[Tuple[str, str, bytes]]) -> List[int]:
        """A cohort grant burst: one wire round trip, one storage ``multi_put``.

        Falls back to per-grant ``put_grant`` calls against dispatchers that
        predate the ``put_grants`` operation (detected via negotiation).
        """
        if not grants:
            return []
        if not self._client.supports_operation("put_grants"):
            return [self.put_grant(*grant) for grant in grants]
        response = self._client._call(
            Request(
                "put_grants",
                {
                    "grants": [
                        {"uuid": stream_uuid, "principal_id": principal_id}
                        for stream_uuid, principal_id, _sealed in grants
                    ]
                },
                [sealed for _uuid, _principal, sealed in grants],
            )
        )
        return [int(grant_id) for grant_id in response.result["grant_ids"]]

    def grants_for(self, stream_uuid: str, principal_id: str) -> List[bytes]:
        response = self._client._call(
            Request("fetch_grants", {"uuid": stream_uuid, "principal_id": principal_id})
        )
        # Copy-on-retain: zero-copy decode hands out views over the frame
        # buffer; sealed tokens outlive the response, so own the bytes here.
        return [retain(blob) for blob in response.attachments]

    def put_envelopes(
        self, stream_uuid: str, resolution_chunks: int, envelopes: Dict[int, bytes]
    ) -> None:
        windows = sorted(envelopes)
        self._client._call(
            Request(
                "put_envelopes",
                {
                    "uuid": stream_uuid,
                    "resolution_chunks": resolution_chunks,
                    "windows": windows,
                },
                [envelopes[window] for window in windows],
            )
        )

    def envelopes_for_range(
        self, stream_uuid: str, resolution_chunks: int, window_start: int, window_end: int
    ) -> Dict[int, bytes]:
        response = self._client._call(
            Request(
                "fetch_envelopes",
                {
                    "uuid": stream_uuid,
                    "resolution_chunks": resolution_chunks,
                    "window_start": window_start,
                    "window_end": window_end,
                },
            )
        )
        windows = response.result["windows"]
        return dict(zip(windows, (retain(blob) for blob in response.attachments)))


class RemoteServerClient:
    """A ServerEngine-compatible proxy over a TCP connection.

    ``protocol_version=2`` (the default) negotiates the pipelined wire and
    falls back to the v1 lockstep protocol when the peer does not speak it;
    ``protocol_version=1`` forces lockstep mode (one locked request/response
    exchange per call), which is also what legacy deployments of this
    client did on every call.

    ``flow_control`` (default on) honours the credit window the server
    advertised in ``hello``: frame submission blocks once window-many frames
    are unanswered.  ``overload_retries`` bounds how often a request the
    server shed with a typed ``overloaded`` response is re-sent (capped
    exponential backoff seeded by the server's retry-after hint) before the
    error surfaces to the caller.

    ``zero_copy`` (default on) sends request batches through
    ``socket.sendmsg`` as header + attachment views (no batch concatenation)
    and decodes responses as memoryviews over per-frame buffers;
    ``zero_copy=False`` is the legacy join-and-``sendall`` path, kept for
    comparison benchmarks.  ``compression=True`` offers zlib frame
    compression in ``hello`` and compresses requests over
    ``compress_threshold`` bytes once the server advertises support; off by
    default (chunk ciphertext is incompressible — see
    :mod:`repro.net.messages`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        protocol_version: int = PROTOCOL_VERSION,
        flow_control: bool = True,
        overload_retries: int = 4,
        overload_backoff_cap: float = 0.25,
        zero_copy: bool = True,
        compression: bool = False,
        compress_threshold: int = WIRE_COMPRESSION_THRESHOLD,
        tracing: bool = False,
    ) -> None:
        if protocol_version not in (1, 2):
            raise ProtocolError(f"unsupported protocol version {protocol_version}")
        self._address = (host, port)
        self._timeout = timeout
        self._socket = socket.create_connection(self._address, timeout=timeout)
        self._lock = threading.Lock()  # v1 lockstep + v2 write serialisation
        self._closed = False
        self.token_store = _RemoteTokenStore(self)
        self.wire_stats = WireStats()
        #: Distributed tracing (off by default — with it off the request path
        #: never touches a clock or builds a span).  When on, every call gets
        #: a client span, its context rides the request's ``trace`` header
        #: key, and the ``tracing`` capability is offered in ``hello`` so
        #: negotiating servers record matching server-side spans.  A server
        #: (or v1 peer) that never negotiated simply ignores the header key.
        self._tracing = bool(tracing)
        self._node_label = f"client:{host}:{port}"
        # Snapshot through the client, not the stats object: wrappers like
        # RemoteKeyValueStore swap in a shared WireStats after construction.
        self._metrics_key = REGISTRY.register(
            f"client.wire[{host}:{port}]", self, snapshot=lambda client: asdict(client.wire_stats)
        )
        self._pending: Dict[int, "Future[Response]"] = {}
        self._pending_lock = threading.Lock()
        self._correlation_ids = itertools.count(1)
        self._reader: Optional[threading.Thread] = None
        self._server_operations: Optional[frozenset] = None
        self._flow_control = bool(flow_control)
        self._credits: Optional[_CreditGate] = None
        self._overload_retries = max(0, int(overload_retries))
        self._overload_backoff_cap = max(0.0, float(overload_backoff_cap))
        self._zero_copy = bool(zero_copy)
        self._compression = bool(compression)
        self._compress_threshold = max(1, int(compress_threshold))
        #: True once both ends negotiated a compression scheme in ``hello``.
        self._compress = False
        #: The full ``hello`` result: capability fields beyond the op list
        #: (e.g. a shard routing table). Empty for v1 peers.
        self.hello_info: Dict[str, Any] = {}
        self.protocol_version = protocol_version
        if protocol_version == PROTOCOL_VERSION:
            self._negotiate()
        if self.protocol_version == PROTOCOL_VERSION:
            window = self.hello_info.get("credits")
            if self._flow_control and isinstance(window, int) and window > 0:
                # Created before the reader starts, so every piggybacked
                # grant the reader ever sees lands in the gate.  (The hello
                # exchange itself was synchronous — its grant is already
                # accounted for by starting at the full window.)
                self._credits = _CreditGate(window)
            # Idle connections must not kill the reader thread: per-request
            # deadlines are enforced on the futures, not on the socket.
            self._socket.settimeout(None)
            self._reader = threading.Thread(
                target=self._read_loop, daemon=True, name="tc-client-reader"
            )
            self._reader.start()

    @property
    def credit_window(self) -> int:
        """The negotiated flow-control window (0 when flow control is off)."""
        return self._credits.window if self._credits is not None else 0

    @property
    def credits_available(self) -> int:
        return self._credits.available if self._credits is not None else 0

    # -- connection management ---------------------------------------------------------

    def _negotiate(self) -> None:
        """One synchronous v2 ``hello``; fall back to v1 lockstep when rejected.

        Only peer-rejection signals trigger the downgrade: a v1-only peer
        hangs up on the unknown ``T2`` magic (EOF / connection reset) or
        answers something unparseable.  A *timeout* means the peer is slow,
        not v1 — silently pinning such a session to lockstep would degrade
        every later call — so it raises instead.
        """
        try:
            hello_args: Dict[str, Any] = {"protocol": PROTOCOL_VERSION}
            if self._compression:
                # Offering a scheme also means: compressed responses welcome.
                hello_args["compression"] = list(WIRE_COMPRESSION_SCHEMES)
            if self._tracing:
                hello_args["tracing"] = True
            write_frame_v2(self._socket, 0, Request("hello", hello_args).encode())
            frame = read_any_frame(self._socket)
            response = Response.decode(frame.payload)
            if not response.ok or int(response.result.get("protocol", 1)) < PROTOCOL_VERSION:
                raise ProtocolError("peer does not speak protocol v2")
            self._server_operations = frozenset(response.result.get("operations", ()))
            self.hello_info = dict(response.result)
            advertised = self.hello_info.get("compression") or ()
            self._compress = self._compression and any(
                scheme in advertised for scheme in WIRE_COMPRESSION_SCHEMES
            )
        except socket.timeout as exc:
            raise TransportError(
                f"hello negotiation with {self._address} timed out: {exc}"
            ) from exc
        except (TimeCryptError, ConnectionError):
            # A v1-only peer closes the connection on the unknown magic;
            # reconnect and stay in lockstep mode.
            logger.info("peer at %s rejected hello; redialling in v1 lockstep mode", self._address)
            try:
                self._socket.close()
            except OSError:
                pass
            self._socket = socket.create_connection(self._address, timeout=self._timeout)
            self.protocol_version = 1

    def supports_operation(self, operation: str) -> bool:
        """Whether negotiation advertised an operation (v1 peers: assume not)."""
        if self._server_operations is None:
            return False
        return operation in self._server_operations

    def close(self) -> None:
        self._closed = True
        REGISTRY.unregister(self._metrics_key)
        try:
            # shutdown (not just close) reliably wakes the reader thread's
            # blocking recv with EOF on every platform.
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:
            pass
        if self._reader is not None:
            self._reader.join(timeout=5)
            self._reader = None

    def __enter__(self) -> "RemoteServerClient":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    # -- v2 transport ----------------------------------------------------------------

    def _read_loop(self) -> None:
        """Reader thread: resolve response frames against the pending table.

        With ``zero_copy`` the reader pulls payloads straight into per-frame
        buffers via ``recv_into`` and decodes attachments as views over them
        — the engine-facing accessors (``get_range``, grant/envelope pickup)
        materialize copies only where results are retained.
        """
        reader = FrameReader(self._socket, views=self._zero_copy)
        while True:
            try:
                frame = reader.read()
                response = Response.decode(frame.payload)
            except (TimeCryptError, OSError) as exc:
                self._fail_pending(exc)
                return
            self.wire_stats.bytes_received += len(frame.payload) + (15 if frame.version == 2 else 6)
            with self._pending_lock:
                future = self._pending.pop(frame.correlation_id, None)
            if self._credits is not None and response.credit_grant:
                # Replenish before resolving the future: a caller chaining
                # sends off the result must see the returned credit.
                self._credits.grant(response.credit_grant)
            self.wire_stats.responses_received += 1
            if future is not None:
                future.set_result(response)

    def _fail_pending(self, cause: Exception) -> None:
        if self._closed:
            error: Exception = TransportError("connection closed")
        else:
            error = TransportError(f"connection to {self._address} failed: {cause}")
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        if self._credits is not None and pending:
            # Responses that will never arrive must still return their
            # credits, or every sender blocked on the window hangs until its
            # timeout.  (grant() clamps at the window, so requests that never
            # consumed a credit cannot inflate it.)
            self._credits.grant(len(pending))
        for future in pending:
            if not future.done():
                future.set_exception(error)

    def _encode_batch(self, requests: Sequence[Request]) -> List[List[Any]]:
        """Message-segment lists for a batch, compressed where negotiated.

        Zero-copy mode keeps attachments as uncoalesced segments for the
        vectored writer; legacy mode joins each message into one payload
        (the old copying behaviour, kept as the benchmark's before-arm).
        """
        encoded: List[List[Any]] = []
        for request in requests:
            segments = request.encode_segments() if self._zero_copy else [request.encode()]
            if self._compress:
                segments, compressed = maybe_compress_segments(segments, self._compress_threshold)
                if compressed:
                    self.wire_stats.frames_compressed += 1
            encoded.append(segments)
        return encoded

    def _write_frames(self, frames: Sequence[List[Any]]) -> None:
        """Ship framed segment lists; vectored when zero-copy, joined sendall otherwise."""
        if self._zero_copy:
            flat = [segment for frame in frames for segment in frame]
            _syscalls, sent, coalesced = write_vectored(self._socket, flat)
            self.wire_stats.vectored_writes += 1
            self.wire_stats.frames_coalesced += coalesced
            self.wire_stats.bytes_sent += sent
        else:
            MEMORY_COUNTERS.payload_copies += 1
            data = b"".join(segment for frame in frames for segment in frame)
            self._socket.sendall(data)
            self.wire_stats.bytes_sent += len(data)

    def _send_requests(self, requests: Sequence[Request]) -> List["Future[Response]"]:
        """Frame and write a request batch in one vectored write; returns futures."""
        # Encode outside the pending lock: a multi-megabyte chunk batch must
        # not stall the reader thread's response resolution while it JSONs.
        # Framing happens *before* any future is registered — an oversized
        # payload raises here without leaving ghost correlation ids in the
        # pending table that nothing would ever resolve.
        messages = self._encode_batch(requests)
        with self._pending_lock:
            correlation_ids = [next(self._correlation_ids) for _message in messages]
        if self._zero_copy:
            frames = [
                encode_frame_segments_v2(correlation_id, segments)
                for correlation_id, segments in zip(correlation_ids, messages)
            ]
        else:
            frames = [
                [encode_frame_v2(correlation_id, segments[0])]
                for correlation_id, segments in zip(correlation_ids, messages)
            ]
        futures: List["Future[Response]"] = []
        with self._pending_lock:
            for correlation_id in correlation_ids:
                future: "Future[Response]" = Future()
                self._pending[correlation_id] = future
                futures.append(future)
        # A reader that died *before* the registration above has already
        # swept _pending and will never fail these futures; checking after
        # registration closes the race (a reader dying later sweeps them).
        if self._reader is not None and not self._reader.is_alive():
            self._fail_pending(TransportError("reader thread terminated"))
            return futures
        if self._credits is None:
            try:
                with self._lock:
                    # repro: allow[REPRO004] _lock exists to serialize frame writes on this socket; holding it across sendall is the design, and only writers contend on it
                    self._write_frames(frames)
            except OSError as exc:
                self._fail_pending(exc)
            self.wire_stats.requests_sent += len(requests)
            return futures
        # Flow-controlled path: the batch goes out in credit-sized bursts, so
        # at most window-many frames are ever unanswered on this connection.
        sent = 0
        while sent < len(frames):
            if self._credits.available <= 0:
                self.wire_stats.credit_stalls += 1
            granted = self._credits.acquire(len(frames) - sent, self._timeout)
            if granted == 0:
                # The window never refilled within the deadline.  Fail only
                # the unsent tail — its correlation ids never hit the wire;
                # the frames already sent may still be answered normally.
                error = TransportError(
                    f"timed out waiting for flow-control credits from {self._address}"
                )
                with self._pending_lock:
                    stale = [
                        self._pending.pop(correlation_id)
                        for correlation_id in correlation_ids[sent:]
                        if correlation_id in self._pending
                    ]
                for future in stale:
                    if not future.done():
                        future.set_exception(error)
                return futures
            try:
                with self._lock:
                    # repro: allow[REPRO004] same write-serialization design as the uncontrolled path above: _lock guards the socket write stream itself
                    self._write_frames(frames[sent : sent + granted])
            except OSError as exc:
                self._fail_pending(exc)
                return futures
            sent += granted
            self.wire_stats.requests_sent += granted
        return futures

    def _await(self, future: "Future[Response]") -> Response:
        try:
            return future.result(timeout=self._timeout)
        except TimeCryptError:
            raise
        except Exception as exc:  # concurrent.futures.TimeoutError et al.
            raise TransportError(f"request to {self._address} timed out or failed: {exc}") from exc

    # -- tracing -----------------------------------------------------------------------

    def _begin_trace(
        self, requests: Sequence[Request]
    ) -> Optional[Tuple[List[Optional[Dict[str, Any]]], int]]:
        """Attach trace contexts and open client spans (no-op with tracing off).

        The context is attached to the :class:`Request` itself, exactly once:
        a request re-sent after an ``overloaded`` shed keeps its original
        trace and span ids, so the retried attempt is the *same* span on the
        wire (and opens no duplicate client span here).  The parent is the
        thread's current context — inside a traced server handler (a router
        forwarding, an engine fetching from storage) the outbound span
        becomes a child of the server span, which is what stitches the
        cross-tier tree together.
        """
        if not self._tracing:
            return None
        parent = current_context()
        spans: List[Optional[Dict[str, Any]]] = []
        for request in requests:
            if request.trace is not None:
                spans.append(None)
                continue
            trace_id = parent[0] if parent is not None else new_trace_id()
            span_id = new_span_id()
            request.trace = (trace_id, span_id)
            spans.append(
                {
                    "trace_id": trace_id,
                    "span_id": span_id,
                    "parent_id": parent[1] if parent is not None else None,
                    "node": self._node_label,
                    "kind": "client",
                    "op": request.operation,
                }
            )
        return spans, time.monotonic_ns()

    def _finish_trace(
        self,
        begun: Optional[Tuple[List[Optional[Dict[str, Any]]], int]],
        responses: Optional[Sequence[Response]] = None,
        error: Optional[Exception] = None,
    ) -> None:
        if begun is None:
            return
        spans, start_ns = begun
        total_ms = (time.monotonic_ns() - start_ns) / 1e6
        for index, span in enumerate(spans):
            if span is None:
                continue
            span["total_ms"] = total_ms
            if error is not None:
                span["status"] = type(error).__name__
            elif responses is not None and index < len(responses):
                response = responses[index]
                span["status"] = "ok" if response.ok else (response.error_type or "error")
            else:
                span["status"] = "ok"
            SPANS.record(span)

    # -- calling styles -----------------------------------------------------------------

    def _call(self, request: Request) -> Response:
        """One request, one round trip; raises the remote error on failure."""
        begun = self._begin_trace((request,))
        try:
            if self.protocol_version == 1:
                response = self._call_lockstep(request)
            else:
                future = self._send_requests([request])[0]
                self.wire_stats.round_trips += 1
                response = self._await(future)
                if _is_overloaded(response):
                    response = self._retry_overloaded([request], [response])[0]
        except Exception as exc:
            self._finish_trace(begun, error=exc)
            raise
        self._finish_trace(begun, responses=(response,))
        if not response.ok:
            _raise_remote(response)
        return response

    def _overload_delay(self, response: Response, attempt: int) -> float:
        """Backoff before re-sending a shed request: server hint × 2^attempt, capped."""
        hint = response.result.get("retry_after_ms") if isinstance(response.result, dict) else None
        base = (hint if isinstance(hint, (int, float)) and hint > 0 else 10.0) / 1000.0
        return min(self._overload_backoff_cap, base * (2 ** attempt))

    def _retry_overloaded(self, requests: List[Request], responses: List[Response]) -> List[Response]:
        """Re-send requests the server shed, with capped exponential backoff.

        Only the shed slots are retried (successes and real errors keep
        their responses); a request still overloaded after the retry budget
        keeps its ``overloaded`` response, which callers surface as
        :class:`~repro.exceptions.OverloadedError`.
        """
        for attempt in range(self._overload_retries):
            slots = [index for index, response in enumerate(responses) if _is_overloaded(response)]
            if not slots:
                break
            time.sleep(self._overload_delay(responses[slots[0]], attempt))
            self.wire_stats.overload_retries += len(slots)
            futures = self._send_requests([requests[index] for index in slots])
            self.wire_stats.round_trips += 1
            for slot, future in zip(slots, futures):
                responses[slot] = self._await(future)
        return responses

    def _call_lockstep(self, request: Request) -> Response:
        with self._lock:
            try:
                write_frame(self._socket, request.encode())
                self.wire_stats.requests_sent += 1
                self.wire_stats.round_trips += 1
                response = Response.decode(read_frame(self._socket))
                self.wire_stats.responses_received += 1
            except OSError as exc:
                raise TransportError(f"connection to {self._address} failed: {exc}") from exc
        return response

    def call_many(self, requests: Sequence[Request]) -> List[Response]:
        """Ship a request batch in one round trip; responses in request order.

        Unlike :meth:`_call` this does **not** raise on per-request errors —
        each returned :class:`Response` carries its own outcome, so one
        failed request inside a batch cannot mask the others.  In v1
        lockstep mode the batch degrades to sequential round trips.
        """
        if not requests:
            return []
        begun = self._begin_trace(requests)
        try:
            if self.protocol_version == 1:
                responses = [self._call_lockstep(request) for request in requests]
            else:
                futures = self._send_requests(requests)
                self.wire_stats.round_trips += 1
                self.wire_stats.batches_sent += 1
                responses = [self._await(future) for future in futures]
                responses = self._retry_overloaded(list(requests), responses)
        except Exception as exc:
            self._finish_trace(begun, error=exc)
            raise
        self._finish_trace(begun, responses=responses)
        return responses

    def pipeline(self) -> RequestPipeline:
        """A deferred-call context; everything inside flushes as one batch."""
        return RequestPipeline(self)

    def ping(self) -> bool:
        return bool(self._call(Request("ping")).result.get("pong"))

    # -- ServerEngine-compatible surface ----------------------------------------------

    def create_stream(self, metadata: StreamMetadata) -> None:
        self._call(Request("create_stream", {}, [_metadata_to_json(metadata)]))

    def delete_stream(self, stream_uuid: str) -> None:
        self._call(Request("delete_stream", {"uuid": stream_uuid}))

    def stream_metadata(self, stream_uuid: str) -> StreamMetadata:
        response = self._call(Request("stream_metadata", {"uuid": stream_uuid}))
        if not response.attachments:
            raise ProtocolError("stream_metadata response missing attachment")
        return _metadata_from_json(response.attachments[0])

    def stream_head(self, stream_uuid: str) -> int:
        return int(self._call(Request("stream_head", {"uuid": stream_uuid})).result["head"])

    def rollup_stream(
        self, stream_uuid: str, resolution_windows: int, before_time: Optional[int] = None
    ) -> int:
        response = self._call(
            Request(
                "rollup_stream",
                {
                    "uuid": stream_uuid,
                    "resolution_windows": resolution_windows,
                    "before_time": before_time,
                },
            )
        )
        return int(response.result["deleted"])

    def insert_chunk(self, chunk: EncryptedChunk) -> int:
        response = self._call(Request("insert_chunk", {}, [encode_encrypted_chunk(chunk)]))
        return int(response.result["window_index"])

    def insert_chunks(self, chunks: Sequence[EncryptedChunk]) -> int:
        """Bulk ingest over one round trip; returns the first appended window index.

        Dispatchers that predate the ``insert_chunks`` wire operation (not
        advertised by ``hello``, or rejected at dispatch) get the batch as
        per-chunk ``insert_chunk`` calls instead; the downgrade is remembered
        so later batches skip the failed round trip.
        """
        if not chunks:
            raise ProtocolError("insert_chunks requires at least one chunk")
        if self._server_operations is not None and not self.supports_operation("insert_chunks"):
            return self._insert_chunks_one_by_one(chunks)
        try:
            response = self._call(
                Request("insert_chunks", {}, [encode_encrypted_chunk(chunk) for chunk in chunks])
            )
        except TimeCryptError as exc:
            # Remote errors re-raise by class *name*, which may surface as the
            # base class — match on the message, not the type.  A server
            # without the op rejects it in Request.decode ("unknown
            # operation", messages.py) before dispatch ("unsupported
            # operation") could ever see it; accept both spellings.
            message = str(exc)
            if "unsupported operation" not in message and "unknown operation" not in message:
                raise
            self._server_operations = (self._server_operations or frozenset()) - {"insert_chunks"}
            return self._insert_chunks_one_by_one(chunks)
        return int(response.result["window_index"])

    def _insert_chunks_one_by_one(self, chunks: Sequence[EncryptedChunk]) -> int:
        return min(self.insert_chunk(chunk) for chunk in chunks)

    def get_range(self, stream_uuid: str, time_range: TimeRange) -> List[EncryptedChunk]:
        response = self._call(
            Request("get_range", {"uuid": stream_uuid, "start": time_range.start, "end": time_range.end})
        )
        return [decode_encrypted_chunk(blob) for blob in response.attachments]

    def delete_range(self, stream_uuid: str, time_range: TimeRange) -> int:
        response = self._call(
            Request(
                "delete_range",
                {"uuid": stream_uuid, "start": time_range.start, "end": time_range.end},
            )
        )
        return int(response.result["deleted"])

    @staticmethod
    def _stat_from_json(payload: Dict) -> StatQueryResult:
        return StatQueryResult(
            stream_uuid=payload["stream_uuid"],
            window_start=payload["window_start"],
            window_end=payload["window_end"],
            cells=tuple(
                HEACCiphertext(value=cell["value"], window_start=cell["start"], window_end=cell["end"])
                for cell in payload["cells"]
            ),
            component_names=tuple(payload["component_names"]),
            num_index_nodes=payload["num_index_nodes"],
        )

    def stat_range(self, stream_uuid: str, time_range: TimeRange) -> StatQueryResult:
        response = self._call(
            Request("stat_range", {"uuid": stream_uuid, "start": time_range.start, "end": time_range.end})
        )
        return self._stat_from_json(response.result["stat"])

    def stat_series(
        self, stream_uuid: str, time_range: TimeRange, granularity_windows: int
    ) -> List[StatQueryResult]:
        response = self._call(
            Request(
                "stat_series",
                {
                    "uuid": stream_uuid,
                    "start": time_range.start,
                    "end": time_range.end,
                    "granularity_windows": granularity_windows,
                },
            )
        )
        return [self._stat_from_json(item) for item in response.result["series"]]

    def stat_range_multi(
        self, stream_uuids: Sequence[str], time_range: TimeRange
    ) -> MultiStreamAggregate:
        response = self._call(
            Request(
                "stat_range_multi",
                {"uuids": list(stream_uuids), "start": time_range.start, "end": time_range.end},
            )
        )
        return MultiStreamAggregate(
            values=tuple(response.result["values"]),
            component_names=tuple(response.result["component_names"]),
            per_stream_intervals=tuple(
                (item[0], item[1], item[2]) for item in response.result["per_stream_intervals"]
            ),
        )

    # -- grant / envelope passthrough (ServerEngine-compatible) -----------------------------

    def put_grant(self, stream_uuid: str, principal_id: str, sealed_token: bytes) -> int:
        return self.token_store.put_grant(stream_uuid, principal_id, sealed_token)

    def put_grants(self, grants: Sequence[Tuple[str, str, bytes]]) -> List[int]:
        return self.token_store.put_grants(grants)

    def fetch_grants(self, stream_uuid: str, principal_id: str) -> List[bytes]:
        return self.token_store.grants_for(stream_uuid, principal_id)

    def fetch_envelopes(
        self, stream_uuid: str, resolution_chunks: int, window_start: int, window_end: int
    ) -> Dict[int, bytes]:
        return self.token_store.envelopes_for_range(
            stream_uuid, resolution_chunks, window_start, window_end
        )


class _ShardedTokenStore:
    """Token-store facade routing grant/envelope traffic to the owning shard."""

    def __init__(self, client: "ShardedServerClient") -> None:
        self._client = client

    def put_grant(self, stream_uuid: str, principal_id: str, sealed_token: bytes) -> int:
        return self._client.put_grant(stream_uuid, principal_id, sealed_token)

    def put_grants(self, grants: Sequence[Tuple[str, str, bytes]]) -> List[int]:
        return self._client.put_grants(grants)

    def grants_for(self, stream_uuid: str, principal_id: str) -> List[bytes]:
        return self._client.fetch_grants(stream_uuid, principal_id)

    def put_envelopes(
        self, stream_uuid: str, resolution_chunks: int, envelopes: Dict[int, bytes]
    ) -> None:
        windows = sorted(envelopes)
        self._client._call(
            stream_uuid,
            Request(
                "put_envelopes",
                {
                    "uuid": stream_uuid,
                    "resolution_chunks": resolution_chunks,
                    "windows": windows,
                },
                [envelopes[window] for window in windows],
            ),
        )

    def envelopes_for_range(
        self, stream_uuid: str, resolution_chunks: int, window_start: int, window_end: int
    ) -> Dict[int, bytes]:
        return self._client.fetch_envelopes(
            stream_uuid, resolution_chunks, window_start, window_end
        )


class ShardedServerClient:
    """A routing-aware client for the sharded engine tier.

    Dials the :class:`~repro.server.router.StreamRouter`, learns the shard
    routing table from its ``hello``, and from then on sends every stream
    operation *directly* to the owning engine over one multiplexed
    connection per shard — the router is only revisited to refresh the
    table.  A ``WrongShardError`` redirect (the client's table was stale)
    triggers a refresh and a bounded re-route; an engine that died
    mid-workload surfaces as a transport error, which likewise refreshes
    the table and redials, so a membership change needs no client restart.
    """

    _MAX_ROUTE_ATTEMPTS = 5

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        flow_control: bool = True,
        overload_retries: int = 4,
        zero_copy: bool = True,
        compression: bool = False,
        tracing: bool = False,
    ) -> None:
        self._router_address = (host, port)
        self._timeout = timeout
        self._flow_control = bool(flow_control)
        self._overload_retries = max(0, int(overload_retries))
        self._zero_copy = bool(zero_copy)
        self._compression = bool(compression)
        self._tracing = bool(tracing)
        self._lock = threading.Lock()
        self._router: Optional[RemoteServerClient] = None
        self._engines: Dict[str, Tuple[Tuple[str, int], RemoteServerClient]] = {}
        self._table = self._table_from_hello(self._router_client())
        self.token_store = _ShardedTokenStore(self)

    # -- table management -------------------------------------------------------

    def _table_from_hello(self, client: RemoteServerClient) -> ShardRoutingTable:
        payload = client.hello_info.get("routing")
        if payload is None:
            raise ProtocolError(
                f"peer at {self._router_address} did not advertise a shard routing table"
            )
        return ShardRoutingTable.from_payload(payload)

    @property
    def routing_table(self) -> ShardRoutingTable:
        return self._table

    @property
    def routing_epoch(self) -> int:
        return self._table.epoch

    def _fetch_table(self, client: RemoteServerClient) -> Optional[ShardRoutingTable]:
        """Ask one peer for its current table; ``None`` on any failure."""
        try:
            response = client.call_many([Request("routing_table")])[0]
        except (TransportError, OSError):
            return None
        payload = response.result.get("routing") if response.ok else None
        if payload is None:
            return None
        try:
            return ShardRoutingTable.from_payload(payload)
        except ProtocolError:
            return None

    def _adopt_table(self, table: Optional[ShardRoutingTable]) -> bool:
        """Adopt a strictly newer table; returns whether the epoch advanced."""
        if table is None or table.epoch <= self._table.epoch:
            return False
        self._table = table
        return True

    def _refresh_table(self) -> bool:
        """Refresh from the router (redialling once), else from any live shard."""
        for _attempt in range(2):
            try:
                client = self._router_client()
            except (TransportError, OSError):
                self._drop_router()
                continue
            table = self._fetch_table(client)
            if table is None:
                self._drop_router()
                continue
            return self._adopt_table(table)
        for name in self._table.engine_names:
            with self._lock:
                cached = self._engines.get(name)
            if cached is None:
                continue
            table = self._fetch_table(cached[1])
            if table is not None:
                return self._adopt_table(table)
        return False

    # -- connections ------------------------------------------------------------

    def _router_client(self) -> RemoteServerClient:
        with self._lock:
            if self._router is not None:
                return self._router
        # Dial outside the lock, like _engine_client below: a dead router
        # must not wedge threads that only need an already-cached transport.
        client = RemoteServerClient(
            self._router_address[0],
            self._router_address[1],
            timeout=self._timeout,
            flow_control=self._flow_control,
            overload_retries=self._overload_retries,
            zero_copy=self._zero_copy,
            compression=self._compression,
            tracing=self._tracing,
        )
        with self._lock:
            if self._router is None:
                self._router = client
                return client
            winner = self._router
        # Lost a concurrent dial race: keep the installed transport.
        client.close()
        return winner

    def _drop_router(self) -> None:
        with self._lock:
            router, self._router = self._router, None
        if router is not None:
            router.close()

    def _engine_client(self, name: str) -> RemoteServerClient:
        address = self._table.address_of(name)
        with self._lock:
            cached = self._engines.get(name)
            if cached is not None and cached[0] == address:
                return cached[1]
            stale = self._engines.pop(name, None)
        if stale is not None:
            stale[1].close()
        client = RemoteServerClient(
            address[0],
            address[1],
            timeout=self._timeout,
            flow_control=self._flow_control,
            overload_retries=self._overload_retries,
            zero_copy=self._zero_copy,
            compression=self._compression,
            tracing=self._tracing,
        )
        with self._lock:
            self._engines[name] = (address, client)
        return client

    def _drop_engine(self, name: str) -> None:
        with self._lock:
            cached = self._engines.pop(name, None)
        if cached is not None:
            cached[1].close()

    def close(self) -> None:
        self._drop_router()
        with self._lock:
            engines = [client for _address, client in self._engines.values()]
            self._engines.clear()
        for client in engines:
            client.close()

    def __enter__(self) -> "ShardedServerClient":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    @property
    def wire_stats(self) -> WireStats:
        """Aggregate wire accounting across the router and all shard connections."""
        total = WireStats()
        with self._lock:
            clients = [client for _address, client in self._engines.values()]
            if self._router is not None:
                clients.append(self._router)
        for client in clients:
            stats = client.wire_stats
            total.requests_sent += stats.requests_sent
            total.responses_received += stats.responses_received
            total.round_trips += stats.round_trips
            total.batches_sent += stats.batches_sent
            total.credit_stalls += stats.credit_stalls
            total.overload_retries += stats.overload_retries
            total.bytes_sent += stats.bytes_sent
            total.bytes_received += stats.bytes_received
            total.vectored_writes += stats.vectored_writes
            total.frames_coalesced += stats.frames_coalesced
            total.frames_compressed += stats.frames_compressed
        return total

    # -- routing ----------------------------------------------------------------

    def _routed(self, stream_uuid: str, request: Request) -> Response:
        """Send one request to the stream's owner, chasing redirects boundedly.

        Transport loss drops the shard connection, refreshes the table and
        retries; a ``wrong_shard`` redirect refreshes the table, falling back
        to the redirect's owner hint only when no newer table materialises.
        A topology that never converges (peers answering for each other's
        shards) is reported as a protocol error instead of looping forever.
        """
        owner_hint: Optional[str] = None
        for _attempt in range(self._MAX_ROUTE_ATTEMPTS):
            table = self._table
            if owner_hint is not None and owner_hint in table.engine_names:
                owner = owner_hint
            else:
                owner = table.owner_of(stream_uuid)
            owner_hint = None
            try:
                client = self._engine_client(owner)
                response = client.call_many([request])[0]
            except (TransportError, OSError):
                logger.info(
                    "engine shard '%s' unreachable; refreshing table and redialling", owner
                )
                self._drop_engine(owner)
                self._refresh_table()
                continue
            if response.ok or response.error_type != "WrongShardError":
                return response
            progressed = self._refresh_table()
            if not progressed and self._table.epoch == table.epoch:
                hinted = response.result.get("owner")
                if hinted in table.engine_names and hinted != owner:
                    owner_hint = hinted
        raise ProtocolError(
            f"shard routing for stream '{stream_uuid}' did not converge after "
            f"{self._MAX_ROUTE_ATTEMPTS} attempts"
        )

    def _call(self, stream_uuid: str, request: Request) -> Response:
        response = self._routed(stream_uuid, request)
        if not response.ok:
            _raise_remote(response)
        return response

    def ping(self) -> bool:
        """Liveness of the tier: the router, or failing that any live shard."""
        try:
            return self._router_client().ping()
        except (TimeCryptError, OSError):
            self._drop_router()
        for name in self._table.engine_names:
            try:
                return self._engine_client(name).ping()
            except (TimeCryptError, OSError):
                self._drop_engine(name)
        return False

    # -- ServerEngine-compatible surface ----------------------------------------

    def create_stream(self, metadata: StreamMetadata) -> None:
        self._call(metadata.uuid, Request("create_stream", {}, [_metadata_to_json(metadata)]))

    def delete_stream(self, stream_uuid: str) -> None:
        self._call(stream_uuid, Request("delete_stream", {"uuid": stream_uuid}))

    def stream_metadata(self, stream_uuid: str) -> StreamMetadata:
        response = self._call(stream_uuid, Request("stream_metadata", {"uuid": stream_uuid}))
        if not response.attachments:
            raise ProtocolError("stream_metadata response missing attachment")
        return _metadata_from_json(response.attachments[0])

    def stream_head(self, stream_uuid: str) -> int:
        response = self._call(stream_uuid, Request("stream_head", {"uuid": stream_uuid}))
        return int(response.result["head"])

    def rollup_stream(
        self, stream_uuid: str, resolution_windows: int, before_time: Optional[int] = None
    ) -> int:
        response = self._call(
            stream_uuid,
            Request(
                "rollup_stream",
                {
                    "uuid": stream_uuid,
                    "resolution_windows": resolution_windows,
                    "before_time": before_time,
                },
            ),
        )
        return int(response.result["deleted"])

    def insert_chunk(self, chunk: EncryptedChunk) -> int:
        response = self._call(
            chunk.stream_uuid, Request("insert_chunk", {}, [encode_encrypted_chunk(chunk)])
        )
        return int(response.result["window_index"])

    def insert_chunks(self, chunks: Sequence[EncryptedChunk]) -> int:
        if not chunks:
            raise ProtocolError("insert_chunks requires at least one chunk")
        response = self._call(
            chunks[0].stream_uuid,
            Request("insert_chunks", {}, [encode_encrypted_chunk(chunk) for chunk in chunks]),
        )
        return int(response.result["window_index"])

    def get_range(self, stream_uuid: str, time_range: TimeRange) -> List[EncryptedChunk]:
        response = self._call(
            stream_uuid,
            Request(
                "get_range",
                {"uuid": stream_uuid, "start": time_range.start, "end": time_range.end},
            ),
        )
        return [decode_encrypted_chunk(blob) for blob in response.attachments]

    def delete_range(self, stream_uuid: str, time_range: TimeRange) -> int:
        response = self._call(
            stream_uuid,
            Request(
                "delete_range",
                {"uuid": stream_uuid, "start": time_range.start, "end": time_range.end},
            ),
        )
        return int(response.result["deleted"])

    def stat_range(self, stream_uuid: str, time_range: TimeRange) -> StatQueryResult:
        response = self._call(
            stream_uuid,
            Request(
                "stat_range",
                {"uuid": stream_uuid, "start": time_range.start, "end": time_range.end},
            ),
        )
        return RemoteServerClient._stat_from_json(response.result["stat"])

    def stat_series(
        self, stream_uuid: str, time_range: TimeRange, granularity_windows: int
    ) -> List[StatQueryResult]:
        response = self._call(
            stream_uuid,
            Request(
                "stat_series",
                {
                    "uuid": stream_uuid,
                    "start": time_range.start,
                    "end": time_range.end,
                    "granularity_windows": granularity_windows,
                },
            ),
        )
        return [RemoteServerClient._stat_from_json(item) for item in response.result["series"]]

    def stat_range_multi(
        self, stream_uuids: Sequence[str], time_range: TimeRange
    ) -> MultiStreamAggregate:
        """Inter-stream query: forwarded whole when one shard owns every
        stream, otherwise per-stream ``stat_range`` calls recombined exactly
        as a single engine would (:meth:`MultiStreamAggregate.combine` over
        results in request order)."""
        uuids = list(stream_uuids)
        if not uuids:
            raise QueryError("an inter-stream query needs at least one stream")
        table = self._table
        owners = {table.owner_of(stream_uuid) for stream_uuid in uuids}
        if len(owners) == 1:
            response = self._call(
                uuids[0],
                Request(
                    "stat_range_multi",
                    {"uuids": uuids, "start": time_range.start, "end": time_range.end},
                ),
            )
            return MultiStreamAggregate(
                values=tuple(response.result["values"]),
                component_names=tuple(response.result["component_names"]),
                per_stream_intervals=tuple(
                    (item[0], item[1], item[2])
                    for item in response.result["per_stream_intervals"]
                ),
            )
        return MultiStreamAggregate.combine(
            [self.stat_range(stream_uuid, time_range) for stream_uuid in uuids]
        )

    # -- grant / envelope passthrough -------------------------------------------

    def put_grant(self, stream_uuid: str, principal_id: str, sealed_token: bytes) -> int:
        response = self._call(
            stream_uuid,
            Request(
                "put_grant", {"uuid": stream_uuid, "principal_id": principal_id}, [sealed_token]
            ),
        )
        return int(response.result["grant_id"])

    def put_grants(self, grants: Sequence[Tuple[str, str, bytes]]) -> List[int]:
        """A grant burst, split into one ``put_grants`` per owning shard.

        Ids are stitched back into input order.  A membership change racing
        the burst can strand a sub-batch on a shard that no longer owns one
        of its streams; that surfaces as the redirect error rather than a
        silent partial write.
        """
        if not grants:
            return []
        table = self._table
        slots_by_owner: Dict[str, List[int]] = {}
        for slot, (stream_uuid, _principal, _sealed) in enumerate(grants):
            slots_by_owner.setdefault(table.owner_of(stream_uuid), []).append(slot)
        grant_ids: List[int] = [0] * len(grants)
        for owner in sorted(slots_by_owner):
            slots = slots_by_owner[owner]
            subset = [grants[slot] for slot in slots]
            response = self._call(
                subset[0][0],
                Request(
                    "put_grants",
                    {
                        "grants": [
                            {"uuid": stream_uuid, "principal_id": principal_id}
                            for stream_uuid, principal_id, _sealed in subset
                        ]
                    },
                    [sealed for _uuid, _principal, sealed in subset],
                ),
            )
            for slot, grant_id in zip(slots, response.result["grant_ids"]):
                grant_ids[slot] = int(grant_id)
        return grant_ids

    def fetch_grants(self, stream_uuid: str, principal_id: str) -> List[bytes]:
        response = self._call(
            stream_uuid,
            Request("fetch_grants", {"uuid": stream_uuid, "principal_id": principal_id}),
        )
        return list(response.attachments)

    def fetch_envelopes(
        self, stream_uuid: str, resolution_chunks: int, window_start: int, window_end: int
    ) -> Dict[int, bytes]:
        response = self._call(
            stream_uuid,
            Request(
                "fetch_envelopes",
                {
                    "uuid": stream_uuid,
                    "resolution_chunks": resolution_chunks,
                    "window_start": window_start,
                    "window_end": window_end,
                },
            ),
        )
        return dict(zip(response.result["windows"], response.attachments))
