"""The network client: a remote ServerEngine proxy.

:class:`RemoteServerClient` speaks the framed wire protocol to a
:class:`~repro.net.server.TimeCryptTCPServer` and exposes the same method
surface as :class:`~repro.server.engine.ServerEngine`, so the
:class:`~repro.core.timecrypt.TimeCrypt` facade and the consumer client work
unchanged whether the server is in-process or across the network.
"""

from __future__ import annotations

import socket
import threading
from typing import Dict, List, Optional, Sequence

from repro.crypto.heac import HEACCiphertext
from repro.exceptions import ProtocolError, TimeCryptError, TransportError
from repro.net.framing import read_frame, write_frame
from repro.net.messages import Request, Response
from repro.server.engine import _metadata_from_json, _metadata_to_json
from repro.server.query_executor import MultiStreamAggregate, StatQueryResult
from repro.timeseries.serialization import (
    EncryptedChunk,
    decode_encrypted_chunk,
    encode_encrypted_chunk,
)
from repro.timeseries.stream import StreamMetadata
from repro.util.timeutil import TimeRange

#: Exception classes re-raised by name when the server reports them.
_ERROR_TYPES: Dict[str, type] = {
    cls.__name__: cls
    for cls in TimeCryptError.__subclasses__() + [TimeCryptError]
}


def _raise_remote(response: Response) -> None:
    error_cls = _ERROR_TYPES.get(response.error_type or "", TimeCryptError)
    raise error_cls(response.error or "remote error")


class _RemoteTokenStore:
    """Token-store facade forwarding grant/envelope traffic over the wire."""

    def __init__(self, client: "RemoteServerClient") -> None:
        self._client = client

    def put_grant(self, stream_uuid: str, principal_id: str, sealed_token: bytes) -> int:
        response = self._client._call(
            Request(
                "put_grant",
                {"uuid": stream_uuid, "principal_id": principal_id},
                [sealed_token],
            )
        )
        return int(response.result["grant_id"])

    def grants_for(self, stream_uuid: str, principal_id: str) -> List[bytes]:
        response = self._client._call(
            Request("fetch_grants", {"uuid": stream_uuid, "principal_id": principal_id})
        )
        return list(response.attachments)

    def put_envelopes(
        self, stream_uuid: str, resolution_chunks: int, envelopes: Dict[int, bytes]
    ) -> None:
        windows = sorted(envelopes)
        self._client._call(
            Request(
                "put_envelopes",
                {
                    "uuid": stream_uuid,
                    "resolution_chunks": resolution_chunks,
                    "windows": windows,
                },
                [envelopes[window] for window in windows],
            )
        )

    def envelopes_for_range(
        self, stream_uuid: str, resolution_chunks: int, window_start: int, window_end: int
    ) -> Dict[int, bytes]:
        response = self._client._call(
            Request(
                "fetch_envelopes",
                {
                    "uuid": stream_uuid,
                    "resolution_chunks": resolution_chunks,
                    "window_start": window_start,
                    "window_end": window_end,
                },
            )
        )
        windows = response.result["windows"]
        return dict(zip(windows, response.attachments))


class RemoteServerClient:
    """A ServerEngine-compatible proxy over a TCP connection."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._address = (host, port)
        self._socket = socket.create_connection(self._address, timeout=timeout)
        self._lock = threading.Lock()
        self.token_store = _RemoteTokenStore(self)
        self._server_supports_bulk_ingest = True

    # -- plumbing ----------------------------------------------------------------

    def _call(self, request: Request) -> Response:
        with self._lock:
            try:
                write_frame(self._socket, request.encode())
                response = Response.decode(read_frame(self._socket))
            except OSError as exc:
                raise TransportError(f"connection to {self._address} failed: {exc}") from exc
        if not response.ok:
            _raise_remote(response)
        return response

    def close(self) -> None:
        try:
            self._socket.close()
        except OSError:
            pass

    def __enter__(self) -> "RemoteServerClient":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def ping(self) -> bool:
        return bool(self._call(Request("ping")).result.get("pong"))

    # -- ServerEngine-compatible surface ----------------------------------------------

    def create_stream(self, metadata: StreamMetadata) -> None:
        self._call(Request("create_stream", {}, [_metadata_to_json(metadata)]))

    def delete_stream(self, stream_uuid: str) -> None:
        self._call(Request("delete_stream", {"uuid": stream_uuid}))

    def stream_metadata(self, stream_uuid: str) -> StreamMetadata:
        response = self._call(Request("stream_metadata", {"uuid": stream_uuid}))
        if not response.attachments:
            raise ProtocolError("stream_metadata response missing attachment")
        return _metadata_from_json(response.attachments[0])

    def stream_head(self, stream_uuid: str) -> int:
        return int(self._call(Request("stream_head", {"uuid": stream_uuid})).result["head"])

    def rollup_stream(
        self, stream_uuid: str, resolution_windows: int, before_time: Optional[int] = None
    ) -> int:
        response = self._call(
            Request(
                "rollup_stream",
                {
                    "uuid": stream_uuid,
                    "resolution_windows": resolution_windows,
                    "before_time": before_time,
                },
            )
        )
        return int(response.result["deleted"])

    def insert_chunk(self, chunk: EncryptedChunk) -> int:
        response = self._call(Request("insert_chunk", {}, [encode_encrypted_chunk(chunk)]))
        return int(response.result["window_index"])

    def insert_chunks(self, chunks: Sequence[EncryptedChunk]) -> int:
        """Bulk ingest over one round trip; returns the first appended window index.

        Servers that predate the ``insert_chunks`` wire operation answer with
        an unsupported-operation error; in that case the batch degrades to
        per-chunk ``insert_chunk`` calls (and the downgrade is remembered so
        later batches skip the failed round trip).
        """
        if not chunks:
            raise ProtocolError("insert_chunks requires at least one chunk")
        if not self._server_supports_bulk_ingest:
            return self._insert_chunks_one_by_one(chunks)
        try:
            response = self._call(
                Request("insert_chunks", {}, [encode_encrypted_chunk(chunk) for chunk in chunks])
            )
        except TimeCryptError as exc:
            # Remote errors re-raise by class *name*, which may surface as the
            # base class — match on the message, not the type.  A server
            # without the op rejects it in Request.decode ("unknown
            # operation", messages.py) before dispatch ("unsupported
            # operation") could ever see it; accept both spellings.
            message = str(exc)
            if "unsupported operation" not in message and "unknown operation" not in message:
                raise
            self._server_supports_bulk_ingest = False
            return self._insert_chunks_one_by_one(chunks)
        return int(response.result["window_index"])

    def _insert_chunks_one_by_one(self, chunks: Sequence[EncryptedChunk]) -> int:
        return min(self.insert_chunk(chunk) for chunk in chunks)

    def get_range(self, stream_uuid: str, time_range: TimeRange) -> List[EncryptedChunk]:
        response = self._call(
            Request("get_range", {"uuid": stream_uuid, "start": time_range.start, "end": time_range.end})
        )
        return [decode_encrypted_chunk(blob) for blob in response.attachments]

    def delete_range(self, stream_uuid: str, time_range: TimeRange) -> int:
        response = self._call(
            Request(
                "delete_range",
                {"uuid": stream_uuid, "start": time_range.start, "end": time_range.end},
            )
        )
        return int(response.result["deleted"])

    @staticmethod
    def _stat_from_json(payload: Dict) -> StatQueryResult:
        return StatQueryResult(
            stream_uuid=payload["stream_uuid"],
            window_start=payload["window_start"],
            window_end=payload["window_end"],
            cells=tuple(
                HEACCiphertext(value=cell["value"], window_start=cell["start"], window_end=cell["end"])
                for cell in payload["cells"]
            ),
            component_names=tuple(payload["component_names"]),
            num_index_nodes=payload["num_index_nodes"],
        )

    def stat_range(self, stream_uuid: str, time_range: TimeRange) -> StatQueryResult:
        response = self._call(
            Request("stat_range", {"uuid": stream_uuid, "start": time_range.start, "end": time_range.end})
        )
        return self._stat_from_json(response.result["stat"])

    def stat_series(
        self, stream_uuid: str, time_range: TimeRange, granularity_windows: int
    ) -> List[StatQueryResult]:
        response = self._call(
            Request(
                "stat_series",
                {
                    "uuid": stream_uuid,
                    "start": time_range.start,
                    "end": time_range.end,
                    "granularity_windows": granularity_windows,
                },
            )
        )
        return [self._stat_from_json(item) for item in response.result["series"]]

    def stat_range_multi(
        self, stream_uuids: Sequence[str], time_range: TimeRange
    ) -> MultiStreamAggregate:
        response = self._call(
            Request(
                "stat_range_multi",
                {"uuids": list(stream_uuids), "start": time_range.start, "end": time_range.end},
            )
        )
        return MultiStreamAggregate(
            values=tuple(response.result["values"]),
            component_names=tuple(response.result["component_names"]),
            per_stream_intervals=tuple(
                (item[0], item[1], item[2]) for item in response.result["per_stream_intervals"]
            ),
        )

    # -- grant / envelope passthrough (ServerEngine-compatible) -----------------------------

    def put_grant(self, stream_uuid: str, principal_id: str, sealed_token: bytes) -> int:
        return self.token_store.put_grant(stream_uuid, principal_id, sealed_token)

    def fetch_grants(self, stream_uuid: str, principal_id: str) -> List[bytes]:
        return self.token_store.grants_for(stream_uuid, principal_id)

    def fetch_envelopes(
        self, stream_uuid: str, resolution_chunks: int, window_start: int, window_end: int
    ) -> Dict[int, bytes]:
        return self.token_store.envelopes_for_range(
            stream_uuid, resolution_chunks, window_start, window_end
        )
