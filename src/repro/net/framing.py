"""Length-prefixed framing over byte streams, in two protocol versions.

**v1** (the original lockstep wire): ``magic b"TC" (2B) || length (4B,
big-endian) || payload``.  Responses implicitly correlate with requests by
arrival order, so a v1 connection can only have one request in flight.

**v2** (the pipelined wire): ``magic b"T2" (2B) || version (1B) ||
correlation id (8B, big-endian) || length (4B, big-endian) || payload``.
Every request carries a connection-unique correlation id that the server
echoes on the matching response, so many requests can be in flight at once
and responses may arrive out of order.  The version byte leaves room for
future header revisions without another magic change.

The two magics are disjoint, so a peer can serve both versions on one
socket by looking at the first two bytes of each frame —
:func:`read_any_frame` and :class:`FrameAssembler` do exactly that.  Frames
are capped at 64 MiB — far above any legitimate TimeCrypt message — to stop
a malformed or malicious peer from forcing huge allocations.

Zero-copy memory path
---------------------

Large payloads (encrypted chunk batches, ``get_range`` responses) used to be
materialized 3+ times between ``Request.encode()`` and ``sendall``.  The
segment API avoids that: :func:`encode_frame_segments_v2` returns the frame
as ``[packed_header, *message_segments]`` without concatenating, and
:func:`write_vectored` hands the segment list to ``socket.sendmsg`` in
IOV_MAX-sized groups, coalescing only runs of small segments so tiny frames
still cost one syscall.  On the read side :class:`FrameReader` and
:class:`FrameAssembler` fill one dedicated buffer per payload via
``recv_into``/slice assignment and can yield read-only memoryviews, so
decoding attaches views instead of slicing copies.

**Copy accounting.**  ``MEMORY_COUNTERS`` counts *full-payload
materializations after the bytes first exist in user space* (encode: after
the payload exists as attachment objects; decode: after the bytes land from
the kernel).  The legacy path costs 3 on encode (message join, frame concat,
batch join) and up to 3 on decode (assembler append, ``bytes()`` slice, per
-attachment slices); the segment path costs 0 on encode and at most 1 on
decode (the assembler's copy-in; the direct ``recv_into`` reader costs 0).
The counters are deterministic for a fixed call sequence, which is what
``benchmarks/bench_wire_memory.py`` gates on.
"""

from __future__ import annotations

import os
import socket
import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, List, Sequence, Tuple, Union

from repro.exceptions import ProtocolError, TransportError

MAGIC = b"TC"
MAGIC_V2 = b"T2"
PROTOCOL_VERSION = 2
MAX_FRAME_BYTES = 64 * 1024 * 1024
_HEADER = struct.Struct(">2sI")
_HEADER_V2 = struct.Struct(">2sBQI")

#: Segments smaller than this are coalesced into one buffer before being
#: handed to ``sendmsg``, so a burst of tiny frames still costs one syscall
#: and one iovec instead of hundreds.  Large attachments always go out as
#: their own iovec, uncopied.
COALESCE_THRESHOLD = 8 * 1024

try:
    IOV_MAX = int(os.sysconf("SC_IOV_MAX"))
    if IOV_MAX <= 0:
        IOV_MAX = 1024
except (AttributeError, OSError, ValueError):  # pragma: no cover - platform
    IOV_MAX = 1024

Readable = Union[BinaryIO, socket.socket]
Segment = Union[bytes, bytearray, memoryview]


@dataclass
class WireMemoryCounters:
    """Deterministic bookkeeping for the wire memory path.

    ``payload_copies`` counts full-payload materializations (see the module
    docstring for the exact convention); the other counters describe the
    write path.  They are plain module-global integers bumped without
    locking — the benchmark measures single-threaded call sequences, and in
    live servers they are advisory.
    """

    payload_copies: int = 0
    syscalls: int = 0
    vectored_writes: int = 0
    sendall_writes: int = 0
    frames_coalesced: int = 0
    bytes_written: int = 0

    def reset(self) -> None:
        self.payload_copies = 0
        self.syscalls = 0
        self.vectored_writes = 0
        self.sendall_writes = 0
        self.frames_coalesced = 0
        self.bytes_written = 0

    def snapshot(self) -> dict:
        return {
            "payload_copies": self.payload_copies,
            "syscalls": self.syscalls,
            "vectored_writes": self.vectored_writes,
            "sendall_writes": self.sendall_writes,
            "frames_coalesced": self.frames_coalesced,
            "bytes_written": self.bytes_written,
        }


#: Process-wide counter instance.  Reset before a measured section.
MEMORY_COUNTERS = WireMemoryCounters()

# Registered into the unified metrics plane so one registry snapshot (or one
# `stats` wire round trip) covers the wire-memory bill too — the counters
# stop being an unscoped global only benchmarks knew about.  obs is
# stdlib-only, so this import cannot cycle back into repro.net.
from repro.obs.metrics import REGISTRY as _METRICS_REGISTRY  # noqa: E402

_METRICS_REGISTRY.register(
    "wire.memory",
    MEMORY_COUNTERS,
    deterministic=("payload_copies", "vectored_writes", "sendall_writes", "frames_coalesced"),
)


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame: protocol version, correlation id, payload.

    v1 frames have no correlation id on the wire; they decode with
    ``correlation_id == 0`` and correlate by arrival order instead.  On the
    zero-copy read paths ``payload`` is a read-only :class:`memoryview` over
    a buffer dedicated to this frame (never reused), so holding the view is
    memory-safe — but views are unhashable and refuse ``.decode()``; call
    ``bytes()`` at any boundary that retains or keys on the payload.
    """

    version: int
    correlation_id: int
    payload: Union[bytes, memoryview]


def _read_exact_into(source: Readable, view: memoryview) -> None:
    """Fill ``view`` completely from a socket or file-like object."""
    filled = 0
    total = len(view)
    if isinstance(source, socket.socket):
        while filled < total:
            got = source.recv_into(view[filled:])
            if not got:
                raise TransportError("connection closed mid-frame")
            filled += got
        return
    readinto = getattr(source, "readinto", None)
    if readinto is not None:
        while filled < total:
            got = readinto(view[filled:])
            if not got:
                raise TransportError("connection closed mid-frame")
            filled += got
        return
    while filled < total:
        chunk = source.read(total - filled)
        if not chunk:
            raise TransportError("connection closed mid-frame")
        view[filled : filled + len(chunk)] = chunk
        filled += len(chunk)


def _read_buffer(source: Readable, length: int) -> bytearray:
    """Read exactly ``length`` bytes into a fresh, dedicated buffer."""
    buffer = bytearray(length)
    if length:
        _read_exact_into(source, memoryview(buffer))
    return buffer


def _read_exact(source: Readable, length: int) -> bytes:
    """Read exactly ``length`` bytes from a socket or file-like object.

    Legacy shim: materializes a ``bytes`` copy of the read buffer (counted).
    The zero-copy paths use :func:`_read_buffer` / :class:`FrameReader`.
    """
    MEMORY_COUNTERS.payload_copies += 1
    return bytes(_read_buffer(source, length))


def _send(sink: Readable, data: Segment) -> None:
    if isinstance(sink, socket.socket):
        sink.sendall(data)
    else:
        sink.write(data)
        sink.flush()
    MEMORY_COUNTERS.syscalls += 1
    MEMORY_COUNTERS.sendall_writes += 1
    MEMORY_COUNTERS.bytes_written += len(data)


def write_vectored(sink: Readable, segments: Sequence[Segment]) -> Tuple[int, int, int]:
    """Write ``segments`` without concatenating the large ones.

    Runs of consecutive segments smaller than :data:`COALESCE_THRESHOLD` are
    merged into one small buffer (tiny frames stay one iovec / one syscall);
    everything else is passed to ``socket.sendmsg`` by reference, at most
    :data:`IOV_MAX` iovecs per call, resuming correctly across partial
    sends.  Sinks without ``sendmsg`` (file-likes, BytesIO) fall back to
    sequential writes.

    Returns ``(syscalls, bytes_written, segments_coalesced)``.
    """
    iovs: List[memoryview] = []
    coalesced = 0
    pending: bytearray = bytearray()
    for segment in segments:
        length = len(segment)
        if not length:
            continue
        if length < COALESCE_THRESHOLD:
            pending += segment
            coalesced += 1
        else:
            if pending:
                iovs.append(memoryview(pending))
                pending = bytearray()
            iovs.append(memoryview(segment))
    if pending:
        iovs.append(memoryview(pending))
    total = sum(len(iov) for iov in iovs)

    sendmsg = getattr(sink, "sendmsg", None)
    syscalls = 0
    if sendmsg is not None:
        while iovs:
            group = iovs[:IOV_MAX]
            sent = sendmsg(group)
            syscalls += 1
            # Advance across whole and partially-sent iovecs.
            while sent > 0 and iovs:
                head = iovs[0]
                if sent >= len(head):
                    sent -= len(head)
                    iovs.pop(0)
                else:
                    iovs[0] = head[sent:]
                    sent = 0
    else:
        for iov in iovs:
            sink.write(iov)
            syscalls += 1
        flush = getattr(sink, "flush", None)
        if flush is not None:
            flush()

    MEMORY_COUNTERS.syscalls += syscalls
    MEMORY_COUNTERS.vectored_writes += 1
    MEMORY_COUNTERS.frames_coalesced += coalesced
    MEMORY_COUNTERS.bytes_written += total
    return syscalls, total, coalesced


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap")


def _segments_length(segments: Iterable[Segment]) -> int:
    return sum(len(segment) for segment in segments)


def encode_frame(payload: Segment) -> bytes:
    """Encode one v1 frame (legacy: concatenates a full-payload copy)."""
    _check_length(len(payload))
    MEMORY_COUNTERS.payload_copies += 1
    return _HEADER.pack(MAGIC, len(payload)) + bytes(payload)


def encode_frame_v2(correlation_id: int, payload: Segment) -> bytes:
    """Encode one v2 frame carrying a correlation id (legacy: one copy)."""
    _check_length(len(payload))
    _check_correlation_id(correlation_id)
    MEMORY_COUNTERS.payload_copies += 1
    return _HEADER_V2.pack(MAGIC_V2, PROTOCOL_VERSION, correlation_id, len(payload)) + bytes(payload)


def _check_correlation_id(correlation_id: int) -> None:
    if not 0 <= correlation_id < 1 << 64:
        raise ProtocolError(f"correlation id {correlation_id} outside the 64-bit range")


def encode_frame_segments_v2(
    correlation_id: int, segments: Sequence[Segment]
) -> List[Segment]:
    """Encode one v2 frame as ``[packed_header, *segments]`` — no copies.

    ``segments`` is the message-segment list from
    :func:`repro.net.messages.encode_message_segments`; attachments pass
    through by reference and go to the wire via :func:`write_vectored`.
    """
    length = _segments_length(segments)
    _check_length(length)
    _check_correlation_id(correlation_id)
    header = _HEADER_V2.pack(MAGIC_V2, PROTOCOL_VERSION, correlation_id, length)
    return [header, *segments]


def write_frame(sink: Readable, payload: Segment) -> None:
    """Write one v1 framed message."""
    _send(sink, encode_frame(payload))


def write_frame_v2(sink: Readable, correlation_id: int, payload: Segment) -> None:
    """Write one v2 framed message."""
    _send(sink, encode_frame_v2(correlation_id, payload))


def read_frame(source: Readable) -> bytes:
    """Read one v1 framed message; raises on EOF, bad magic, or oversized frames."""
    header = bytes(_read_buffer(source, _HEADER.size))
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    _check_length(length)
    return _read_exact(source, length)


def read_any_frame(source: Readable, views: bool = False) -> Frame:
    """Read one frame of either protocol version.

    The first two bytes select the header layout; v1 frames come back with
    ``correlation_id == 0``.  With ``views=True`` the payload is a read-only
    memoryview over a buffer dedicated to this frame.
    """
    return FrameReader(source, views=views).read()


class FrameReader:
    """Blocking frame reader with a reusable header scratch buffer.

    The client reader thread pulls frames through one of these: headers land
    in a 15-byte scratch via ``recv_into`` (no per-read allocation) and each
    payload is read straight into its own exact-size buffer — zero user-space
    copies after the kernel hands the bytes over.  With ``views=False`` the
    payload is materialized as ``bytes`` (one counted copy, the legacy
    contract).
    """

    def __init__(self, source: Readable, views: bool = False) -> None:
        self._source = source
        self._views = views
        self._scratch = bytearray(_HEADER_V2.size)

    def read(self) -> Frame:
        scratch = memoryview(self._scratch)
        _read_exact_into(self._source, scratch[:2])
        magic = scratch[:2]
        if magic == MAGIC:
            _read_exact_into(self._source, scratch[2 : _HEADER.size])
            _, length = _HEADER.unpack_from(scratch)
            _check_length(length)
            return Frame(version=1, correlation_id=0, payload=self._payload(length))
        if magic == MAGIC_V2:
            _read_exact_into(self._source, scratch[2:])
            _, version, correlation_id, length = _HEADER_V2.unpack_from(scratch)
            if version != PROTOCOL_VERSION:
                raise ProtocolError(f"unsupported v2 frame version {version}")
            _check_length(length)
            return Frame(version=version, correlation_id=correlation_id, payload=self._payload(length))
        raise ProtocolError(f"bad frame magic {bytes(magic)!r}")

    def _payload(self, length: int) -> Union[bytes, memoryview]:
        buffer = _read_buffer(self._source, length)
        if self._views:
            return memoryview(buffer).toreadonly()
        MEMORY_COUNTERS.payload_copies += 1
        return bytes(buffer)


class FrameAssembler:
    """Incremental frame parser for non-lockstep servers.

    The selector-driven server reads whatever bytes a socket has ready and
    feeds them here; :meth:`feed` returns every frame completed by the new
    bytes (possibly none, possibly several).  Both protocol versions are
    accepted, interleaved freely on one connection.

    Each payload is assembled into a buffer dedicated to that frame (the one
    counted decode copy), so the feed buffer can be reused by the caller and
    — with ``views=True`` — emitted frames carry read-only memoryviews that
    stay valid for as long as anything holds them.  Header bytes accumulate
    in a small scratch that is compared in place (no ``bytes(buffer[:2])``
    allocation per partial feed).
    """

    def __init__(self, views: bool = False) -> None:
        self._views = views
        self._header = bytearray()
        #: Set once the header is complete: (version, correlation_id, target).
        self._version = 0
        self._correlation_id = 0
        self._payload: bytearray = bytearray()
        self._payload_len = -1  # -1: still reading the header
        self._filled = 0

    def feed(self, data: Segment) -> List[Frame]:
        """Append received bytes; return all frames now complete."""
        view = memoryview(data)
        frames: List[Frame] = []
        while True:
            if self._payload_len < 0:
                view = self._feed_header(view)
                if self._payload_len < 0:
                    # Header still incomplete — all input consumed.
                    return frames
            take = min(len(view), self._payload_len - self._filled)
            if take:
                self._payload[self._filled : self._filled + take] = view[:take]
                self._filled += take
                view = view[take:]
            if self._filled < self._payload_len:
                return frames
            frames.append(self._emit())
            if not len(view) and not self._header:
                return frames
            # More bytes remain in the input (or spilled past the previous
            # frame into the header scratch): keep parsing.

    def _feed_header(self, view: memoryview) -> memoryview:
        """Consume header bytes from ``view``; returns the unconsumed rest."""
        header = self._header
        need = _HEADER_V2.size - len(header)  # upper bound; v1 needs less
        take = min(len(view), need)
        header += view[:take]
        view = view[take:]
        if len(header) < 2:
            return view
        if header.startswith(MAGIC):
            if len(header) < _HEADER.size:
                return view
            _, length = _HEADER.unpack_from(header)
            _check_length(length)
            self._begin_payload(1, 0, length, header, _HEADER.size)
        elif header.startswith(MAGIC_V2):
            if len(header) < _HEADER_V2.size:
                return view
            _, version, correlation_id, length = _HEADER_V2.unpack_from(header)
            if version != PROTOCOL_VERSION:
                raise ProtocolError(f"unsupported v2 frame version {version}")
            _check_length(length)
            self._begin_payload(version, correlation_id, length, header, _HEADER_V2.size)
        else:
            raise ProtocolError(f"bad frame magic {bytes(header[:2])!r}")
        return view

    def _begin_payload(
        self, version: int, correlation_id: int, length: int, header: bytearray, header_size: int
    ) -> None:
        self._version = version
        self._correlation_id = correlation_id
        self._payload = bytearray(length)
        self._payload_len = length
        # A v1 header is shorter than the scratch upper bound, so bytes of
        # the *next* frame may already sit past it; spill them as payload.
        spill = header[header_size:]
        self._filled = min(len(spill), length)
        if self._filled:
            self._payload[: self._filled] = spill[: self._filled]
        leftover = spill[self._filled :]
        header.clear()
        header += leftover

    def _emit(self) -> Frame:
        MEMORY_COUNTERS.payload_copies += 1
        buffer = self._payload
        if self._views:
            payload: Union[bytes, memoryview] = memoryview(buffer).toreadonly()
        else:
            MEMORY_COUNTERS.payload_copies += 1
            payload = bytes(buffer)
        frame = Frame(version=self._version, correlation_id=self._correlation_id, payload=payload)
        self._payload = bytearray()
        self._payload_len = -1
        self._filled = 0
        return frame
