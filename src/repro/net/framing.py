"""Length-prefixed framing over byte streams, in two protocol versions.

**v1** (the original lockstep wire): ``magic b"TC" (2B) || length (4B,
big-endian) || payload``.  Responses implicitly correlate with requests by
arrival order, so a v1 connection can only have one request in flight.

**v2** (the pipelined wire): ``magic b"T2" (2B) || version (1B) ||
correlation id (8B, big-endian) || length (4B, big-endian) || payload``.
Every request carries a connection-unique correlation id that the server
echoes on the matching response, so many requests can be in flight at once
and responses may arrive out of order.  The version byte leaves room for
future header revisions without another magic change.

The two magics are disjoint, so a peer can serve both versions on one
socket by looking at the first two bytes of each frame —
:func:`read_any_frame` and :class:`FrameAssembler` do exactly that.  Frames
are capped at 64 MiB — far above any legitimate TimeCrypt message — to stop
a malformed or malicious peer from forcing huge allocations.
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass
from typing import BinaryIO, List, Union

from repro.exceptions import ProtocolError, TransportError

MAGIC = b"TC"
MAGIC_V2 = b"T2"
PROTOCOL_VERSION = 2
MAX_FRAME_BYTES = 64 * 1024 * 1024
_HEADER = struct.Struct(">2sI")
_HEADER_V2 = struct.Struct(">2sBQI")

Readable = Union[BinaryIO, socket.socket]


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame: protocol version, correlation id, payload.

    v1 frames have no correlation id on the wire; they decode with
    ``correlation_id == 0`` and correlate by arrival order instead.
    """

    version: int
    correlation_id: int
    payload: bytes


def _read_exact(source: Readable, length: int) -> bytes:
    """Read exactly ``length`` bytes from a socket or file-like object."""
    chunks = []
    remaining = length
    while remaining > 0:
        if isinstance(source, socket.socket):
            chunk = source.recv(remaining)
        else:
            chunk = source.read(remaining)
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _send(sink: Readable, data: bytes) -> None:
    if isinstance(sink, socket.socket):
        sink.sendall(data)
    else:
        sink.write(data)
        sink.flush()


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap")


def encode_frame(payload: bytes) -> bytes:
    """Encode one v1 frame."""
    _check_length(len(payload))
    return _HEADER.pack(MAGIC, len(payload)) + payload


def encode_frame_v2(correlation_id: int, payload: bytes) -> bytes:
    """Encode one v2 frame carrying a correlation id."""
    _check_length(len(payload))
    if not 0 <= correlation_id < 1 << 64:
        raise ProtocolError(f"correlation id {correlation_id} outside the 64-bit range")
    return _HEADER_V2.pack(MAGIC_V2, PROTOCOL_VERSION, correlation_id, len(payload)) + payload


def write_frame(sink: Readable, payload: bytes) -> None:
    """Write one v1 framed message."""
    _send(sink, encode_frame(payload))


def write_frame_v2(sink: Readable, correlation_id: int, payload: bytes) -> None:
    """Write one v2 framed message."""
    _send(sink, encode_frame_v2(correlation_id, payload))


def read_frame(source: Readable) -> bytes:
    """Read one v1 framed message; raises on EOF, bad magic, or oversized frames."""
    header = _read_exact(source, _HEADER.size)
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    _check_length(length)
    return _read_exact(source, length)


def read_any_frame(source: Readable) -> Frame:
    """Read one frame of either protocol version.

    The first two bytes select the header layout; v1 frames come back with
    ``correlation_id == 0``.
    """
    magic = _read_exact(source, 2)
    if magic == MAGIC:
        (length,) = struct.unpack(">I", _read_exact(source, 4))
        _check_length(length)
        return Frame(version=1, correlation_id=0, payload=_read_exact(source, length))
    if magic == MAGIC_V2:
        version, correlation_id, length = struct.unpack(
            ">BQI", _read_exact(source, _HEADER_V2.size - 2)
        )
        if version != PROTOCOL_VERSION:
            raise ProtocolError(f"unsupported v2 frame version {version}")
        _check_length(length)
        return Frame(
            version=version, correlation_id=correlation_id, payload=_read_exact(source, length)
        )
    raise ProtocolError(f"bad frame magic {magic!r}")


class FrameAssembler:
    """Incremental frame parser for non-lockstep servers.

    The selector-driven server reads whatever bytes a socket has ready and
    feeds them here; :meth:`feed` returns every frame completed by the new
    bytes (possibly none, possibly several).  Both protocol versions are
    accepted, interleaved freely on one connection.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Frame]:
        """Append received bytes; return all frames now complete."""
        self._buffer += data
        frames: List[Frame] = []
        while True:
            frame = self._try_parse()
            if frame is None:
                return frames
            frames.append(frame)

    def _try_parse(self) -> Union[Frame, None]:
        buffer = self._buffer
        if len(buffer) < 2:
            return None
        magic = bytes(buffer[:2])
        if magic == MAGIC:
            if len(buffer) < _HEADER.size:
                return None
            _, length = _HEADER.unpack_from(buffer)
            _check_length(length)
            end = _HEADER.size + length
            if len(buffer) < end:
                return None
            payload = bytes(buffer[_HEADER.size : end])
            del buffer[:end]
            return Frame(version=1, correlation_id=0, payload=payload)
        if magic == MAGIC_V2:
            if len(buffer) < _HEADER_V2.size:
                return None
            _, version, correlation_id, length = _HEADER_V2.unpack_from(buffer)
            if version != PROTOCOL_VERSION:
                raise ProtocolError(f"unsupported v2 frame version {version}")
            _check_length(length)
            end = _HEADER_V2.size + length
            if len(buffer) < end:
                return None
            payload = bytes(buffer[_HEADER_V2.size : end])
            del buffer[:end]
            return Frame(version=version, correlation_id=correlation_id, payload=payload)
        raise ProtocolError(f"bad frame magic {magic!r}")
