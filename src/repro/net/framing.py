"""Length-prefixed framing over byte streams.

Every message on the wire is ``magic (2B) || length (4B, big-endian) ||
payload``.  The magic bytes catch protocol confusion early; the length prefix
bounds reads.  Frames are capped at 64 MiB — far above any legitimate
TimeCrypt message — to stop a malformed or malicious peer from forcing huge
allocations.
"""

from __future__ import annotations

import socket
import struct
from typing import BinaryIO, Union

from repro.exceptions import ProtocolError, TransportError

MAGIC = b"TC"
MAX_FRAME_BYTES = 64 * 1024 * 1024
_HEADER = struct.Struct(">2sI")

Readable = Union[BinaryIO, socket.socket]


def _read_exact(source: Readable, length: int) -> bytes:
    """Read exactly ``length`` bytes from a socket or file-like object."""
    chunks = []
    remaining = length
    while remaining > 0:
        if isinstance(source, socket.socket):
            chunk = source.recv(remaining)
        else:
            chunk = source.read(remaining)
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(sink: Readable, payload: bytes) -> None:
    """Write one framed message."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES} cap")
    data = _HEADER.pack(MAGIC, len(payload)) + payload
    if isinstance(sink, socket.socket):
        sink.sendall(data)
    else:
        sink.write(data)
        sink.flush()


def read_frame(source: Readable) -> bytes:
    """Read one framed message; raises on EOF, bad magic, or oversized frames."""
    header = _read_exact(source, _HEADER.size)
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap")
    return _read_exact(source, length)
