"""Request/response messages of the TimeCrypt wire protocol.

The protocol mirrors the server engine's API surface: stream lifecycle,
chunk ingest (scalar and bulk), raw range retrieval, statistical queries
(single and multi-stream), grant/envelope pickup (scalar and burst), and
rollup.  A second op family (``kv_*``) carries the raw key-value store
contract for remote storage nodes, so the same framing/pipelining serves
both the engine tier and the storage tier.  ``hello`` negotiates the
protocol: the server answers with its
protocol version and the operations its dispatcher supports, so clients can
pick the pipelined v2 framing and the ``multi_*``-style batch ops without
probing.  Messages are encoded as a JSON header plus optional binary
attachments:

``frame = varint(header_len) || header_json || attachments``

Binary payloads (encrypted chunks, sealed tokens) travel as attachments so
they are never base64-inflated; the header references them by index and
length.  This keeps the format debuggable (the header is readable JSON, as a
protobuf text dump would be) while staying compact where it matters.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ProtocolError
from repro.net.framing import MAX_FRAME_BYTES, MEMORY_COUNTERS
from repro.util.encoding import decode_varint, encode_varint

Buffer = Union[bytes, bytearray, memoryview]

#: The storage-node op family: the raw :class:`~repro.storage.kv.KeyValueStore`
#: contract carried over the same framing.  Keys and values are opaque byte
#: strings, so they always travel as attachments, never inside the JSON
#: header.  ``kv_scan_page`` is the wire shape of ``scan_prefix``: prefix
#: scans are paged with an exclusive ``after`` cursor so a remote client can
#: stream an arbitrarily large keyspace without ever materializing it (or
#: hitting the frame cap).  ``kv_scan_prefix`` and ``kv_delete_prefix`` are
#: the scan-offload ops: the node walks its own keyspace (optionally
#: key-range-filtered) and ships only matching items — or just a deletion
#: count — so bulk erase and recovery stop paging the keyspace through the
#: engine one ``kv_scan_page`` at a time.
KV_OPERATIONS = (
    "kv_get",
    "kv_put",
    "kv_delete",
    "kv_multi_get",
    "kv_multi_put",
    "kv_multi_delete",
    "kv_scan_page",
    "kv_scan_prefix",
    "kv_delete_prefix",
    "kv_size_bytes",
)

#: Operation names accepted by the server dispatchers (engine + storage node).
OPERATIONS = (
    "hello",
    "create_stream",
    "delete_stream",
    "insert_chunk",
    "insert_chunks",
    "get_range",
    "delete_range",
    "stat_range",
    "stat_range_multi",
    "stat_series",
    "rollup_stream",
    "stream_head",
    "stream_metadata",
    "put_grant",
    "put_grants",
    "fetch_grants",
    "fetch_envelopes",
    "put_envelopes",
    "routing_table",
    "ping",
    # Observability scrape ops, answered locally by every tier's dispatcher:
    # `stats` returns the process metrics-registry snapshot, `trace_dump` the
    # node's span ring buffer.  Deliberately absent from BULK_OPERATIONS so an
    # operator can scrape a node that is drowning in bulk traffic.
    "stats",
    "trace_dump",
) + KV_OPERATIONS

#: Operations that move bulk payloads (ingest batches, grant bursts, prefix
#: deletes, repair scans).  Everything else — small stats, metadata, grant
#: pickup, liveness — is interactive.  The server's two-class scheduler
#: drains the classes from separate bounded queues so a small ``stat_range``
#: never waits behind a whole ingest burst; ``kv_multi_get`` stays
#: interactive because query fetches (index covers, chunk reads) ride on it
#: and are byte-capped.
BULK_OPERATIONS = frozenset(
    {
        "insert_chunk",
        "insert_chunks",
        "delete_stream",
        "delete_range",
        "rollup_stream",
        "put_grants",
        "put_envelopes",
        "kv_multi_put",
        "kv_multi_delete",
        "kv_scan_page",
        "kv_scan_prefix",
        "kv_delete_prefix",
    }
)


#: The complement of :data:`BULK_OPERATIONS`, spelled out so the scheduler
#: classification is a checked partition rather than an implicit default:
#: the static analyzer (REPRO003) verifies ``BULK_OPERATIONS`` and
#: ``INTERACTIVE_OPERATIONS`` are disjoint and together cover every name in
#: ``OPERATIONS``, so adding an op without deciding its class is an error.
INTERACTIVE_OPERATIONS = frozenset(
    {
        "hello",
        "create_stream",
        "get_range",
        "stat_range",
        "stat_range_multi",
        "stat_series",
        "stream_head",
        "stream_metadata",
        "put_grant",
        "fetch_grants",
        "fetch_envelopes",
        "routing_table",
        "ping",
        "stats",
        "trace_dump",
        "kv_get",
        "kv_put",
        "kv_delete",
        "kv_multi_get",
        "kv_size_bytes",
    }
)


def classify_operation(operation: Optional[str]) -> str:
    """``"bulk"`` or ``"interactive"`` — the scheduler class of an operation.

    Unknown or unparseable operations classify interactive so they reach the
    dispatcher, which answers them with the proper typed error.
    """
    return "bulk" if operation in BULK_OPERATIONS else "interactive"


#: The one compression scheme currently negotiated in ``hello``.  A
#: compressed message travels as ``varint(0) || varint(raw_len) ||
#: zlib(encoded_message)`` — a real message's JSON header is never empty, so
#: a zero ``header_len`` is an unambiguous sentinel and needs no frame-level
#: flag.  Off by default: chunk ciphertext is incompressible; the win is
#: JSON-heavy headers, grant bursts, and ``kv`` scan pages of plaintext
#: metadata.
WIRE_COMPRESSION_SCHEMES = ("zlib",)

#: Messages below this size are never compressed — the zlib header plus the
#: CPU round trip outweighs any saving on small frames.
WIRE_COMPRESSION_THRESHOLD = 4096

#: ``peek_operation`` decompresses at most this much output looking for the
#: header of a compressed request, so a hostile frame cannot force a large
#: decompression on the server's I/O loop.
_PEEK_DECOMPRESS_LIMIT = 64 * 1024


def peek_operation(payload: Buffer) -> Optional[str]:
    """The operation name of an encoded request, without decoding attachments.

    The server's I/O loop classifies every frame before enqueueing it, so
    this parses only the varint-prefixed JSON header — bounded by the actual
    payload size before any slice or ``json.loads``, so a forged
    multi-gigabyte ``header_len`` classifies as ``None`` instead of driving a
    pathological allocation.  Compressed messages get a bounded incremental
    decompression (at most 64 KiB of output) to reach the header.
    """
    try:
        header_len, pos = decode_varint(payload, 0)
        if header_len == 0:
            raw_len, pos = decode_varint(payload, pos)
            if raw_len > MAX_FRAME_BYTES:
                return None
            head = zlib.decompressobj().decompress(
                bytes(payload[pos:]), min(raw_len, _PEEK_DECOMPRESS_LIMIT)
            )
            header_len, pos = decode_varint(head, 0)
            if header_len == 0 or header_len > len(head) - pos:
                return None
            payload = head
        if header_len > len(payload) - pos:
            return None
        header = json.loads(bytes(payload[pos : pos + header_len]).decode("utf-8"))
        operation = header.get("op")
    except (ValueError, KeyError, TypeError, UnicodeDecodeError, AttributeError, zlib.error):
        return None
    return operation if isinstance(operation, str) else None


def encode_message_segments(
    header: Dict[str, Any], attachments: Sequence[Buffer]
) -> List[Buffer]:
    """Encode a message as ``[varint(len) + header_json, *attachments]``.

    Attachments pass through by reference — nothing is concatenated.  Feed
    the result to :func:`repro.net.framing.encode_frame_segments_v2` and
    :func:`repro.net.framing.write_vectored` for a copy-free send path.
    """
    header = dict(header)
    header["attachment_lengths"] = [len(blob) for blob in attachments]
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    return [encode_varint(len(header_bytes)) + header_bytes, *attachments]


def _encode_message(header: Dict[str, Any], attachments: Sequence[Buffer]) -> bytes:
    """Legacy single-buffer encoding: joins the segments (one counted copy)."""
    MEMORY_COUNTERS.payload_copies += 1
    return b"".join(encode_message_segments(header, attachments))


def compress_message(payload: Buffer, level: int = 6) -> bytes:
    """Wrap an encoded message in the compressed-sentinel wire form."""
    raw_len = len(payload)
    return b"\x00" + encode_varint(raw_len) + zlib.compress(bytes(payload), level)


def maybe_compress_segments(
    segments: Sequence[Buffer], threshold: int = WIRE_COMPRESSION_THRESHOLD
) -> Tuple[List[Buffer], bool]:
    """Compress a segment list into one segment if it crosses ``threshold``.

    Returns ``(segments, compressed)``; below the threshold the input passes
    through untouched.  Only call this after both peers negotiated
    compression in ``hello``.
    """
    total = sum(len(segment) for segment in segments)
    if total < threshold:
        return list(segments), False
    return [compress_message(b"".join(segments))], True


def _decompress_message(payload: Buffer, pos: int) -> bytes:
    """Expand the compressed-sentinel form back to a raw encoded message."""
    raw_len, pos = decode_varint(payload, pos)
    if raw_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"compressed message declares {raw_len} raw bytes, above the frame cap")
    decompressor = zlib.decompressobj()
    try:
        raw = decompressor.decompress(bytes(payload[pos:]), raw_len)
    except zlib.error as exc:
        raise ProtocolError("malformed compressed message") from exc
    if len(raw) != raw_len or decompressor.unconsumed_tail or not decompressor.eof:
        raise ProtocolError("compressed message does not match its declared length")
    return raw


def _decode_message(payload: Buffer) -> tuple[Dict[str, Any], List[Buffer]]:
    """Decode ``varint(header_len) || header_json || attachments``.

    When ``payload`` is a memoryview over a dedicated frame buffer, the
    attachments come back as sub-views — no copies.  Anything that keeps an
    attachment beyond the request's lifetime must go through
    :func:`retain`.  Header lengths and attachment lengths are bounds-checked
    against the actual payload before any allocation happens.
    """
    try:
        header_len, pos = decode_varint(payload, 0)
        if header_len == 0:
            # Compressed sentinel — expand (a copy, inherent to the scheme)
            # and decode the raw bytes.
            return _decode_message(_decompress_message(payload, pos))
        if header_len > len(payload) - pos:
            raise ProtocolError(f"header length {header_len} exceeds the {len(payload)}-byte payload")
        header = json.loads(bytes(payload[pos : pos + header_len]).decode("utf-8"))
        pos += header_len
        lengths = header.get("attachment_lengths", [])
        if not isinstance(lengths, list):
            raise ProtocolError("attachment_lengths must be a list")
        attachments: List[Buffer] = []
        copied = False
        for length in lengths:
            if not isinstance(length, int) or isinstance(length, bool) or length < 0:
                raise ProtocolError(f"invalid attachment length {length!r}")
            if length > len(payload) - pos:
                raise ProtocolError("truncated attachment")
            attachments.append(payload[pos : pos + length])
            if length and not isinstance(payload, memoryview):
                copied = True
            pos += length
        if copied:
            MEMORY_COUNTERS.payload_copies += 1
        return header, attachments
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise ProtocolError("malformed protocol message") from exc


def retain(blob: Buffer) -> bytes:
    """Materialize an attachment that outlives its request.

    Zero-copy decode hands out memoryviews over the frame buffer; any code
    that *stores* an attachment (kv values, sealed tokens, envelopes) or
    keys a dict on it must own real bytes.  Every such boundary calls this —
    it is the explicit copy-on-retain audit point.
    """
    if isinstance(blob, bytes):
        return blob
    return bytes(blob)


@dataclass
class Request:
    """A client request: operation name, JSON-safe arguments, binary attachments."""

    operation: str
    args: Dict[str, Any] = field(default_factory=dict)
    attachments: List[Buffer] = field(default_factory=list)
    #: Optional trace context ``(trace_id, parent_span_id)``.  Serialized as a
    #: ``trace`` header key only when set, so untraced requests are
    #: byte-identical to the pre-tracing wire form; v1 peers and servers that
    #: did not negotiate ``tracing`` in ``hello`` ignore the key (``decode``
    #: tolerates unknown header keys by construction).
    trace: Optional[Tuple[str, str]] = None

    def __post_init__(self) -> None:
        if self.operation not in OPERATIONS:
            raise ProtocolError(f"unknown operation '{self.operation}'")

    def _header(self) -> Dict[str, Any]:
        header: Dict[str, Any] = {"op": self.operation, "args": self.args}
        if self.trace is not None:
            header["trace"] = [self.trace[0], self.trace[1]]
        return header

    def encode(self) -> bytes:
        return _encode_message(self._header(), self.attachments)

    def encode_segments(self) -> List[Buffer]:
        """Segment form for the vectored send path — attachments uncopied."""
        return encode_message_segments(self._header(), self.attachments)

    @staticmethod
    def decode(payload: Buffer) -> "Request":
        header, attachments = _decode_message(payload)
        if "op" not in header:
            raise ProtocolError("request missing operation")
        trace = header.get("trace")
        if (
            not isinstance(trace, list)
            or len(trace) != 2
            or not all(isinstance(part, str) for part in trace)
        ):
            trace = None
        return Request(
            operation=header["op"],
            args=header.get("args", {}),
            attachments=attachments,
            trace=(trace[0], trace[1]) if trace is not None else None,
        )


@dataclass
class Response:
    """A server response: success flag, JSON-safe result, binary attachments."""

    ok: bool
    result: Dict[str, Any] = field(default_factory=dict)
    attachments: List[Buffer] = field(default_factory=list)
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: Flow-control credits returned to the sender with this response.  A
    #: server that advertised a credit window in ``hello`` piggybacks one
    #: grant per answered frame here; v1 peers and pre-credit clients ignore
    #: the field (``decode`` tolerates unknown header keys by construction).
    credit_grant: Optional[int] = None

    def _header(self) -> Dict[str, Any]:
        header: Dict[str, Any] = {"ok": self.ok, "result": self.result}
        if self.error is not None:
            header["error"] = self.error
            header["error_type"] = self.error_type or "TimeCryptError"
        if self.credit_grant:
            header["credits"] = int(self.credit_grant)
        return header

    def encode(self) -> bytes:
        return _encode_message(self._header(), self.attachments)

    def encode_segments(self) -> List[Buffer]:
        """Segment form for the vectored send path — attachments uncopied."""
        return encode_message_segments(self._header(), self.attachments)

    @staticmethod
    def decode(payload: Buffer) -> "Response":
        header, attachments = _decode_message(payload)
        credits = header.get("credits")
        return Response(
            ok=bool(header.get("ok", False)),
            result=header.get("result", {}),
            attachments=attachments,
            error=header.get("error"),
            error_type=header.get("error_type"),
            credit_grant=int(credits) if isinstance(credits, int) and credits > 0 else None,
        )

    @staticmethod
    def success(result: Optional[Dict[str, Any]] = None, attachments: Optional[List[bytes]] = None) -> "Response":
        return Response(ok=True, result=result or {}, attachments=attachments or [])

    @staticmethod
    def failure(error: Exception) -> "Response":
        return Response(ok=False, error=str(error), error_type=type(error).__name__)


class ShardRoutingTable:
    """The engine-shard routing capability advertised in ``hello``.

    Streams are sharded across engine processes by consistent-hashing the
    stream uuid onto the named engines (the same
    :class:`~repro.storage.partitioner.ConsistentHashRing` machinery the
    storage tier places keys with), so client and server agree on ownership
    by construction — the table is just ``(name, host, port)`` triples plus
    an ``epoch`` that increases on every membership change.  A client that
    learned the table at ``hello`` routes stream ops straight to the owner
    with no router hop; a client holding a stale epoch gets a typed
    ``wrong_shard`` redirect carrying the answering engine's epoch and
    refreshes.  Tables are immutable: membership changes produce a *new*
    table (epoch + 1), so concurrent readers never observe a half-updated
    topology.
    """

    def __init__(
        self,
        engines: Any = (),
        epoch: int = 0,
        virtual_tokens: int = 64,
    ) -> None:
        self._engines: Dict[str, tuple[str, int]] = {}
        for name, host, port in engines:
            if name in self._engines:
                raise ProtocolError(f"duplicate engine shard '{name}' in routing table")
            self._engines[str(name)] = (str(host), int(port))
        self._epoch = int(epoch)
        self._virtual_tokens = int(virtual_tokens)
        self._ring: Optional[Any] = None

    # -- introspection ---------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def virtual_tokens(self) -> int:
        return self._virtual_tokens

    @property
    def engine_names(self) -> List[str]:
        return sorted(self._engines)

    def __len__(self) -> int:
        return len(self._engines)

    def address_of(self, name: str) -> tuple[str, int]:
        try:
            return self._engines[name]
        except KeyError:
            raise ProtocolError(f"unknown engine shard '{name}'") from None

    def owner_of(self, stream_uuid: str) -> str:
        """The engine shard owning ``stream_uuid`` under this table."""
        if not self._engines:
            raise ProtocolError("the routing table has no engine shards")
        if self._ring is None:
            # Deferred import: messages is the bottom of the net layer and
            # the ring only pulls in repro.exceptions, so this cannot cycle —
            # but tables are decoded far more often than they place streams.
            from repro.storage.partitioner import ConsistentHashRing

            self._ring = ConsistentHashRing(sorted(self._engines), virtual_tokens=self._virtual_tokens)
        return self._ring.primary(stream_uuid.encode("utf-8"))

    # -- evolution (immutable: each change returns a new table, epoch + 1) -----

    def _entries(self) -> List[tuple[str, str, int]]:
        return [(name, host, port) for name, (host, port) in sorted(self._engines.items())]

    def with_engines(self, engines: Any, epoch: Optional[int] = None) -> "ShardRoutingTable":
        """A new table with this membership replaced (epoch bumped)."""
        return ShardRoutingTable(
            engines,
            epoch=self._epoch + 1 if epoch is None else epoch,
            virtual_tokens=self._virtual_tokens,
        )

    def with_engine(self, name: str, host: str, port: int) -> "ShardRoutingTable":
        if name in self._engines:
            raise ProtocolError(f"engine shard '{name}' already in the routing table")
        return self.with_engines(self._entries() + [(name, host, port)])

    def without_engine(self, name: str) -> "ShardRoutingTable":
        if name not in self._engines:
            raise ProtocolError(f"unknown engine shard '{name}'")
        return self.with_engines([entry for entry in self._entries() if entry[0] != name])

    # -- wire form -------------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe form carried in ``hello`` and ``routing_table`` responses."""
        return {
            "epoch": self._epoch,
            "virtual_tokens": self._virtual_tokens,
            "engines": [
                {"name": name, "host": host, "port": port}
                for name, host, port in self._entries()
            ],
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "ShardRoutingTable":
        try:
            return ShardRoutingTable(
                engines=[
                    (entry["name"], entry["host"], int(entry["port"]))
                    for entry in payload.get("engines", [])
                ],
                epoch=int(payload.get("epoch", 0)),
                virtual_tokens=int(payload.get("virtual_tokens", 64)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed routing-table payload: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardRoutingTable(epoch={self._epoch}, engines={self.engine_names})"
