"""Request/response messages of the TimeCrypt wire protocol.

The protocol mirrors the server engine's API surface: stream lifecycle,
chunk ingest (scalar and bulk), raw range retrieval, statistical queries
(single and multi-stream), grant/envelope pickup (scalar and burst), and
rollup.  A second op family (``kv_*``) carries the raw key-value store
contract for remote storage nodes, so the same framing/pipelining serves
both the engine tier and the storage tier.  ``hello`` negotiates the
protocol: the server answers with its
protocol version and the operations its dispatcher supports, so clients can
pick the pipelined v2 framing and the ``multi_*``-style batch ops without
probing.  Messages are encoded as a JSON header plus optional binary
attachments:

``frame = varint(header_len) || header_json || attachments``

Binary payloads (encrypted chunks, sealed tokens) travel as attachments so
they are never base64-inflated; the header references them by index and
length.  This keeps the format debuggable (the header is readable JSON, as a
protobuf text dump would be) while staying compact where it matters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import ProtocolError
from repro.util.encoding import decode_varint, encode_varint

#: The storage-node op family: the raw :class:`~repro.storage.kv.KeyValueStore`
#: contract carried over the same framing.  Keys and values are opaque byte
#: strings, so they always travel as attachments, never inside the JSON
#: header.  ``kv_scan_page`` is the wire shape of ``scan_prefix``: prefix
#: scans are paged with an exclusive ``after`` cursor so a remote client can
#: stream an arbitrarily large keyspace without ever materializing it (or
#: hitting the frame cap).  ``kv_scan_prefix`` and ``kv_delete_prefix`` are
#: the scan-offload ops: the node walks its own keyspace (optionally
#: key-range-filtered) and ships only matching items — or just a deletion
#: count — so bulk erase and recovery stop paging the keyspace through the
#: engine one ``kv_scan_page`` at a time.
KV_OPERATIONS = (
    "kv_get",
    "kv_put",
    "kv_delete",
    "kv_multi_get",
    "kv_multi_put",
    "kv_multi_delete",
    "kv_scan_page",
    "kv_scan_prefix",
    "kv_delete_prefix",
    "kv_size_bytes",
)

#: Operation names accepted by the server dispatchers (engine + storage node).
OPERATIONS = (
    "hello",
    "create_stream",
    "delete_stream",
    "insert_chunk",
    "insert_chunks",
    "get_range",
    "delete_range",
    "stat_range",
    "stat_range_multi",
    "stat_series",
    "rollup_stream",
    "stream_head",
    "stream_metadata",
    "put_grant",
    "put_grants",
    "fetch_grants",
    "fetch_envelopes",
    "put_envelopes",
    "routing_table",
    "ping",
) + KV_OPERATIONS

#: Operations that move bulk payloads (ingest batches, grant bursts, prefix
#: deletes, repair scans).  Everything else — small stats, metadata, grant
#: pickup, liveness — is interactive.  The server's two-class scheduler
#: drains the classes from separate bounded queues so a small ``stat_range``
#: never waits behind a whole ingest burst; ``kv_multi_get`` stays
#: interactive because query fetches (index covers, chunk reads) ride on it
#: and are byte-capped.
BULK_OPERATIONS = frozenset(
    {
        "insert_chunk",
        "insert_chunks",
        "delete_stream",
        "delete_range",
        "rollup_stream",
        "put_grants",
        "put_envelopes",
        "kv_multi_put",
        "kv_multi_delete",
        "kv_scan_page",
        "kv_scan_prefix",
        "kv_delete_prefix",
    }
)


def classify_operation(operation: Optional[str]) -> str:
    """``"bulk"`` or ``"interactive"`` — the scheduler class of an operation.

    Unknown or unparseable operations classify interactive so they reach the
    dispatcher, which answers them with the proper typed error.
    """
    return "bulk" if operation in BULK_OPERATIONS else "interactive"


def peek_operation(payload: bytes) -> Optional[str]:
    """The operation name of an encoded request, without decoding attachments.

    The server's I/O loop classifies every frame before enqueueing it, so
    this parses only the varint-prefixed JSON header.  Returns ``None`` for
    malformed payloads (the dispatcher will reject them with a typed error).
    """
    try:
        header_len, pos = decode_varint(payload, 0)
        header = json.loads(payload[pos : pos + header_len].decode("utf-8"))
        operation = header.get("op")
    except (ValueError, KeyError, TypeError, UnicodeDecodeError, AttributeError):
        return None
    return operation if isinstance(operation, str) else None


def _encode_message(header: Dict[str, Any], attachments: List[bytes]) -> bytes:
    header = dict(header)
    header["attachment_lengths"] = [len(blob) for blob in attachments]
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    out = bytearray(encode_varint(len(header_bytes)))
    out += header_bytes
    for blob in attachments:
        out += blob
    return bytes(out)


def _decode_message(payload: bytes) -> tuple[Dict[str, Any], List[bytes]]:
    try:
        header_len, pos = decode_varint(payload, 0)
        header = json.loads(payload[pos : pos + header_len].decode("utf-8"))
        pos += header_len
        attachments: List[bytes] = []
        for length in header.get("attachment_lengths", []):
            attachments.append(payload[pos : pos + length])
            if len(attachments[-1]) != length:
                raise ProtocolError("truncated attachment")
            pos += length
        return header, attachments
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        # TypeError included: attacker-shaped headers (e.g. null attachment
        # lengths) surface as TypeError from the arithmetic above.
        raise ProtocolError("malformed protocol message") from exc


@dataclass
class Request:
    """A client request: operation name, JSON-safe arguments, binary attachments."""

    operation: str
    args: Dict[str, Any] = field(default_factory=dict)
    attachments: List[bytes] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.operation not in OPERATIONS:
            raise ProtocolError(f"unknown operation '{self.operation}'")

    def encode(self) -> bytes:
        return _encode_message({"op": self.operation, "args": self.args}, self.attachments)

    @staticmethod
    def decode(payload: bytes) -> "Request":
        header, attachments = _decode_message(payload)
        if "op" not in header:
            raise ProtocolError("request missing operation")
        return Request(operation=header["op"], args=header.get("args", {}), attachments=attachments)


@dataclass
class Response:
    """A server response: success flag, JSON-safe result, binary attachments."""

    ok: bool
    result: Dict[str, Any] = field(default_factory=dict)
    attachments: List[bytes] = field(default_factory=list)
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: Flow-control credits returned to the sender with this response.  A
    #: server that advertised a credit window in ``hello`` piggybacks one
    #: grant per answered frame here; v1 peers and pre-credit clients ignore
    #: the field (``decode`` tolerates unknown header keys by construction).
    credit_grant: Optional[int] = None

    def encode(self) -> bytes:
        header: Dict[str, Any] = {"ok": self.ok, "result": self.result}
        if self.error is not None:
            header["error"] = self.error
            header["error_type"] = self.error_type or "TimeCryptError"
        if self.credit_grant:
            header["credits"] = int(self.credit_grant)
        return _encode_message(header, self.attachments)

    @staticmethod
    def decode(payload: bytes) -> "Response":
        header, attachments = _decode_message(payload)
        credits = header.get("credits")
        return Response(
            ok=bool(header.get("ok", False)),
            result=header.get("result", {}),
            attachments=attachments,
            error=header.get("error"),
            error_type=header.get("error_type"),
            credit_grant=int(credits) if isinstance(credits, int) and credits > 0 else None,
        )

    @staticmethod
    def success(result: Optional[Dict[str, Any]] = None, attachments: Optional[List[bytes]] = None) -> "Response":
        return Response(ok=True, result=result or {}, attachments=attachments or [])

    @staticmethod
    def failure(error: Exception) -> "Response":
        return Response(ok=False, error=str(error), error_type=type(error).__name__)


class ShardRoutingTable:
    """The engine-shard routing capability advertised in ``hello``.

    Streams are sharded across engine processes by consistent-hashing the
    stream uuid onto the named engines (the same
    :class:`~repro.storage.partitioner.ConsistentHashRing` machinery the
    storage tier places keys with), so client and server agree on ownership
    by construction — the table is just ``(name, host, port)`` triples plus
    an ``epoch`` that increases on every membership change.  A client that
    learned the table at ``hello`` routes stream ops straight to the owner
    with no router hop; a client holding a stale epoch gets a typed
    ``wrong_shard`` redirect carrying the answering engine's epoch and
    refreshes.  Tables are immutable: membership changes produce a *new*
    table (epoch + 1), so concurrent readers never observe a half-updated
    topology.
    """

    def __init__(
        self,
        engines: Any = (),
        epoch: int = 0,
        virtual_tokens: int = 64,
    ) -> None:
        self._engines: Dict[str, tuple[str, int]] = {}
        for name, host, port in engines:
            if name in self._engines:
                raise ProtocolError(f"duplicate engine shard '{name}' in routing table")
            self._engines[str(name)] = (str(host), int(port))
        self._epoch = int(epoch)
        self._virtual_tokens = int(virtual_tokens)
        self._ring: Optional[Any] = None

    # -- introspection ---------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def virtual_tokens(self) -> int:
        return self._virtual_tokens

    @property
    def engine_names(self) -> List[str]:
        return sorted(self._engines)

    def __len__(self) -> int:
        return len(self._engines)

    def address_of(self, name: str) -> tuple[str, int]:
        try:
            return self._engines[name]
        except KeyError:
            raise ProtocolError(f"unknown engine shard '{name}'") from None

    def owner_of(self, stream_uuid: str) -> str:
        """The engine shard owning ``stream_uuid`` under this table."""
        if not self._engines:
            raise ProtocolError("the routing table has no engine shards")
        if self._ring is None:
            # Deferred import: messages is the bottom of the net layer and
            # the ring only pulls in repro.exceptions, so this cannot cycle —
            # but tables are decoded far more often than they place streams.
            from repro.storage.partitioner import ConsistentHashRing

            self._ring = ConsistentHashRing(sorted(self._engines), virtual_tokens=self._virtual_tokens)
        return self._ring.primary(stream_uuid.encode("utf-8"))

    # -- evolution (immutable: each change returns a new table, epoch + 1) -----

    def _entries(self) -> List[tuple[str, str, int]]:
        return [(name, host, port) for name, (host, port) in sorted(self._engines.items())]

    def with_engines(self, engines: Any, epoch: Optional[int] = None) -> "ShardRoutingTable":
        """A new table with this membership replaced (epoch bumped)."""
        return ShardRoutingTable(
            engines,
            epoch=self._epoch + 1 if epoch is None else epoch,
            virtual_tokens=self._virtual_tokens,
        )

    def with_engine(self, name: str, host: str, port: int) -> "ShardRoutingTable":
        if name in self._engines:
            raise ProtocolError(f"engine shard '{name}' already in the routing table")
        return self.with_engines(self._entries() + [(name, host, port)])

    def without_engine(self, name: str) -> "ShardRoutingTable":
        if name not in self._engines:
            raise ProtocolError(f"unknown engine shard '{name}'")
        return self.with_engines([entry for entry in self._entries() if entry[0] != name])

    # -- wire form -------------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe form carried in ``hello`` and ``routing_table`` responses."""
        return {
            "epoch": self._epoch,
            "virtual_tokens": self._virtual_tokens,
            "engines": [
                {"name": name, "host": host, "port": port}
                for name, host, port in self._entries()
            ],
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "ShardRoutingTable":
        try:
            return ShardRoutingTable(
                engines=[
                    (entry["name"], entry["host"], int(entry["port"]))
                    for entry in payload.get("engines", [])
                ],
                epoch=int(payload.get("epoch", 0)),
                virtual_tokens=int(payload.get("virtual_tokens", 64)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed routing-table payload: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardRoutingTable(epoch={self._epoch}, engines={self.engine_names})"
