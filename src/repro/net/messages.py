"""Request/response messages of the TimeCrypt wire protocol.

The protocol mirrors the server engine's API surface: stream lifecycle,
chunk ingest (scalar and bulk), raw range retrieval, statistical queries
(single and multi-stream), grant/envelope pickup (scalar and burst), and
rollup.  A second op family (``kv_*``) carries the raw key-value store
contract for remote storage nodes, so the same framing/pipelining serves
both the engine tier and the storage tier.  ``hello`` negotiates the
protocol: the server answers with its
protocol version and the operations its dispatcher supports, so clients can
pick the pipelined v2 framing and the ``multi_*``-style batch ops without
probing.  Messages are encoded as a JSON header plus optional binary
attachments:

``frame = varint(header_len) || header_json || attachments``

Binary payloads (encrypted chunks, sealed tokens) travel as attachments so
they are never base64-inflated; the header references them by index and
length.  This keeps the format debuggable (the header is readable JSON, as a
protobuf text dump would be) while staying compact where it matters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import ProtocolError
from repro.util.encoding import decode_varint, encode_varint

#: The storage-node op family: the raw :class:`~repro.storage.kv.KeyValueStore`
#: contract carried over the same framing.  Keys and values are opaque byte
#: strings, so they always travel as attachments, never inside the JSON
#: header.  ``kv_scan_page`` is the wire shape of ``scan_prefix``: prefix
#: scans are paged with an exclusive ``after`` cursor so a remote client can
#: stream an arbitrarily large keyspace without ever materializing it (or
#: hitting the frame cap).
KV_OPERATIONS = (
    "kv_get",
    "kv_put",
    "kv_delete",
    "kv_multi_get",
    "kv_multi_put",
    "kv_multi_delete",
    "kv_scan_page",
    "kv_size_bytes",
)

#: Operation names accepted by the server dispatchers (engine + storage node).
OPERATIONS = (
    "hello",
    "create_stream",
    "delete_stream",
    "insert_chunk",
    "insert_chunks",
    "get_range",
    "delete_range",
    "stat_range",
    "stat_range_multi",
    "stat_series",
    "rollup_stream",
    "stream_head",
    "stream_metadata",
    "put_grant",
    "put_grants",
    "fetch_grants",
    "fetch_envelopes",
    "put_envelopes",
    "ping",
) + KV_OPERATIONS


def _encode_message(header: Dict[str, Any], attachments: List[bytes]) -> bytes:
    header = dict(header)
    header["attachment_lengths"] = [len(blob) for blob in attachments]
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    out = bytearray(encode_varint(len(header_bytes)))
    out += header_bytes
    for blob in attachments:
        out += blob
    return bytes(out)


def _decode_message(payload: bytes) -> tuple[Dict[str, Any], List[bytes]]:
    try:
        header_len, pos = decode_varint(payload, 0)
        header = json.loads(payload[pos : pos + header_len].decode("utf-8"))
        pos += header_len
        attachments: List[bytes] = []
        for length in header.get("attachment_lengths", []):
            attachments.append(payload[pos : pos + length])
            if len(attachments[-1]) != length:
                raise ProtocolError("truncated attachment")
            pos += length
        return header, attachments
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        # TypeError included: attacker-shaped headers (e.g. null attachment
        # lengths) surface as TypeError from the arithmetic above.
        raise ProtocolError("malformed protocol message") from exc


@dataclass
class Request:
    """A client request: operation name, JSON-safe arguments, binary attachments."""

    operation: str
    args: Dict[str, Any] = field(default_factory=dict)
    attachments: List[bytes] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.operation not in OPERATIONS:
            raise ProtocolError(f"unknown operation '{self.operation}'")

    def encode(self) -> bytes:
        return _encode_message({"op": self.operation, "args": self.args}, self.attachments)

    @staticmethod
    def decode(payload: bytes) -> "Request":
        header, attachments = _decode_message(payload)
        if "op" not in header:
            raise ProtocolError("request missing operation")
        return Request(operation=header["op"], args=header.get("args", {}), attachments=attachments)


@dataclass
class Response:
    """A server response: success flag, JSON-safe result, binary attachments."""

    ok: bool
    result: Dict[str, Any] = field(default_factory=dict)
    attachments: List[bytes] = field(default_factory=list)
    error: Optional[str] = None
    error_type: Optional[str] = None

    def encode(self) -> bytes:
        header: Dict[str, Any] = {"ok": self.ok, "result": self.result}
        if self.error is not None:
            header["error"] = self.error
            header["error_type"] = self.error_type or "TimeCryptError"
        return _encode_message(header, self.attachments)

    @staticmethod
    def decode(payload: bytes) -> "Response":
        header, attachments = _decode_message(payload)
        return Response(
            ok=bool(header.get("ok", False)),
            result=header.get("result", {}),
            attachments=attachments,
            error=header.get("error"),
            error_type=header.get("error_type"),
        )

    @staticmethod
    def success(result: Optional[Dict[str, Any]] = None, attachments: Optional[List[bytes]] = None) -> "Response":
        return Response(ok=True, result=result or {}, attachments=attachments or [])

    @staticmethod
    def failure(error: Exception) -> "Response":
        return Response(ok=False, error=str(error), error_type=type(error).__name__)
