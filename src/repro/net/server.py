"""The TCP server exposing a :class:`~repro.server.engine.ServerEngine`.

The transport is a single-threaded ``selectors`` I/O loop feeding a
**bounded worker pool** (the Netty stand-in): one thread accepts
connections and reads bytes, an incremental
:class:`~repro.net.framing.FrameAssembler` per connection turns them into
frames, and each complete frame is dispatched on a shared
``ThreadPoolExecutor`` — so request handling no longer scales one thread
per connection, and a slow request only occupies one pool slot.

Both framing versions are served on every connection:

* **v2 frames** carry a correlation id; they are dispatched concurrently
  and their responses are written (under the per-connection write lock)
  whenever they finish — out of order is expected and correct, the client
  matches responses by correlation id.
* **v1 frames** have no correlation id, so their responses must arrive in
  request order; per connection they run strictly one at a time through a
  FIFO queue (still on the pool, never blocking the I/O loop).

v2 dispatch is **scheduled**, not FIFO: every frame is classified
interactive or bulk (:func:`~repro.net.messages.classify_operation`) into
one of two *bounded* queues drained weighted-round-robin by the worker
pool, so a small ``stat_range`` never waits behind a whole ingest burst.
A full queue sheds the frame with a typed ``overloaded`` response carrying
a retry-after hint — never silent latency or dead air.  Backpressure is
credit-based: ``hello`` advertises an initial per-connection window,
every v2 response returns one credit (the ``credits`` header field), and
a well-behaved client caps its in-flight frames at the window
(``scheduling="fifo"`` restores the legacy unbounded direct-submit path
for comparison benchmarks).

The dispatcher is also usable without sockets through
:class:`RequestDispatcher`, which the in-process transport and the tests
reuse directly.  The transport itself is dispatcher-agnostic: any
:class:`WireDispatcher` can sit behind it — the storage-node tier
(:mod:`repro.storage.node`) serves the raw key-value contract through the
exact same I/O loop, worker pool, and framing.
"""

from __future__ import annotations

import logging
import selectors
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.exceptions import OverloadedError, ProtocolError, TimeCryptError
from repro.obs.metrics import REGISTRY
from repro.obs.tracing import SPANS, SpanCollector, new_span_id, set_context
from repro.net.framing import (
    PROTOCOL_VERSION,
    Frame,
    FrameAssembler,
    encode_frame,
    encode_frame_segments_v2,
    encode_frame_v2,
    write_vectored,
)
from repro.net.messages import (
    OPERATIONS,
    WIRE_COMPRESSION_SCHEMES,
    WIRE_COMPRESSION_THRESHOLD,
    Request,
    Response,
    classify_operation,
    maybe_compress_segments,
    peek_operation,
    retain,
)
from repro.server.engine import ServerEngine, _metadata_from_json, _metadata_to_json
from repro.timeseries.serialization import decode_encrypted_chunk, encode_encrypted_chunk
from repro.util.timeutil import TimeRange

#: Default per-connection credit window advertised in ``hello``.
DEFAULT_CREDIT_WINDOW = 256
#: Default bounded-queue depths for the two scheduler classes.  Interactive
#: requests are small and fast, so the queue is generous; the bulk cap is the
#: backpressure point — beyond it, writers get typed ``overloaded`` sheds.
DEFAULT_INTERACTIVE_QUEUE_LIMIT = 1024
DEFAULT_BULK_QUEUE_LIMIT = 128
#: Interactive frames dispatched per bulk frame when both queues are non-empty.
DEFAULT_INTERACTIVE_WEIGHT = 4
#: Fallback retry hint carried in ``overloaded`` responses before the
#: scheduler has observed any bulk drain (the adaptive hint needs at least
#: two dispatched bulk frames to measure an interval).
DEFAULT_RETRY_AFTER_MS = 25
#: Clamp bounds for the adaptive retry hint derived from the measured
#: bulk-queue drain rate: never tell a client to hammer faster than 5 ms,
#: never park it longer than a second.
MIN_RETRY_AFTER_MS = 5
MAX_RETRY_AFTER_MS = 1000

logger = logging.getLogger(__name__)


class WireDispatcher:
    """Shared dispatch machinery: op lookup, ``hello`` negotiation, ``ping``.

    Concrete dispatchers (the server-engine :class:`RequestDispatcher`, the
    storage-node dispatcher) add ``_op_<name>`` handlers; ``hello``
    advertises exactly the operations this instance implements, so a client
    negotiating against a storage node does not believe it can
    ``insert_chunks`` there (and vice versa).
    """

    #: Per-connection flow-control window advertised in ``hello``.  Set by the
    #: owning transport (:class:`TimeCryptTCPServer`); ``None`` (the default,
    #: e.g. for in-process dispatch) advertises no credits.
    credit_window: Optional[int] = None

    #: Frame-compression schemes advertised in ``hello`` (set by the owning
    #: transport when ``wire_compression`` is enabled; ``None`` advertises
    #: none, so clients never send compressed frames to this dispatcher).
    wire_compression: Optional[List[str]] = None

    #: Whether this node records server-side spans for peers that offer the
    #: ``tracing`` capability in ``hello``.  Set by the owning transport;
    #: advertised back so clients know their trace context will be honoured.
    tracing: bool = False

    #: Span ring buffer served by ``trace_dump``.  Set by the owning
    #: transport; defaults to the process-global collector so in-process
    #: dispatchers dump something sensible too.
    span_collector: Optional[SpanCollector] = None

    #: Human-readable node identity stamped on spans and scrape responses
    #: (an engine-shard name, ``router``, a storage-node name).
    node_name: str = "node"

    def supported_operations(self) -> List[str]:
        """The wire operations this dispatcher actually implements."""
        return [op for op in OPERATIONS if hasattr(self, f"_op_{op}")]

    def dispatch(self, request: Request) -> Response:
        """Execute one request, translating library errors into error responses."""
        handler = getattr(self, f"_op_{request.operation}", None)
        if handler is None:
            return Response.failure(ProtocolError(f"unsupported operation '{request.operation}'"))
        try:
            return handler(request)
        except TimeCryptError as exc:
            return Response.failure(exc)
        except Exception as exc:  # noqa: BLE001 — dead air is worse than a broad catch
            # A non-library exception (malformed args hitting int(), a buggy
            # handler) must still answer the correlation id: an unanswered
            # request reads as a peer outage on the client side.
            return Response.failure(self._unexpected_error(exc))

    def _unexpected_error(self, exc: Exception) -> TimeCryptError:
        """Classify a non-TimeCryptError escaping a handler (overridable)."""
        return ProtocolError(f"request failed in dispatch: {type(exc).__name__}: {exc}")

    # -- negotiation ---------------------------------------------------------------

    def hello_extras(self) -> Dict:
        """Extra capability fields merged into the ``hello`` response.

        Overridden by dispatchers that advertise more than the op list — the
        sharded engine tier announces its routing table here, so clients
        learn stream placement during negotiation with no extra round trip.
        """
        return {}

    def _op_hello(self, _request: Request) -> Response:
        """Protocol negotiation: advertise the framing version and operations."""
        payload = {"protocol": PROTOCOL_VERSION, "operations": self.supported_operations()}
        if self.credit_window:
            payload["credits"] = int(self.credit_window)
        if self.wire_compression:
            payload["compression"] = list(self.wire_compression)
        if self.tracing:
            payload["tracing"] = True
        payload.update(self.hello_extras())
        return Response.success(payload)

    def _op_ping(self, _request: Request) -> Response:
        return Response.success({"pong": True})

    # -- observability scrape ops ---------------------------------------------------

    def _op_stats(self, _request: Request) -> Response:
        """One round trip pulls every registered metric source in this process.

        Metrics are leakage-aware by construction: counters describe request
        shapes (round trips, byte totals, queue depths, cache hits), never
        key material or plaintext.
        """
        return Response.success({"node": self.node_name, "metrics": REGISTRY.snapshot()})

    def _op_trace_dump(self, request: Request) -> Response:
        """Dump this node's span ring buffer (optionally one trace id)."""
        trace_id = request.args.get("trace_id")
        limit = request.args.get("limit")
        collector = self.span_collector if self.span_collector is not None else SPANS
        spans = collector.spans(
            trace_id=trace_id if isinstance(trace_id, str) else None,
            limit=int(limit) if isinstance(limit, int) and not isinstance(limit, bool) else None,
        )
        return Response.success({"node": self.node_name, "spans": spans})


class RequestDispatcher(WireDispatcher):
    """Maps protocol requests onto server-engine calls.

    Engine state (the stream registry, the index node cache, query stats) is
    not thread-safe, so engine-touching operations are serialised behind one
    lock: a single engine is deliberately serial, and scaling comes from
    running *several* engines behind the shard router
    (:mod:`repro.server.router`), not from intra-engine concurrency.
    ``hello``/``ping`` stay lock-free so negotiation and liveness probes are
    never queued behind a long-running query.
    """

    #: Operations dispatched without taking the engine lock.  The scrape ops
    #: read only the metrics registry and the span buffer (both internally
    #: locked), so an operator can always pull stats from a busy engine.
    _LOCK_FREE_OPS = frozenset({"hello", "ping", "stats", "trace_dump"})

    #: Ingest batches above this many chunks are applied in slices, with the
    #: engine lock released between slices, so one enormous ``insert_chunks``
    #: cannot park every interactive op for its full duration.  Typical
    #: batches (≤ the slice) take the single-acquisition fast path.
    DEFAULT_BULK_SLICE_CHUNKS = 64

    def __init__(self, engine: ServerEngine, bulk_slice_chunks: int = DEFAULT_BULK_SLICE_CHUNKS) -> None:
        self._engine = engine
        self._engine_lock = threading.Lock()
        self._bulk_slice_chunks = max(0, int(bulk_slice_chunks))

    def dispatch(self, request: Request) -> Response:
        if request.operation in self._LOCK_FREE_OPS:
            return super().dispatch(request)
        if (
            request.operation == "insert_chunks"
            and self._bulk_slice_chunks
            and len(request.attachments) > self._bulk_slice_chunks
        ):
            return self._dispatch_sliced_ingest(request)
        try:
            with self._engine_lock:
                return self._dispatch_engine(request)
        except TimeCryptError as exc:
            return Response.failure(exc)
        except Exception as exc:  # noqa: BLE001 — dead air is worse than a broad catch
            return Response.failure(self._unexpected_error(exc))

    def _dispatch_sliced_ingest(self, request: Request) -> Response:
        """A giant ingest batch, applied slice by slice through the normal path.

        Each slice is a full ``dispatch`` of a sub-request, so subclass
        checks (shard ownership, epoch redirects) and per-slice validation
        run unchanged, and interactive ops queued on the engine lock
        interleave between slices.  A batch that fails validation mid-way
        stops at the offending slice with earlier slices applied — the same
        partial-application contract a client splitting its own batches
        gets; the engine's consecutiveness check
        (:meth:`~repro.server.engine.ServerEngine.validate_chunk_batch`)
        makes the failure typed and precise.
        """
        size = self._bulk_slice_chunks
        total = len(request.attachments)
        first_window: Optional[int] = None
        for start in range(0, total, size):
            sub = Request(request.operation, dict(request.args), request.attachments[start : start + size])
            response = self.dispatch(sub)
            if not response.ok:
                return response
            if first_window is None:
                first_window = response.result.get("window_index")
        return Response.success({"window_index": first_window, "num_chunks": total})

    def _dispatch_engine(self, request: Request) -> Response:
        """One engine-touching request, already under the engine lock."""
        return super().dispatch(request)

    # -- stream lifecycle ----------------------------------------------------------

    def _op_create_stream(self, request: Request) -> Response:
        if not request.attachments:
            raise ProtocolError("create_stream requires a metadata attachment")
        metadata = _metadata_from_json(request.attachments[0])
        self._engine.create_stream(metadata)
        return Response.success({"uuid": metadata.uuid})

    def _op_delete_stream(self, request: Request) -> Response:
        self._engine.delete_stream(request.args["uuid"])
        return Response.success()

    def _op_stream_head(self, request: Request) -> Response:
        return Response.success({"head": self._engine.stream_head(request.args["uuid"])})

    def _op_stream_metadata(self, request: Request) -> Response:
        metadata = self._engine.stream_metadata(request.args["uuid"])
        return Response.success(attachments=[_metadata_to_json(metadata)])

    def _op_rollup_stream(self, request: Request) -> Response:
        deleted = self._engine.rollup_stream(
            request.args["uuid"],
            request.args["resolution_windows"],
            request.args.get("before_time"),
        )
        return Response.success({"deleted": deleted})

    # -- ingest / raw data ------------------------------------------------------------

    def _op_insert_chunk(self, request: Request) -> Response:
        if not request.attachments:
            raise ProtocolError("insert_chunk requires a chunk attachment")
        chunk = decode_encrypted_chunk(request.attachments[0])
        window_index = self._engine.insert_chunk(chunk)
        return Response.success({"window_index": window_index})

    def _op_insert_chunks(self, request: Request) -> Response:
        """Bulk ingest: one consecutive chunk batch per request (one attachment each)."""
        if not request.attachments:
            raise ProtocolError("insert_chunks requires at least one chunk attachment")
        chunks = [decode_encrypted_chunk(blob) for blob in request.attachments]
        window_index = self._engine.insert_chunks(chunks)
        return Response.success({"window_index": window_index, "num_chunks": len(chunks)})

    def _op_get_range(self, request: Request) -> Response:
        chunks = self._engine.get_range(
            request.args["uuid"], TimeRange(request.args["start"], request.args["end"])
        )
        return Response.success(
            {"num_chunks": len(chunks)},
            attachments=[encode_encrypted_chunk(chunk) for chunk in chunks],
        )

    def _op_delete_range(self, request: Request) -> Response:
        deleted = self._engine.delete_range(
            request.args["uuid"], TimeRange(request.args["start"], request.args["end"])
        )
        return Response.success({"deleted": deleted})

    # -- statistical queries ----------------------------------------------------------------

    @staticmethod
    def _result_to_json(result) -> Dict:
        return {
            "stream_uuid": result.stream_uuid,
            "window_start": result.window_start,
            "window_end": result.window_end,
            "cells": [
                {"value": cell.value, "start": cell.window_start, "end": cell.window_end}
                for cell in result.cells
            ],
            "component_names": list(result.component_names),
            "num_index_nodes": result.num_index_nodes,
        }

    def _op_stat_range(self, request: Request) -> Response:
        result = self._engine.stat_range(
            request.args["uuid"], TimeRange(request.args["start"], request.args["end"])
        )
        return Response.success({"stat": self._result_to_json(result)})

    def _op_stat_series(self, request: Request) -> Response:
        results = self._engine.stat_series(
            request.args["uuid"],
            TimeRange(request.args["start"], request.args["end"]),
            request.args["granularity_windows"],
        )
        return Response.success({"series": [self._result_to_json(result) for result in results]})

    def _op_stat_range_multi(self, request: Request) -> Response:
        aggregate = self._engine.stat_range_multi(
            request.args["uuids"], TimeRange(request.args["start"], request.args["end"])
        )
        return Response.success(
            {
                "values": list(aggregate.values),
                "component_names": list(aggregate.component_names),
                "per_stream_intervals": [list(item) for item in aggregate.per_stream_intervals],
            }
        )

    # -- grants / envelopes --------------------------------------------------------------------

    def _op_put_grant(self, request: Request) -> Response:
        if not request.attachments:
            raise ProtocolError("put_grant requires a sealed token attachment")
        # Copy-on-retain: sealed tokens are stored past this request's
        # lifetime, so they must own their bytes (attachments may be views
        # over the frame buffer on the zero-copy path).
        grant_id = self._engine.put_grant(
            request.args["uuid"], request.args["principal_id"], retain(request.attachments[0])
        )
        return Response.success({"grant_id": grant_id})

    def _op_put_grants(self, request: Request) -> Response:
        """Grant burst: many sealed tokens land in one storage ``multi_put``."""
        targets: List[Dict] = request.args["grants"]
        if len(targets) != len(request.attachments):
            raise ProtocolError("put_grants targets and attachments must align")
        grant_ids = self._engine.put_grants(
            [
                (target["uuid"], target["principal_id"], retain(sealed))
                for target, sealed in zip(targets, request.attachments)
            ]
        )
        return Response.success({"grant_ids": list(grant_ids)})

    def _op_fetch_grants(self, request: Request) -> Response:
        grants = self._engine.fetch_grants(request.args["uuid"], request.args["principal_id"])
        return Response.success({"num_grants": len(grants)}, attachments=list(grants))

    def _op_put_envelopes(self, request: Request) -> Response:
        windows: List[int] = request.args["windows"]
        if len(windows) != len(request.attachments):
            raise ProtocolError("envelope windows and attachments must align")
        self._engine.token_store.put_envelopes(
            request.args["uuid"],
            request.args["resolution_chunks"],
            dict(zip(windows, (retain(blob) for blob in request.attachments))),
        )
        return Response.success({"stored": len(windows)})

    def _op_fetch_envelopes(self, request: Request) -> Response:
        envelopes = self._engine.fetch_envelopes(
            request.args["uuid"],
            request.args["resolution_chunks"],
            request.args["window_start"],
            request.args["window_end"],
        )
        windows = sorted(envelopes)
        return Response.success(
            {"windows": windows}, attachments=[envelopes[window] for window in windows]
        )


@dataclass
class SchedulerStats:
    """Deterministic scheduler counters (exposed for benches and the CI gate).

    Everything here is workload-derived, not wall-clock-derived: enqueue and
    shed counts, queue-depth high-water marks, and the per-connection
    in-flight peak — so CI can diff them exactly against committed baselines.
    """

    enqueued_interactive: int = 0
    enqueued_bulk: int = 0
    dispatched_interactive: int = 0
    dispatched_bulk: int = 0
    shed_interactive: int = 0
    shed_bulk: int = 0
    max_depth_interactive: int = 0
    max_depth_bulk: int = 0
    #: Highest in-flight v2 frame count observed on any single connection —
    #: a credit-respecting client keeps this at or below the advertised window.
    max_in_flight: int = 0
    #: Wire-memory counters, filled in by the owning transport (they count in
    #: FIFO mode too): bytes on the wire each way, responses shipped through
    #: ``write_vectored``, small segments it merged, and responses sent in
    #: the negotiated compressed form.
    bytes_sent: int = 0
    bytes_received: int = 0
    vectored_writes: int = 0
    frames_coalesced: int = 0
    frames_compressed: int = 0

    def snapshot(self) -> Dict[str, int]:
        return asdict(self)


class _FrameScheduler:
    """Two bounded frame queues drained weighted-round-robin by the pool.

    ``submit`` is called on the I/O loop and never blocks: a frame either
    lands in its class queue or (queue at capacity) is refused, and the
    caller sheds it with a typed ``overloaded`` response.  Drain workers run
    on the shared ``ThreadPoolExecutor``; at most ``max_workers`` are active
    at once, and each yields its pool slot after ``yield_every`` frames so
    v1 drains and shed replies queued behind it are never starved under
    sustained load.  When both queues are non-empty, ``interactive_weight``
    interactive frames are dispatched per bulk frame.
    """

    def __init__(
        self,
        pool: ThreadPoolExecutor,
        handler,
        max_workers: int,
        interactive_limit: int,
        bulk_limit: int,
        interactive_weight: int,
        yield_every: int = 16,
    ) -> None:
        self._pool = pool
        self._handler = handler
        self._max_workers = max_workers
        self._limits = {"interactive": int(interactive_limit), "bulk": int(bulk_limit)}
        self._queues: Dict[str, Deque[Tuple["_Connection", Frame, int]]] = {
            "interactive": deque(),
            "bulk": deque(),
        }
        self._weight = max(1, int(interactive_weight))
        self._yield_every = max(1, int(yield_every))
        self._lock = threading.Lock()
        self._active = 0
        self._interactive_run = 0
        # Bulk drain-rate tracking for the adaptive overload hint: an EWMA of
        # the interval between consecutive bulk dispatches.  Guarded by
        # ``_lock`` (updated inside ``_next_locked``).
        self._bulk_last_dispatch_ns = 0
        self._bulk_interval_ewma_ns = 0.0
        # repro: allow[REPRO005] registered by the owning TimeCryptTCPServer under server.scheduler[...] via its scheduler_stats() snapshot
        self.stats = SchedulerStats()

    def submit(
        self,
        connection: "_Connection",
        frame: Frame,
        klass: str,
        force: bool = False,
        enqueue_ns: int = 0,
    ) -> bool:
        """Enqueue a classified frame; False means the queue refused it (shed).

        ``force`` bypasses the capacity check — liveness ops (``hello``,
        ``ping``) are always admitted so saturation never reads as an outage.
        ``enqueue_ns`` rides the existing queue tuple through to the handler
        (it widens the tuple, no extra allocation); it is non-zero only when
        the connection negotiated tracing, so the queue-wait span field costs
        untraced frames nothing.
        """
        with self._lock:
            queue = self._queues[klass]
            if not force and len(queue) >= self._limits[klass]:
                if klass == "bulk":
                    self.stats.shed_bulk += 1
                else:
                    self.stats.shed_interactive += 1
                return False
            queue.append((connection, frame, enqueue_ns))
            depth = len(queue)
            if klass == "bulk":
                self.stats.enqueued_bulk += 1
                if depth > self.stats.max_depth_bulk:
                    self.stats.max_depth_bulk = depth
            else:
                self.stats.enqueued_interactive += 1
                if depth > self.stats.max_depth_interactive:
                    self.stats.max_depth_interactive = depth
            spawn = self._active < self._max_workers
            if spawn:
                self._active += 1
        if spawn:
            self._spawn()
        return True

    def note_in_flight(self, depth: int) -> None:
        with self._lock:
            if depth > self.stats.max_in_flight:
                self.stats.max_in_flight = depth

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return self.stats.snapshot()

    def _spawn(self) -> None:
        try:
            self._pool.submit(self._drain)
        except RuntimeError:
            # Pool already shut down: the server is stopping, abandon the slot.
            with self._lock:
                self._active -= 1

    def retry_hint_ms(self, klass: str, default: int) -> int:
        """Retry-after hint from the measured bulk drain rate.

        ``depth × EWMA(bulk inter-dispatch interval)`` estimates how long the
        queue needs to drain to where a retried frame would land, clamped to
        [``MIN_RETRY_AFTER_MS``, ``MAX_RETRY_AFTER_MS``].  Before two bulk
        frames have been dispatched there is no measured rate and the caller's
        ``default`` (the configured constant) is returned; interactive sheds
        also use the default — their queue is not the drain-limited one.
        """
        if klass != "bulk":
            return default
        with self._lock:
            ewma_ns = self._bulk_interval_ewma_ns
            depth = len(self._queues["bulk"])
        if ewma_ns <= 0.0:
            return default
        hint = max(1, depth) * ewma_ns / 1e6
        return int(min(max(hint, MIN_RETRY_AFTER_MS), MAX_RETRY_AFTER_MS))

    def _next_locked(self) -> Optional[Tuple["_Connection", Frame, int]]:
        interactive = self._queues["interactive"]
        bulk = self._queues["bulk"]
        if interactive and (self._interactive_run < self._weight or not bulk):
            self._interactive_run += 1
            self.stats.dispatched_interactive += 1
            return interactive.popleft()
        if bulk:
            self._interactive_run = 0
            self.stats.dispatched_bulk += 1
            now_ns = time.monotonic_ns()
            if self._bulk_last_dispatch_ns:
                interval = now_ns - self._bulk_last_dispatch_ns
                if self._bulk_interval_ewma_ns > 0.0:
                    self._bulk_interval_ewma_ns += 0.2 * (interval - self._bulk_interval_ewma_ns)
                else:
                    self._bulk_interval_ewma_ns = float(interval)
            self._bulk_last_dispatch_ns = now_ns
            return bulk.popleft()
        return None

    def _drain(self) -> None:
        processed = 0
        while True:
            with self._lock:
                item = self._next_locked()
                if item is None:
                    self._active -= 1
                    return
            try:
                self._handler(*item)
            except Exception:  # noqa: BLE001 — the handler answers its own errors
                pass
            processed += 1
            if processed >= self._yield_every:
                # Re-submit instead of looping forever: gives pool slots back
                # to v1 drains and shed replies under sustained load.
                self._spawn()
                return


class _Connection:
    """Per-connection transport state: socket, parser, write lock, v1 FIFO."""

    def __init__(self, sock: socket.socket, address: Tuple[str, int], views: bool = False) -> None:
        self.sock = sock
        self.address = address
        self.assembler = FrameAssembler(views=views)
        #: Reusable receive staging buffer for ``recv_into`` — safe to reuse
        #: because the assembler copies into per-frame payload buffers.
        self.recv_buffer = bytearray(1 << 16)
        #: True once this peer's ``hello`` offered a compression scheme the
        #: transport also enables; responses over the threshold then go out
        #: compressed.
        self.accepts_compression = False
        #: True once this peer's ``hello`` offered the ``tracing`` capability
        #: and the transport has tracing enabled.  Every per-frame tracing
        #: cost (timestamps, span dicts) is gated on this flag, so untraced
        #: connections pay zero extra allocations per frame.
        self.tracing = False
        self.write_lock = threading.Lock()
        #: v1 frames awaiting dispatch; guarded by ``state_lock``.  At most one
        #: v1 frame per connection is ever on the pool, preserving response order.
        self.v1_queue: Deque[Frame] = deque()
        self.v1_active = False
        #: v2 frames accepted but not yet answered; guarded by ``state_lock``.
        self.in_flight = 0
        self.state_lock = threading.Lock()
        self.closed = False


class TimeCryptTCPServer:
    """A background TCP server: selector I/O loop + bounded dispatch pool.

    ``max_workers`` bounds concurrent request execution across *all*
    connections; accepting another client costs a selector registration,
    not a thread.  A custom ``dispatcher`` may be injected (tests use this
    to add slow or failing operations).

    v2 frames are admitted through a two-class weighted scheduler with
    bounded queues and credit-based flow control (see the module docstring);
    ``scheduling="fifo"`` restores the legacy unbounded direct-submit path
    for before/after benchmarks, and ``credit_window=0`` disables credits.
    """

    def __init__(
        self,
        engine: Optional[ServerEngine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 8,
        dispatcher: Optional[WireDispatcher] = None,
        scheduling: str = "weighted",
        credit_window: int = DEFAULT_CREDIT_WINDOW,
        interactive_queue_limit: int = DEFAULT_INTERACTIVE_QUEUE_LIMIT,
        bulk_queue_limit: int = DEFAULT_BULK_QUEUE_LIMIT,
        interactive_weight: int = DEFAULT_INTERACTIVE_WEIGHT,
        retry_after_ms: int = DEFAULT_RETRY_AFTER_MS,
        zero_copy: bool = True,
        wire_compression: bool = False,
        compress_threshold: int = WIRE_COMPRESSION_THRESHOLD,
        tracing: bool = True,
        node_name: Optional[str] = None,
        span_collector: Optional[SpanCollector] = None,
        slow_request_ms: Optional[float] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("the dispatch pool needs at least one worker")
        if dispatcher is None and engine is None:
            raise ValueError("either an engine or a dispatcher is required")
        if scheduling not in ("weighted", "fifo"):
            raise ValueError(f"unknown scheduling mode '{scheduling}'")
        self._engine = engine
        self._dispatcher = dispatcher if dispatcher is not None else RequestDispatcher(engine)
        self._credit_window = max(0, int(credit_window or 0))
        self._dispatcher.credit_window = self._credit_window or None
        self._retry_after_ms = max(1, int(retry_after_ms))
        #: Tracing support: spans are recorded only for connections whose
        #: ``hello`` offered the capability, so ``tracing=True`` costs nothing
        #: until a client opts in.  ``tracing=False`` refuses the capability
        #: outright (the hot path then never checks a clock).
        self._tracing = bool(tracing)
        self._spans = span_collector if span_collector is not None else SPANS
        self._slow_request_ms = slow_request_ms
        #: Zero-copy wire path: responses go out as header + attachment
        #: views through ``sendmsg`` and inbound payloads decode as views
        #: over per-frame buffers.  ``zero_copy=False`` is the legacy
        #: concatenate-and-``sendall`` path, kept as the benchmark before-arm.
        self._zero_copy = bool(zero_copy)
        self._wire_compression = bool(wire_compression)
        self._compress_threshold = max(1, int(compress_threshold))
        self._dispatcher.wire_compression = (
            list(WIRE_COMPRESSION_SCHEMES) if self._wire_compression else None
        )
        # Transport-level wire counters, merged into scheduler_stats().
        self._wire_lock = threading.Lock()
        self._wire_counters = {
            "bytes_sent": 0,
            "bytes_received": 0,
            "vectored_writes": 0,
            "frames_coalesced": 0,
            "frames_compressed": 0,
        }
        self._listener = socket.create_server((host, port), reuse_port=False)
        self._listener.setblocking(True)
        self._node_name = node_name or f"server:{self._listener.getsockname()[1]}"
        self._dispatcher.tracing = self._tracing
        self._dispatcher.span_collector = self._spans
        self._dispatcher.node_name = self._node_name
        # Register this server's scheduler/wire counters into the unified
        # metrics plane (weakly — a stopped, dropped server unregisters
        # itself), so a single `stats` scrape covers every live server.
        self._metrics_key = REGISTRY.register(
            f"server.scheduler[{self._node_name}]",
            self,
            snapshot=lambda server: server.scheduler_stats(),
        )
        self._selector = selectors.DefaultSelector()
        self._pool = ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix="tc-dispatch")
        # Shed replies must not queue behind the saturated dispatch pool — a
        # dedicated writer keeps the backpressure signal prompt under overload.
        self._shed_pool = ThreadPoolExecutor(max_workers=1, thread_name_prefix="tc-shed")
        self._scheduler: Optional[_FrameScheduler] = (
            _FrameScheduler(
                self._pool,
                self._handle_frame,
                max_workers=max_workers,
                interactive_limit=interactive_queue_limit,
                bulk_limit=bulk_queue_limit,
                interactive_weight=interactive_weight,
            )
            if scheduling == "weighted"
            else None
        )
        self._connections: Set[_Connection] = set()
        self._doomed: Deque[_Connection] = deque()
        self._wakeup_recv, self._wakeup_send = socket.socketpair()
        self._wakeup_recv.setblocking(False)
        self._running = False
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._listener.getsockname()

    @property
    def dispatcher(self) -> WireDispatcher:
        return self._dispatcher

    @property
    def credit_window(self) -> int:
        return self._credit_window

    def scheduler_stats(self) -> Dict[str, int]:
        """A snapshot of the scheduler's deterministic counters.

        Scheduler-class counters are zeros in FIFO mode; the wire-memory
        counters (``bytes_sent``/``bytes_received``, ``vectored_writes``,
        ``frames_coalesced``, ``frames_compressed``) are transport-level and
        count in every mode.
        """
        if self._scheduler is None:
            snapshot = SchedulerStats().snapshot()
        else:
            snapshot = self._scheduler.snapshot()
        with self._wire_lock:
            snapshot.update(self._wire_counters)
        return snapshot

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "TimeCryptTCPServer":
        self._running = True
        self._selector.register(self._listener, selectors.EVENT_READ, "accept")
        self._selector.register(self._wakeup_recv, selectors.EVENT_READ, "wakeup")
        self._thread = threading.Thread(target=self._serve_loop, daemon=True, name="tc-io-loop")
        self._thread.start()
        return self

    def stop(self) -> None:
        REGISTRY.unregister(self._metrics_key)
        self._running = False
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._pool.shutdown(wait=True)
        self._shed_pool.shutdown(wait=True)
        for handle in (self._wakeup_recv, self._wakeup_send, self._listener):
            try:
                handle.close()
            except OSError:
                pass

    def __enter__(self) -> "TimeCryptTCPServer":
        return self.start()

    def __exit__(self, *_exc_info: object) -> None:
        self.stop()

    def _wake(self) -> None:
        try:
            self._wakeup_send.send(b"\x00")
        except OSError:
            pass

    # -- I/O loop --------------------------------------------------------------------

    def _serve_loop(self) -> None:  # pragma: no cover - exercised via integration tests
        try:
            while self._running:
                events = self._selector.select(timeout=1.0)
                for key, _mask in events:
                    if key.data == "accept":
                        self._accept()
                    elif key.data == "wakeup":
                        self._drain_wakeup()
                    else:
                        self._service(key.data)
                self._reap_doomed()
        finally:
            for connection in list(self._connections):
                self._close_connection(connection, unregister=True)
            try:
                self._selector.unregister(self._listener)
                self._selector.unregister(self._wakeup_recv)
            except (KeyError, OSError, ValueError):
                pass
            self._selector.close()

    def _accept(self) -> None:
        try:
            sock, address = self._listener.accept()
        except OSError:
            return
        sock.setblocking(True)
        connection = _Connection(sock, address, views=self._zero_copy)
        self._connections.add(connection)
        self._selector.register(sock, selectors.EVENT_READ, connection)

    def _drain_wakeup(self) -> None:
        try:
            while self._wakeup_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _service(self, connection: _Connection) -> None:
        """One readable socket: pull bytes, dispatch every completed frame.

        Bytes land in the connection's reusable staging buffer via
        ``recv_into`` (no per-read allocation); the assembler copies them
        into per-frame payload buffers, so reusing the staging buffer on the
        next read is safe even while decoded views are still held.
        """
        try:
            received = connection.sock.recv_into(connection.recv_buffer)
        except OSError:
            received = 0
        if not received:
            self._close_connection(connection, unregister=True)
            return
        with self._wire_lock:
            self._wire_counters["bytes_received"] += received
        try:
            frames = connection.assembler.feed(memoryview(connection.recv_buffer)[:received])
        except ProtocolError:
            # Unrecognizable bytes: the stream cannot be re-synchronised.
            self._close_connection(connection, unregister=True)
            return
        for frame in frames:
            if frame.version == 1:
                self._enqueue_v1(connection, frame)
            else:
                self._admit_v2(connection, frame)

    def _admit_v2(self, connection: _Connection, frame: Frame) -> None:
        """Classify and enqueue a v2 frame; shed it (typed) if its queue is full."""
        if self._scheduler is None:
            self._pool.submit(self._handle_frame, connection, frame)
            return
        operation = peek_operation(frame.payload)
        klass = classify_operation(operation)
        with connection.state_lock:
            connection.in_flight += 1
            depth = connection.in_flight
        self._scheduler.note_in_flight(depth)
        # Tracing-gated: untraced connections never read the clock here.
        enqueue_ns = time.monotonic_ns() if connection.tracing else 0
        # hello/ping bypass the caps: liveness must never read as an outage.
        if not self._scheduler.submit(
            connection, frame, klass, force=operation in ("hello", "ping"), enqueue_ns=enqueue_ns
        ):
            try:
                self._shed_pool.submit(self._shed_frame, connection, frame, klass)
            except RuntimeError:
                pass  # server stopping; the connection is about to close anyway

    def _reap_doomed(self) -> None:
        """Unregister connections a worker thread asked to close."""
        while True:
            try:
                connection = self._doomed.popleft()
            except IndexError:
                return
            self._close_connection(connection, unregister=True)

    def _close_connection(self, connection: _Connection, unregister: bool) -> None:
        with connection.state_lock:
            if connection.closed:
                already_closed = True
            else:
                connection.closed = True
                already_closed = False
        if unregister:
            try:
                self._selector.unregister(connection.sock)
            except (KeyError, OSError, ValueError):
                pass
        if already_closed:
            return
        self._connections.discard(connection)
        # shutdown() promptly errors out any worker blocked mid-sendall (it
        # does not release the fd, so there is no reuse hazard); only then
        # close() under the write lock, so the fd number can never be
        # recycled into a new connection while a worker is still writing.
        try:
            connection.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        with connection.write_lock:
            try:
                connection.sock.close()
            except OSError:
                pass

    # -- dispatch ----------------------------------------------------------------------

    def _enqueue_v1(self, connection: _Connection, frame: Frame) -> None:
        """Queue a v1 frame; only one per connection runs at a time (ordering)."""
        with connection.state_lock:
            connection.v1_queue.append(frame)
            if connection.v1_active:
                return
            connection.v1_active = True
        self._pool.submit(self._drain_v1, connection)

    def _drain_v1(self, connection: _Connection) -> None:
        while True:
            with connection.state_lock:
                if not connection.v1_queue:
                    connection.v1_active = False
                    return
                frame = connection.v1_queue.popleft()
            self._handle_frame(connection, frame)

    def _handle_frame(self, connection: _Connection, frame: Frame, enqueue_ns: int = 0) -> None:
        # Everything tracing-related below is gated on the per-connection
        # negotiation flag: with tracing off this method allocates nothing
        # beyond the pre-tracing baseline.
        traced = connection.tracing
        start_ns = time.monotonic_ns() if traced else 0
        span: Optional[Dict[str, Any]] = None
        try:
            request = Request.decode(frame.payload)
            if request.operation == "hello":
                self._note_hello(connection, request)
            if traced and request.trace is not None:
                span = self._start_span(request, frame, enqueue_ns, start_ns)
                previous = set_context((span["trace_id"], span["span_id"]))
                try:
                    response = self._dispatcher.dispatch(request)
                finally:
                    set_context(previous)
            else:
                response = self._dispatcher.dispatch(request)
        except TimeCryptError as exc:
            response = Response.failure(exc)
        except Exception as exc:  # noqa: BLE001 — a worker must never die unanswered
            # Anything a hostile or buggy peer can make decode/dispatch
            # raise must still answer the correlation id (and, on a v1
            # connection, must not kill the drain loop with v1_active stuck).
            response = Response.failure(
                ProtocolError(f"malformed request: {type(exc).__name__}: {exc}")
            )
        handler_end_ns = time.monotonic_ns() if span is not None else 0
        self._write_response(connection, frame, response)
        if span is not None:
            self._finish_span(span, response, start_ns, handler_end_ns)

    def _start_span(
        self, request: Request, frame: Frame, enqueue_ns: int, start_ns: int
    ) -> Dict[str, Any]:
        """A server-side span for a traced request, timing fields pending.

        Leakage stance: the span records only what the server already sees —
        the operation name, the scheduler class, byte sizes, and timings.
        Never query arguments, keys, or attachment contents.
        """
        trace_id, parent_id = request.trace  # type: ignore[misc]
        return {
            "trace_id": trace_id,
            "span_id": new_span_id(),
            "parent_id": parent_id,
            "node": self._node_name,
            "kind": "server",
            "op": request.operation,
            "class": classify_operation(request.operation),
            "queue_ms": (start_ns - enqueue_ns) / 1e6 if enqueue_ns else 0.0,
            "request_bytes": len(frame.payload),
        }

    def _finish_span(
        self, span: Dict[str, Any], response: Response, start_ns: int, handler_end_ns: int
    ) -> None:
        end_ns = time.monotonic_ns()
        span["handler_ms"] = (handler_end_ns - start_ns) / 1e6
        span["write_ms"] = (end_ns - handler_end_ns) / 1e6
        span["total_ms"] = span["queue_ms"] + (end_ns - start_ns) / 1e6
        span["status"] = "ok" if response.ok else (response.error_type or "error")
        span["response_bytes"] = sum(len(blob) for blob in response.attachments)
        self._spans.record(span)
        if self._slow_request_ms is not None and span["total_ms"] >= self._slow_request_ms:
            logger.warning(
                "slow request on %s: op=%s trace=%s queue_ms=%.1f handler_ms=%.1f total_ms=%.1f",
                self._node_name,
                span["op"],
                span["trace_id"],
                span["queue_ms"],
                span["handler_ms"],
                span["total_ms"],
            )

    def _note_hello(self, connection: _Connection, request: Request) -> None:
        """Record the peer's capability offers (transport-level negotiation).

        Compression and tracing are each on only when *both* ends opt in: the
        transport enables the capability *and* this peer's ``hello`` offers
        it.  v1 peers and clients that never offer stay on the byte-identical
        legacy behaviour.
        """
        if self._tracing and request.args.get("tracing") is True:
            connection.tracing = True
        if not self._wire_compression:
            return
        offered = request.args.get("compression")
        if isinstance(offered, (list, tuple)) and any(
            scheme in WIRE_COMPRESSION_SCHEMES for scheme in offered
        ):
            connection.accepts_compression = True

    def _shed_frame(self, connection: _Connection, frame: Frame, klass: str) -> None:
        """Answer a refused frame with a typed ``overloaded`` (never dead air).

        The retry hint is adaptive: it reflects the measured bulk drain rate
        (queue depth × EWMA inter-dispatch interval) rather than the static
        ``retry_after_ms`` constant, which only serves as the fallback before
        the scheduler has observed a drain interval.
        """
        retry_after_ms = self._retry_after_ms
        if self._scheduler is not None:
            retry_after_ms = self._scheduler.retry_hint_ms(klass, default=retry_after_ms)
        error = OverloadedError(
            f"server overloaded: the {klass} queue is full", retry_after_ms=retry_after_ms
        )
        response = Response.failure(error)
        response.result = {"retry_after_ms": retry_after_ms, "queue": klass}
        self._write_response(connection, frame, response)

    def _write_response(self, connection: _Connection, frame: Frame, response: Response) -> None:
        if frame.version == 2 and self._credit_window:
            # One credit back per answered frame: the sum of grants a client
            # ever sees equals the frames the server accepted, so the window
            # is conserved.
            response.credit_grant = 1
        try:
            encoded = self._encode_response(connection, frame, response)
        except TimeCryptError as exc:
            # An unencodable response (e.g. attachments past the frame cap)
            # must still answer the correlation id — swallowing it here
            # would leave the client staring at dead air until its timeout,
            # which a storage client reads as a node outage.
            fallback = Response.failure(exc)
            fallback.credit_grant = response.credit_grant
            encoded = self._encode_response(connection, frame, fallback)
        if frame.version == 2 and self._scheduler is not None:
            with connection.state_lock:
                if connection.in_flight > 0:
                    connection.in_flight -= 1
        sent = vectored = coalesced = 0
        try:
            with connection.write_lock:
                if connection.closed:
                    return
                if len(encoded) == 1:
                    # Single pre-joined buffer (v1 / legacy mode): plain sendall.
                    # repro: allow[REPRO004] write_lock is the per-connection response serializer; holding it across the socket write is its entire purpose
                    connection.sock.sendall(encoded[0])
                    sent = len(encoded[0])
                else:
                    # repro: allow[REPRO004] same per-connection write serialization as the sendall branch
                    _syscalls, sent, coalesced = write_vectored(connection.sock, encoded)
                    vectored = 1
        except OSError:
            # The I/O loop owns selector state; hand the corpse over.
            self._doomed.append(connection)
            self._wake()
            return
        with self._wire_lock:
            self._wire_counters["bytes_sent"] += sent
            self._wire_counters["vectored_writes"] += vectored
            self._wire_counters["frames_coalesced"] += coalesced

    def _encode_response(self, connection: _Connection, frame: Frame, response: Response) -> List:
        """The response's wire form, as a list of segments to write.

        v1 and legacy (``zero_copy=False``) responses come back as one
        pre-joined buffer; the zero-copy path returns
        ``[frame_header, message_header, *attachment_views]`` so a 32 MiB
        ``get_range`` response is never concatenated.
        """
        if frame.version == 1:
            return [encode_frame(response.encode())]
        if not self._zero_copy:
            return [encode_frame_v2(frame.correlation_id, response.encode())]
        segments = response.encode_segments()
        if connection.accepts_compression:
            segments, compressed = maybe_compress_segments(segments, self._compress_threshold)
            if compressed:
                with self._wire_lock:
                    self._wire_counters["frames_compressed"] += 1
        return encode_frame_segments_v2(frame.correlation_id, segments)
