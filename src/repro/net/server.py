"""The TCP server exposing a :class:`~repro.server.engine.ServerEngine`.

A thread-per-connection TCP server (the Netty stand-in): each connection
exchanges framed request/response messages (see :mod:`repro.net.messages`)
and is dispatched against the in-process server engine.  The dispatcher is
also usable without sockets through :class:`RequestDispatcher`, which the
in-process transport and the tests reuse directly.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ProtocolError, TimeCryptError
from repro.net.framing import read_frame, write_frame
from repro.net.messages import Request, Response
from repro.server.engine import ServerEngine, _metadata_from_json, _metadata_to_json
from repro.timeseries.serialization import decode_encrypted_chunk, encode_encrypted_chunk
from repro.util.timeutil import TimeRange


class RequestDispatcher:
    """Maps protocol requests onto server-engine calls."""

    def __init__(self, engine: ServerEngine) -> None:
        self._engine = engine

    def dispatch(self, request: Request) -> Response:
        """Execute one request, translating library errors into error responses."""
        handler = getattr(self, f"_op_{request.operation}", None)
        if handler is None:
            return Response.failure(ProtocolError(f"unsupported operation '{request.operation}'"))
        try:
            return handler(request)
        except TimeCryptError as exc:
            return Response.failure(exc)

    # -- stream lifecycle ----------------------------------------------------------

    def _op_ping(self, _request: Request) -> Response:
        return Response.success({"pong": True})

    def _op_create_stream(self, request: Request) -> Response:
        if not request.attachments:
            raise ProtocolError("create_stream requires a metadata attachment")
        metadata = _metadata_from_json(request.attachments[0])
        self._engine.create_stream(metadata)
        return Response.success({"uuid": metadata.uuid})

    def _op_delete_stream(self, request: Request) -> Response:
        self._engine.delete_stream(request.args["uuid"])
        return Response.success()

    def _op_stream_head(self, request: Request) -> Response:
        return Response.success({"head": self._engine.stream_head(request.args["uuid"])})

    def _op_stream_metadata(self, request: Request) -> Response:
        metadata = self._engine.stream_metadata(request.args["uuid"])
        return Response.success(attachments=[_metadata_to_json(metadata)])

    def _op_rollup_stream(self, request: Request) -> Response:
        deleted = self._engine.rollup_stream(
            request.args["uuid"],
            request.args["resolution_windows"],
            request.args.get("before_time"),
        )
        return Response.success({"deleted": deleted})

    # -- ingest / raw data ------------------------------------------------------------

    def _op_insert_chunk(self, request: Request) -> Response:
        if not request.attachments:
            raise ProtocolError("insert_chunk requires a chunk attachment")
        chunk = decode_encrypted_chunk(request.attachments[0])
        window_index = self._engine.insert_chunk(chunk)
        return Response.success({"window_index": window_index})

    def _op_insert_chunks(self, request: Request) -> Response:
        """Bulk ingest: one consecutive chunk batch per request (one attachment each)."""
        if not request.attachments:
            raise ProtocolError("insert_chunks requires at least one chunk attachment")
        chunks = [decode_encrypted_chunk(blob) for blob in request.attachments]
        window_index = self._engine.insert_chunks(chunks)
        return Response.success({"window_index": window_index, "num_chunks": len(chunks)})

    def _op_get_range(self, request: Request) -> Response:
        chunks = self._engine.get_range(
            request.args["uuid"], TimeRange(request.args["start"], request.args["end"])
        )
        return Response.success(
            {"num_chunks": len(chunks)},
            attachments=[encode_encrypted_chunk(chunk) for chunk in chunks],
        )

    def _op_delete_range(self, request: Request) -> Response:
        deleted = self._engine.delete_range(
            request.args["uuid"], TimeRange(request.args["start"], request.args["end"])
        )
        return Response.success({"deleted": deleted})

    # -- statistical queries ----------------------------------------------------------------

    @staticmethod
    def _result_to_json(result) -> Dict:
        return {
            "stream_uuid": result.stream_uuid,
            "window_start": result.window_start,
            "window_end": result.window_end,
            "cells": [
                {"value": cell.value, "start": cell.window_start, "end": cell.window_end}
                for cell in result.cells
            ],
            "component_names": list(result.component_names),
            "num_index_nodes": result.num_index_nodes,
        }

    def _op_stat_range(self, request: Request) -> Response:
        result = self._engine.stat_range(
            request.args["uuid"], TimeRange(request.args["start"], request.args["end"])
        )
        return Response.success({"stat": self._result_to_json(result)})

    def _op_stat_series(self, request: Request) -> Response:
        results = self._engine.stat_series(
            request.args["uuid"],
            TimeRange(request.args["start"], request.args["end"]),
            request.args["granularity_windows"],
        )
        return Response.success({"series": [self._result_to_json(result) for result in results]})

    def _op_stat_range_multi(self, request: Request) -> Response:
        aggregate = self._engine.stat_range_multi(
            request.args["uuids"], TimeRange(request.args["start"], request.args["end"])
        )
        return Response.success(
            {
                "values": list(aggregate.values),
                "component_names": list(aggregate.component_names),
                "per_stream_intervals": [list(item) for item in aggregate.per_stream_intervals],
            }
        )

    # -- grants / envelopes --------------------------------------------------------------------

    def _op_put_grant(self, request: Request) -> Response:
        if not request.attachments:
            raise ProtocolError("put_grant requires a sealed token attachment")
        grant_id = self._engine.put_grant(
            request.args["uuid"], request.args["principal_id"], request.attachments[0]
        )
        return Response.success({"grant_id": grant_id})

    def _op_fetch_grants(self, request: Request) -> Response:
        grants = self._engine.fetch_grants(request.args["uuid"], request.args["principal_id"])
        return Response.success({"num_grants": len(grants)}, attachments=list(grants))

    def _op_put_envelopes(self, request: Request) -> Response:
        windows: List[int] = request.args["windows"]
        if len(windows) != len(request.attachments):
            raise ProtocolError("envelope windows and attachments must align")
        for window_index, envelope in zip(windows, request.attachments):
            self._engine.token_store.put_envelope(
                request.args["uuid"], request.args["resolution_chunks"], window_index, envelope
            )
        return Response.success({"stored": len(windows)})

    def _op_fetch_envelopes(self, request: Request) -> Response:
        envelopes = self._engine.fetch_envelopes(
            request.args["uuid"],
            request.args["resolution_chunks"],
            request.args["window_start"],
            request.args["window_end"],
        )
        windows = sorted(envelopes)
        return Response.success(
            {"windows": windows}, attachments=[envelopes[window] for window in windows]
        )


class _ConnectionHandler(socketserver.BaseRequestHandler):
    """One thread per connection; loops over framed requests until EOF."""

    def handle(self) -> None:  # pragma: no cover - exercised via integration tests
        dispatcher: RequestDispatcher = self.server.dispatcher  # type: ignore[attr-defined]
        while True:
            try:
                payload = read_frame(self.request)
            except TimeCryptError:
                return
            try:
                request = Request.decode(payload)
                response = dispatcher.dispatch(request)
            except TimeCryptError as exc:
                response = Response.failure(exc)
            write_frame(self.request, response.encode())


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class TimeCryptTCPServer:
    """A background-thread TCP server wrapping a server engine."""

    def __init__(self, engine: ServerEngine, host: str = "127.0.0.1", port: int = 0) -> None:
        self._engine = engine
        self._dispatcher = RequestDispatcher(engine)
        self._server = _ThreadedTCPServer((host, port), _ConnectionHandler)
        self._server.dispatcher = self._dispatcher  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    @property
    def dispatcher(self) -> RequestDispatcher:
        return self._dispatcher

    def start(self) -> "TimeCryptTCPServer":
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "TimeCryptTCPServer":
        return self.start()

    def __exit__(self, *_exc_info: object) -> None:
        self.stop()
