"""Observability: the unified metrics plane and distributed tracing.

Every stats struct in the process (`WireStats`, `SchedulerStats`,
`StoreStats`, `CacheStats`, `QueryStatistics`, the wire-memory counters)
registers itself into one :data:`~repro.obs.metrics.REGISTRY`, so a single
``snapshot()`` — or one ``stats`` wire round trip against any running
server — returns the whole process.  Spans from every tier land in one
bounded ring buffer (:data:`~repro.obs.tracing.SPANS`) dumped by the
``trace_dump`` wire op.

Telemetry here is leakage-aware by design (see "Leaking Queries On Secure
Stream Processing Systems", PAPERS.md): spans and metrics record only what
an honest-but-curious server already observes — operation names,
ciphertext/attachment sizes, timings, queue depths — never key material,
plaintext values, or per-record access patterns beyond the request shape.

The package is import-light (stdlib only) and sits below ``repro.net`` so
any layer can register into it without cycles.  Following library
convention, the ``repro`` root logger gets a ``NullHandler``: the library
never configures logging output; embedding applications opt in with
``logging.basicConfig()`` or their own handlers.
"""

from __future__ import annotations

import logging

from repro.obs.metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import (
    SPANS,
    SpanCollector,
    current_context,
    new_span_id,
    new_trace_id,
    set_context,
)

# Library-style logging: silent unless the embedding application configures
# handlers.  Installed on the package root so every `repro.*` module logger
# inherits it.
logging.getLogger("repro").addHandler(logging.NullHandler())

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SPANS",
    "SpanCollector",
    "current_context",
    "set_context",
    "new_trace_id",
    "new_span_id",
]
