"""The unified metrics registry: one ``snapshot()`` for the whole process.

Before this module, the repro's counters lived in six ad-hoc structs —
``WireStats`` on each client, ``SchedulerStats`` on each server,
``StoreStats`` per backend, ``CacheStats`` per cache, ``QueryStatistics``
per engine, and the process-global wire-memory counters — with no way to
see them together.  Each of those structs now *registers* itself here at
construction, so :func:`MetricsRegistry.snapshot` returns every live
counter in the process keyed by a stable source name, and the ``stats``
wire op serves that snapshot from any running server in one round trip.

Sources are held by weak reference: a client or server that goes away
takes its counters with it, so short-lived objects (tests construct
thousands) never accumulate.  A source is any object paired with a
snapshot function returning a JSON-safe dict; dataclass stats structs
need no function at all (``dataclasses.asdict`` is the default).

Some counters are *deterministic* — they depend only on the call
sequence, not on timing (round trips per query, copies per frame, spans
per request).  Sources may name that subset at registration;
:func:`MetricsRegistry.deterministic_snapshot` projects it out so the CI
invariant gate (``benchmarks/check_invariants.py``) can diff it against a
committed baseline while wall clock stays ungated.
"""

from __future__ import annotations

import dataclasses
import threading
import weakref
from bisect import bisect_right
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


def _default_snapshot(source: Any) -> Dict[str, Any]:
    """``source.snapshot()`` if it has one, else ``asdict`` for dataclasses."""
    snapshot = getattr(source, "snapshot", None)
    if callable(snapshot):
        return snapshot()
    if dataclasses.is_dataclass(source):
        return dataclasses.asdict(source)
    raise TypeError(f"{type(source).__name__} has no snapshot() and is not a dataclass")


class MetricsRegistry:
    """Named, weakly-held metric sources with a deterministic subset."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # key -> (weakref to source, snapshot fn, deterministic field names)
        self._sources: Dict[str, Tuple[weakref.ref, Callable[[Any], Dict[str, Any]], Tuple[str, ...]]] = {}
        self._sequence = 0

    def register(
        self,
        name: str,
        source: Any,
        snapshot: Optional[Callable[[Any], Dict[str, Any]]] = None,
        deterministic: Sequence[str] = (),
    ) -> str:
        """Register ``source`` under ``name`` and return its unique key.

        Several sources may share a ``name`` (every client registers its
        ``WireStats`` as ``client.wire``); later registrations get a
        ``name#N`` suffix.  The registry keeps only a weak reference —
        dropping the source unregisters it implicitly.
        """
        fn = snapshot or _default_snapshot
        with self._lock:
            self._sequence += 1
            key = name if name not in self._sources else f"{name}#{self._sequence}"
            self._sources[key] = (weakref.ref(source), fn, tuple(deterministic))
        return key

    def unregister(self, key: str) -> None:
        with self._lock:
            self._sources.pop(key, None)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Every live source's counters, keyed by registration key."""
        out: Dict[str, Dict[str, Any]] = {}
        for key, (ref, fn, _det) in self._live():
            source = ref()
            if source is not None:
                out[key] = fn(source)
        return out

    def deterministic_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Only the fields each source declared call-sequence-deterministic."""
        out: Dict[str, Dict[str, Any]] = {}
        for key, (ref, fn, det) in self._live():
            if not det:
                continue
            source = ref()
            if source is not None:
                full = fn(source)
                out[key] = {field: full[field] for field in det if field in full}
        return out

    def _live(self) -> List[Tuple[str, Tuple[weakref.ref, Callable, Tuple[str, ...]]]]:
        """Current entries, pruning dead references as a side effect."""
        with self._lock:
            dead = [key for key, (ref, _fn, _det) in self._sources.items() if ref() is None]
            for key in dead:
                del self._sources[key]
            return list(self._sources.items())


#: The process-global registry every stats struct registers into.
REGISTRY = MetricsRegistry()


class Counter:
    """A monotonically increasing count (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> Dict[str, Any]:
        return {"count": self._value}


class Gauge:
    """A point-in-time value (queue depth, window size)."""

    def __init__(self, value: float = 0.0) -> None:
        self._value = value

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self._value}


class Histogram:
    """Fixed-boundary histogram: observations land in pre-declared buckets.

    Boundaries are upper-inclusive bucket edges; one overflow bucket catches
    everything above the last edge (so ``counts`` has ``len(boundaries)+1``
    entries).  Fixed boundaries keep snapshots mergeable across processes
    and leak nothing about individual observations beyond the bucket.
    """

    def __init__(self, boundaries: Sequence[float]) -> None:
        edges = tuple(sorted(float(edge) for edge in boundaries))
        if not edges:
            raise ValueError("histogram needs at least one bucket boundary")
        self._edges = edges
        self._lock = threading.Lock()
        self._counts = [0] * (len(edges) + 1)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        index = bisect_right(self._edges, value)
        # bisect_right puts a value equal to an edge past it; shift back so
        # edges are upper-inclusive.
        if index > 0 and value == self._edges[index - 1]:
            index -= 1
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        return self._count

    def snapshot(self) -> Dict[str, Any]:
        return {
            "boundaries": list(self._edges),
            "counts": list(self._counts),
            "count": self._count,
            "sum": self._sum,
        }
