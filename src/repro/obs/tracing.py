"""Distributed tracing: span contexts, propagation, and the ring buffer.

A *trace* is one user-visible request followed across tiers; a *span* is
one timed unit of work inside it (a client call, a server dispatch, a
storage fetch).  Context rides the existing wire protocol as an optional
``trace`` header key — ``[trace_id, span_id]`` — which v1 peers and
non-negotiating servers ignore by construction (``_decode_message``
tolerates unknown header keys), so tracing needs no protocol bump.

Within a process, context propagates through a thread-local: the server
sets the current span around handler execution on its worker thread, and
any downstream client called from that thread (the engine's
``RemoteKeyValueStore``, the router's shard clients) picks it up as the
parent of its outbound span.  One request handled across client → router
→ engine shard → storage node therefore yields one connected span tree.

Spans are plain JSON-safe dicts recording only leakage-aware fields:
operation names, byte sizes, timings, scheduler class, node names.  Never
keys, plaintext, or query parameters.  They land in a bounded ring buffer
(:data:`SPANS` — per process, like the wire-memory counters) served
remotely by the ``trace_dump`` wire op; the collector drops the oldest
spans on overflow and can emit a threshold-driven slow-request log.
"""

from __future__ import annotations

import logging
import os
import threading
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

logger = logging.getLogger(__name__)

#: A trace context: ``(trace_id, span_id)`` of the currently active span.
Context = Tuple[str, str]

_STATE = threading.local()


def new_trace_id() -> str:
    """A fresh 64-bit trace id (hex). Random, not derived from request data."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (hex)."""
    return os.urandom(8).hex()


def current_context() -> Optional[Context]:
    """The thread's active span context, or ``None`` outside any span."""
    return getattr(_STATE, "context", None)


def set_context(context: Optional[Context]) -> Optional[Context]:
    """Install ``context`` as the thread's active span; returns the previous.

    Callers must restore the returned value when the span ends (the server
    does this in a ``finally``), so worker-pool threads never leak a stale
    context into the next request they pick up.
    """
    previous = getattr(_STATE, "context", None)
    _STATE.context = context
    return previous


class SpanCollector:
    """A bounded ring buffer of finished spans.

    Oldest spans are dropped on overflow (``capacity``), so a long-running
    server holds a sliding window rather than growing without bound.  With
    ``slow_ms`` set, any recorded span whose ``total_ms`` meets the
    threshold is logged at WARNING — the slow-request log an operator
    greps before reaching for ``trace_dump``.
    """

    def __init__(self, capacity: int = 4096, slow_ms: Optional[float] = None) -> None:
        if capacity <= 0:
            raise ValueError("span collector capacity must be positive")
        self._lock = threading.Lock()
        self._spans: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._recorded = 0
        self.slow_ms = slow_ms

    @property
    def recorded(self) -> int:
        """Spans recorded since creation (including any since dropped)."""
        return self._recorded

    def record(self, span: Dict[str, Any]) -> None:
        with self._lock:
            self._spans.append(span)
            self._recorded += 1
        slow_ms = self.slow_ms
        if slow_ms is not None and span.get("total_ms", 0.0) >= slow_ms:
            logger.warning(
                "slow request: op=%s node=%s trace=%s total_ms=%.1f",
                span.get("op"),
                span.get("node"),
                span.get("trace_id"),
                span.get("total_ms", 0.0),
            )

    def spans(
        self, trace_id: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Collected spans, oldest first, optionally filtered by trace id."""
        with self._lock:
            out = [
                dict(span)
                for span in self._spans
                if trace_id is None or span.get("trace_id") == trace_id
            ]
        if limit is not None:
            out = out[-limit:]
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def snapshot(self) -> Dict[str, Any]:
        """Counter form for the metrics registry (not the spans themselves)."""
        with self._lock:
            return {"recorded": self._recorded, "buffered": len(self._spans)}


#: The process-global collector.  One per process — a multi-process
#: deployment dumps each node's buffer with its own ``trace_dump`` round
#: trip; the in-process topologies used by tests and examples share it, and
#: the ``node`` field on each span keeps the tiers apart.
SPANS = SpanCollector()

# The collector's counters are metrics like any other.
from repro.obs.metrics import REGISTRY as _REGISTRY  # noqa: E402  (import cycle-free: metrics is stdlib-only)

_REGISTRY.register("tracing.spans", SPANS)
