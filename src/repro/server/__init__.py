"""The untrusted server engine: encrypted storage, index maintenance, query execution."""

from repro.server.engine import ServerEngine, StreamState
from repro.server.query_executor import MultiStreamAggregate, StatQueryResult

__all__ = ["ServerEngine", "StreamState", "StatQueryResult", "MultiStreamAggregate"]
