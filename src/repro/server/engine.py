"""The server engine: the untrusted half of TimeCrypt (paper §3.2, §4.5, §4.6).

The server engine owns the backing key-value store, maintains one encrypted
aggregation index per stream, stores sealed access tokens and key envelopes,
and answers three kinds of requests:

* **ingest** — append an encrypted chunk (payload + HEAC digest) to a stream,
* **statistical range queries** — aggregate encrypted digests over a window
  interval using the index,
* **raw range retrieval** — return the encrypted chunk payloads overlapping a
  time interval.

Everything the engine touches is ciphertext or public metadata; it never
holds a decryption key.  Engines are stateless apart from the storage they
wrap (the paper's horizontal-scalability argument), so several engines can
share one storage cluster.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.access.keystore import TokenStore
from repro.exceptions import (
    QueryError,
    StreamExistsError,
    StreamNotFoundError,
)
from repro.index.cache import NodeCache
from repro.index.node import heac_combiner
from repro.index.tree import AggregationIndex
from repro.obs.metrics import REGISTRY
from repro.server.query_executor import (
    MultiStreamAggregate,
    QueryStatistics,
    StatQueryResult,
)
from repro.storage.kv import KeyValueStore
from repro.storage.memory import MemoryStore
from repro.timeseries.digest import DigestConfig, HistogramConfig
from repro.timeseries.serialization import (
    EncryptedChunk,
    chunk_storage_key,
    decode_digest_vector,
    decode_encrypted_chunk,
    encode_digest_vector,
    encode_encrypted_chunk,
    metadata_storage_key,
)
from repro.timeseries.stream import StreamConfig, StreamMetadata
from repro.util.timeutil import TimeRange


def _metadata_to_json(metadata: StreamMetadata) -> bytes:
    config = metadata.config
    payload = {
        "uuid": metadata.uuid,
        "owner_id": metadata.owner_id,
        "metric": metadata.metric,
        "source": metadata.source,
        "unit": metadata.unit,
        "tags": metadata.tags,
        "config": {
            "chunk_interval": config.chunk_interval,
            "start_time": config.start_time,
            "compression": config.compression,
            "value_scale": config.value_scale,
            "key_tree_height": config.key_tree_height,
            "prg": config.prg,
            "index_fanout": config.index_fanout,
            "digest": {
                "include_sum": config.digest.include_sum,
                "include_count": config.digest.include_count,
                "include_sum_of_squares": config.digest.include_sum_of_squares,
                "histogram_boundaries": list(config.digest.histogram.boundaries),
            },
        },
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _metadata_from_json(blob: bytes) -> StreamMetadata:
    # bytes-like tolerant: the zero-copy wire path hands in memoryviews.
    payload = json.loads(bytes(blob).decode("utf-8"))
    config_payload = payload["config"]
    digest_payload = config_payload["digest"]
    config = StreamConfig(
        chunk_interval=config_payload["chunk_interval"],
        start_time=config_payload["start_time"],
        compression=config_payload["compression"],
        value_scale=config_payload["value_scale"],
        key_tree_height=config_payload["key_tree_height"],
        prg=config_payload["prg"],
        index_fanout=config_payload["index_fanout"],
        digest=DigestConfig(
            include_sum=digest_payload["include_sum"],
            include_count=digest_payload["include_count"],
            include_sum_of_squares=digest_payload["include_sum_of_squares"],
            histogram=HistogramConfig(boundaries=tuple(digest_payload["histogram_boundaries"])),
        ),
    )
    return StreamMetadata(
        uuid=payload["uuid"],
        owner_id=payload["owner_id"],
        metric=payload["metric"],
        source=payload["source"],
        unit=payload["unit"],
        tags=dict(payload["tags"]),
        config=config,
    )


@dataclass
class StreamState:
    """Per-stream server-side state: metadata plus the encrypted index."""

    metadata: StreamMetadata
    index: AggregationIndex
    num_chunks: int = 0
    num_records: int = 0
    #: Windows below this bound had their raw payloads deleted by a rollup.
    #: In-memory only: after a restart the first rollup re-scans once (the
    #: deletes are no-ops) and re-establishes the bound, so repeated rollups
    #: stay linear in *new* windows instead of re-walking the whole stream.
    payload_rollup_watermark: int = 0


@dataclass
class ServerEngine:
    """The untrusted TimeCrypt server."""

    store: KeyValueStore = field(default_factory=MemoryStore)
    token_store: TokenStore = field(default_factory=TokenStore)
    index_cache_bytes: int = 64 * 1024 * 1024
    _streams: Dict[str, StreamState] = field(default_factory=dict, init=False)
    _cache: NodeCache = field(init=False)
    query_stats: QueryStatistics = field(default_factory=QueryStatistics, init=False)

    def __post_init__(self) -> None:
        self._cache = NodeCache(capacity_bytes=self.index_cache_bytes)
        # Weak registration prunes a collected engine automatically, but two
        # *live* engines (sharded tiers, tests) would still collide on the
        # name: keep the keys so close() can detach this engine promptly.
        self._metrics_keys = [
            REGISTRY.register("engine.query_stats", self.query_stats),
            REGISTRY.register("engine.index_cache", self._cache.stats),
        ]
        self._recover_streams()

    def close(self) -> None:
        """Detach this engine from the process metrics registry."""
        for key in self._metrics_keys:
            REGISTRY.unregister(key)
        self._metrics_keys = []

    # -- recovery -------------------------------------------------------------

    def _recover_streams(self) -> None:
        """Reload stream metadata (and index head positions) from storage."""
        for _key, blob in self.store.scan_prefix(b"meta/"):
            metadata = _metadata_from_json(blob)
            state = self._make_state(metadata)
            state.num_chunks = state.index.num_windows
            self._streams[metadata.uuid] = state

    def _make_state(self, metadata: StreamMetadata) -> StreamState:
        index = AggregationIndex(
            stream_uuid=metadata.uuid,
            store=self.store,
            combiner=heac_combiner(),
            encode_cells=encode_digest_vector,
            decode_cells=decode_digest_vector,
            fanout=metadata.config.index_fanout,
            cache=self._cache,
            max_windows=metadata.config.max_chunks,
        )
        return StreamState(metadata=metadata, index=index)

    # -- stream management -------------------------------------------------------

    def create_stream(self, metadata: StreamMetadata) -> None:
        """Register a new stream (CreateStream)."""
        if metadata.uuid in self._streams:
            raise StreamExistsError(f"stream '{metadata.uuid}' already exists")
        # The registry only covers streams this engine has seen; with several
        # engines over shared storage the metadata record is the authority.
        if self.store.contains(metadata_storage_key(metadata.uuid)):
            raise StreamExistsError(f"stream '{metadata.uuid}' already exists in storage")
        self.store.put(metadata_storage_key(metadata.uuid), _metadata_to_json(metadata))
        self._streams[metadata.uuid] = self._make_state(metadata)

    def delete_stream(self, stream_uuid: str) -> None:
        """Drop a stream with all chunks, index nodes, grants and envelopes.

        Bulk erase is pushed down as prefix deletes, so on a remote or
        clustered store this costs a fixed handful of round trips instead of
        paging every chunk and index key through the engine first.
        """
        state = self._state(stream_uuid)
        self.store.delete_prefixes(
            [
                f"chunk/{stream_uuid}/".encode("ascii"),
                f"index/{stream_uuid}/".encode("ascii"),
            ]
        )
        self.store.delete(metadata_storage_key(stream_uuid))
        self.token_store.delete_grants(stream_uuid)
        state.index.cache.clear()
        del self._streams[stream_uuid]

    def stream_metadata(self, stream_uuid: str) -> StreamMetadata:
        return self._state(stream_uuid).metadata

    def list_streams(self) -> List[str]:
        return sorted(self._streams)

    def stream_head(self, stream_uuid: str) -> int:
        """Number of chunk windows ingested so far."""
        return self._state(stream_uuid).index.num_windows

    def _state(self, stream_uuid: str) -> StreamState:
        state = self._streams.get(stream_uuid)
        if state is None:
            state = self._load_state(stream_uuid)
        if state is None:
            raise StreamNotFoundError(f"unknown stream '{stream_uuid}'")
        return state

    def _load_state(self, stream_uuid: str) -> Optional[StreamState]:
        """Lazily adopt a stream created by a peer engine over shared storage.

        Engines are stateless apart from storage, so a registry miss is not
        authoritative: another engine (or a previous incarnation) may have
        written the stream's metadata record.  One storage ``get`` settles it.
        """
        blob = self.store.get(metadata_storage_key(stream_uuid))
        if blob is None:
            return None
        state = self._make_state(_metadata_from_json(blob))
        state.num_chunks = state.index.num_windows
        self._streams[stream_uuid] = state
        return state

    def reset_stream_cache(self) -> None:
        """Drop all in-memory stream state (indexes rebuild lazily from storage).

        Called when shard ownership changes: a stream this engine used to own
        may have advanced under a different owner, so cached index heads and
        node caches are no longer trustworthy.
        """
        self._streams.clear()
        self._cache.clear()

    # -- ingest --------------------------------------------------------------------

    def insert_chunk(self, chunk: EncryptedChunk) -> int:
        """Append an encrypted chunk; updates the index and returns the window index."""
        state = self._state(chunk.stream_uuid)
        expected_window = state.index.num_windows
        if chunk.window_index != expected_window:
            raise QueryError(
                f"chunk for window {chunk.window_index} arrived, expected window "
                f"{expected_window} (ingest is in-order append-only)"
            )
        self.store.put(
            chunk_storage_key(chunk.stream_uuid, chunk.window_index),
            encode_encrypted_chunk(chunk),
        )
        state.index.append(list(chunk.digest))
        state.num_chunks += 1
        state.num_records += chunk.num_points
        return chunk.window_index

    def validate_chunk_batch(self, chunks: Sequence[EncryptedChunk]) -> int:
        """Check a batch is non-empty, single-stream, and consecutive from the
        stream head; returns the expected first window index.

        Factored out of :meth:`insert_chunks` so dispatch layers that slice a
        giant batch (releasing the engine lock between slices) share the
        exact validation contract with the single-shot path.
        """
        if not chunks:
            raise QueryError("cannot ingest an empty chunk batch")
        stream_uuid = chunks[0].stream_uuid
        state = self._state(stream_uuid)
        expected_window = state.index.num_windows
        for offset, chunk in enumerate(chunks):
            if chunk.stream_uuid != stream_uuid:
                raise QueryError("a chunk batch must belong to a single stream")
            if chunk.window_index != expected_window + offset:
                raise QueryError(
                    f"chunk for window {chunk.window_index} arrived, expected window "
                    f"{expected_window + offset} (ingest is in-order append-only)"
                )
        return expected_window

    def insert_chunks(self, chunks: Sequence[EncryptedChunk]) -> int:
        """Append a batch of consecutive encrypted chunks of one stream.

        The bulk-ingest fast path: payloads are stored per chunk as usual, but
        the aggregation index folds all digests through
        :meth:`~repro.index.tree.AggregationIndex.append_many`, writing each
        touched spine node (and the window-count record) once per batch
        instead of once per chunk.  Returns the first appended window index.
        """
        expected_window = self.validate_chunk_batch(chunks)
        stream_uuid = chunks[0].stream_uuid
        state = self._state(stream_uuid)
        payload_puts = [
            (chunk_storage_key(stream_uuid, chunk.window_index), encode_encrypted_chunk(chunk))
            for chunk in chunks
        ]
        # One coalesced write set: chunk payloads + touched index nodes + the
        # window-count record land in a single backend multi_put round trip.
        state.index.append_many(
            [list(chunk.digest) for chunk in chunks], extra_puts=payload_puts
        )
        state.num_chunks += len(chunks)
        state.num_records += sum(chunk.num_points for chunk in chunks)
        return expected_window

    # -- raw range retrieval ----------------------------------------------------------

    def get_chunk(self, stream_uuid: str, window_index: int) -> Optional[EncryptedChunk]:
        blob = self.store.get(chunk_storage_key(stream_uuid, window_index))
        return decode_encrypted_chunk(blob) if blob is not None else None

    def get_range(self, stream_uuid: str, time_range: TimeRange) -> List[EncryptedChunk]:
        """Encrypted chunks overlapping ``time_range`` (GetRange).

        All payload keys in the window interval are fetched with one
        ``multi_get`` round trip (one per cluster node on a clustered store).
        """
        state = self._state(stream_uuid)
        window_start, window_end = self._clip_windows(state, time_range)
        keys = [
            chunk_storage_key(stream_uuid, window_index)
            for window_index in range(window_start, window_end)
        ]
        chunks: List[EncryptedChunk] = []
        if keys:
            blobs = self.store.multi_get(keys)
            chunks = [
                decode_encrypted_chunk(blobs[key]) for key in keys if blobs.get(key) is not None
            ]
        self.query_stats.record_range_read(len(chunks))
        return chunks

    def delete_range(self, stream_uuid: str, time_range: TimeRange) -> int:
        """Delete raw chunk payloads in a range while keeping digests (DeleteRange)."""
        state = self._state(stream_uuid)
        window_start, window_end = self._clip_windows(state, time_range)
        keys = [
            chunk_storage_key(stream_uuid, window_index)
            for window_index in range(window_start, window_end)
        ]
        return len(self.store.multi_delete(keys)) if keys else 0

    # -- statistical queries ---------------------------------------------------------------

    def stat_range_windows(
        self, stream_uuid: str, window_start: int, window_end: int
    ) -> StatQueryResult:
        """Aggregate encrypted digests over an explicit window interval."""
        state = self._state(stream_uuid)
        if window_end <= window_start:
            raise QueryError(f"empty window range [{window_start}, {window_end})")
        plan = state.index.plan(window_start, window_end)
        batch_ops_before = state.index.store_batch_ops
        cells = state.index.query_range(window_start, window_end, plan=plan)
        self.query_stats.record_stat_query(
            plan.num_nodes, store_round_trips=state.index.store_batch_ops - batch_ops_before
        )
        return StatQueryResult(
            stream_uuid=stream_uuid,
            window_start=window_start,
            window_end=window_end,
            cells=tuple(cells),
            component_names=state.metadata.config.digest.component_names,
            num_index_nodes=plan.num_nodes,
        )

    def stat_range(self, stream_uuid: str, time_range: TimeRange) -> StatQueryResult:
        """Aggregate encrypted digests over a time interval (GetStatRange)."""
        state = self._state(stream_uuid)
        window_start, window_end = self._clip_windows(state, time_range)
        if window_end <= window_start:
            raise QueryError(f"no ingested data in {time_range}")
        return self.stat_range_windows(stream_uuid, window_start, window_end)

    def stat_range_multi(
        self, stream_uuids: Sequence[str], time_range: TimeRange
    ) -> MultiStreamAggregate:
        """Inter-stream statistical query (component-wise sum across streams)."""
        if not stream_uuids:
            raise QueryError("an inter-stream query needs at least one stream")
        results = [self.stat_range(stream_uuid, time_range) for stream_uuid in stream_uuids]
        return MultiStreamAggregate.combine(results)

    def stat_series(
        self, stream_uuid: str, time_range: TimeRange, granularity_windows: int
    ) -> List[StatQueryResult]:
        """A series of adjacent aggregates at a fixed granularity (for dashboards).

        Used by the mHealth views experiment (Fig. 8): one result per
        ``granularity_windows`` consecutive chunk windows.
        """
        if granularity_windows < 1:
            raise QueryError("granularity must be at least one window")
        state = self._state(stream_uuid)
        window_start, window_end = self._clip_windows(state, time_range)
        results: List[StatQueryResult] = []
        position = window_start
        while position < window_end:
            segment_end = min(position + granularity_windows, window_end)
            results.append(self.stat_range_windows(stream_uuid, position, segment_end))
            position = segment_end
        return results

    # -- data decay / rollup -------------------------------------------------------------------

    def rollup_stream(self, stream_uuid: str, resolution_windows: int, before_time: Optional[int] = None) -> int:
        """Age out fine-grained data older than ``before_time`` (RollupStream).

        Raw chunk payloads and leaf index detail below ``resolution_windows``
        are removed; aggregate statistics at and above that resolution remain
        queryable through the surviving index levels.  Returns the number of
        deleted storage records.
        """
        state = self._state(stream_uuid)
        config = state.metadata.config
        if resolution_windows < 1:
            raise QueryError("rollup resolution must be at least one window")
        head_windows = state.index.num_windows
        if before_time is None:
            before_window = head_windows
        else:
            before_window = min(
                head_windows, max(0, (before_time - config.start_time) // config.chunk_interval)
            )
        payload_keys = [
            chunk_storage_key(stream_uuid, window_index)
            for window_index in range(state.payload_rollup_watermark, before_window)
        ]
        deleted = len(self.store.multi_delete(payload_keys)) if payload_keys else 0
        state.payload_rollup_watermark = max(state.payload_rollup_watermark, before_window)
        # Prune index levels finer than the retained resolution.
        level = 0
        fanout = state.metadata.config.index_fanout
        while fanout ** level < resolution_windows:
            level += 1
        deleted += state.index.prune_below(level, before_window)
        return deleted

    # -- token / envelope passthrough ---------------------------------------------------------------

    def put_grant(self, stream_uuid: str, principal_id: str, sealed_token: bytes) -> int:
        return self.token_store.put_grant(stream_uuid, principal_id, sealed_token)

    def put_grants(self, grants: Sequence[Tuple[str, str, bytes]]) -> List[int]:
        """Store a cohort grant burst in one token-store ``multi_put``."""
        return self.token_store.put_grants(grants)

    def fetch_grants(self, stream_uuid: str, principal_id: str) -> List[bytes]:
        return self.token_store.grants_for(stream_uuid, principal_id)

    def fetch_envelopes(
        self, stream_uuid: str, resolution_chunks: int, window_start: int, window_end: int
    ) -> Dict[int, bytes]:
        return self.token_store.envelopes_for_range(
            stream_uuid, resolution_chunks, window_start, window_end
        )

    # -- accounting ------------------------------------------------------------------------------

    def index_size_bytes(self, stream_uuid: str) -> int:
        return self._state(stream_uuid).index.size_bytes()

    def storage_size_bytes(self) -> int:
        return self.store.size_bytes()

    def cache_stats(self):
        return self._cache.stats

    # -- helpers ------------------------------------------------------------------------------------

    def _clip_windows(self, state: StreamState, time_range: TimeRange) -> Tuple[int, int]:
        """Map a time range to the ingested chunk-window interval it overlaps."""
        config = state.metadata.config
        head = state.index.num_windows
        if time_range.end <= config.start_time or head == 0:
            return 0, 0
        start_offset = max(0, time_range.start - config.start_time)
        window_start = start_offset // config.chunk_interval
        end_offset = max(0, time_range.end - config.start_time)
        window_end = (end_offset + config.chunk_interval - 1) // config.chunk_interval
        return min(window_start, head), min(window_end, head)
