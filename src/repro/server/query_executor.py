"""Statistical query execution over encrypted indices (paper §4.5).

The server answers ``GetStatRange`` by covering the requested window range
with pre-aggregated index nodes and summing their HEAC digest vectors — it
never sees a plaintext.  Results carry the window interval they aggregate so
the client knows which outer keys decrypt them.

Two result shapes exist:

* :class:`StatQueryResult` — one stream, one contiguous window range.
* :class:`MultiStreamAggregate` — an inter-stream query: the component-wise
  sum over several streams' aggregates.  Decrypting it requires the outer
  keys of *every* involved stream, which is exactly the paper's guarantee
  that a principal must be authorized for all streams involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.crypto.heac import HEACCiphertext, MODULUS
from repro.exceptions import QueryError


@dataclass(frozen=True)
class StatQueryResult:
    """The encrypted aggregate over one stream's window interval."""

    stream_uuid: str
    window_start: int
    window_end: int
    cells: Tuple[HEACCiphertext, ...]
    component_names: Tuple[str, ...]
    num_index_nodes: int

    @property
    def num_windows(self) -> int:
        return self.window_end - self.window_start

    def cell(self, component_name: str) -> HEACCiphertext:
        try:
            index = self.component_names.index(component_name)
        except ValueError:
            raise QueryError(f"result carries no component '{component_name}'") from None
        return self.cells[index]


@dataclass(frozen=True)
class MultiStreamAggregate:
    """Component-wise sum of aggregates from several streams.

    ``per_stream_intervals`` records, for every stream, the window interval
    its contribution covers; a client must be able to derive the outer keys
    for every listed interval to remove all pads.
    """

    values: Tuple[int, ...]
    component_names: Tuple[str, ...]
    per_stream_intervals: Tuple[Tuple[str, int, int], ...]

    @staticmethod
    def combine(results: Sequence[StatQueryResult]) -> "MultiStreamAggregate":
        if not results:
            raise QueryError("cannot combine an empty result sequence")
        names = results[0].component_names
        for result in results:
            if result.component_names != names:
                raise QueryError("inter-stream queries require identical digest layouts")
        width = len(names)
        values = [0] * width
        for result in results:
            for component in range(width):
                values[component] = (values[component] + result.cells[component].value) % MODULUS
        intervals = tuple(
            (result.stream_uuid, result.window_start, result.window_end) for result in results
        )
        return MultiStreamAggregate(
            values=tuple(values), component_names=names, per_stream_intervals=intervals
        )


@dataclass
class QueryStatistics:
    """Server-side counters describing query execution (used by benchmarks).

    ``index_nodes_read`` counts plan nodes (the paper's O(log n) bound);
    ``index_store_round_trips`` counts batched backend fetches those nodes
    cost — at most one ``multi_get`` per query against a single-backend
    store (zero when the node cache holds the whole cover), regardless of
    how many nodes the plan touches.
    """

    queries: int = 0
    index_nodes_read: int = 0
    index_store_round_trips: int = 0
    chunks_read: int = 0

    def record_stat_query(self, num_nodes: int, store_round_trips: int = 0) -> None:
        self.queries += 1
        self.index_nodes_read += num_nodes
        self.index_store_round_trips += store_round_trips

    def record_range_read(self, num_chunks: int) -> None:
        self.queries += 1
        self.chunks_read += num_chunks

    def reset(self) -> None:
        self.queries = 0
        self.index_nodes_read = 0
        self.index_store_round_trips = 0
        self.chunks_read = 0
