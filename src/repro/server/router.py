"""Horizontal engine sharding: N ServerEngines behind a stream router.

Engines are stateless apart from the storage they wrap (paper §3.2), so the
scalability story is running *several* engines and partitioning streams
across them.  This module provides that tier:

* Streams are placed by consistent-hashing the stream uuid onto named engine
  shards — the same :class:`~repro.storage.partitioner.ConsistentHashRing`
  the storage tier places keys with, carried on the wire as a
  :class:`~repro.net.messages.ShardRoutingTable`.
* Each :class:`EngineShardServer` serves one engine and *enforces* placement:
  a request for a stream it does not own is answered with a typed
  ``WrongShardError`` redirect naming the owner and the routing epoch, so a
  stale client refreshes instead of silently writing to the wrong shard.
* The :class:`StreamRouter` is the front door: it advertises the routing
  table in ``hello`` (clients that understand it route straight to the
  owning engine — no extra hop on the hot path) and proxies requests for
  clients that do not, including splitting cross-shard ``stat_range_multi``
  and ``put_grants`` across the owning engines.

Membership changes bump the table epoch.  Shards observe the bump on their
next request and drop cached stream state (indexes rebuild lazily from
shared storage), so ownership moves without restarting engines.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ProtocolError, QueryError, TimeCryptError, TransportError
from repro.net.client import RemoteServerClient
from repro.net.messages import KV_OPERATIONS, OPERATIONS, Request, Response, ShardRoutingTable
from repro.net.server import RequestDispatcher, TimeCryptTCPServer, WireDispatcher
from repro.obs.tracing import current_context, set_context
from repro.server.engine import ServerEngine, _metadata_from_json
from repro.server.query_executor import MultiStreamAggregate
from repro.timeseries.serialization import peek_chunk_stream_uuid

logger = logging.getLogger(__name__)


class RoutingTableRef:
    """A mutable handle over an immutable routing table.

    Readers grab the current table with one attribute read (tables are
    immutable, so a grabbed reference stays internally consistent however
    membership changes race); writers swap in a whole new table under the
    lock, bumping the epoch.
    """

    def __init__(self, table: Optional[ShardRoutingTable] = None) -> None:
        self._table = table if table is not None else ShardRoutingTable()
        self._lock = threading.Lock()

    @property
    def table(self) -> ShardRoutingTable:
        return self._table

    def set_engines(self, engines) -> ShardRoutingTable:
        with self._lock:
            self._table = self._table.with_engines(engines)
            table = self._table
        logger.info(
            "routing table replaced: %d engine shard(s), epoch %d", len(table), table.epoch
        )
        return table

    def add_engine(self, name: str, host: str, port: int) -> ShardRoutingTable:
        with self._lock:
            self._table = self._table.with_engine(name, host, port)
            table = self._table
        logger.info("engine shard '%s' added at %s:%d, epoch %d", name, host, port, table.epoch)
        return table

    def remove_engine(self, name: str) -> ShardRoutingTable:
        with self._lock:
            self._table = self._table.without_engine(name)
            table = self._table
        logger.info("engine shard '%s' removed, epoch %d", name, table.epoch)
        return table


#: Engine operations whose target stream is a plain ``uuid`` argument.
_UUID_ARG_OPS = frozenset(
    {
        "delete_stream",
        "stream_head",
        "stream_metadata",
        "rollup_stream",
        "get_range",
        "delete_range",
        "stat_range",
        "stat_series",
        "put_grant",
        "fetch_grants",
        "fetch_envelopes",
        "put_envelopes",
    }
)


def _request_stream_uuids(request: Request) -> List[str]:
    """The stream uuids a request addresses (empty: not stream-routed).

    Ingest requests are placed by peeking the uuid out of the first chunk
    attachment — a magic check, one varint and a slice, no full decode; the
    engine itself enforces that a batch is single-stream.
    """
    operation = request.operation
    if operation in _UUID_ARG_OPS:
        return [request.args["uuid"]]
    if operation == "stat_range_multi":
        return list(request.args["uuids"])
    if operation == "put_grants":
        return [target["uuid"] for target in request.args["grants"]]
    if operation in ("insert_chunk", "insert_chunks"):
        if not request.attachments:
            raise ProtocolError(f"{operation} requires a chunk attachment")
        return [peek_chunk_stream_uuid(request.attachments[0])]
    if operation == "create_stream":
        if not request.attachments:
            raise ProtocolError("create_stream requires a metadata attachment")
        return [_metadata_from_json(request.attachments[0]).uuid]
    return []


def _wrong_shard_response(
    stream_uuid: str, owner: str, table: ShardRoutingTable
) -> Response:
    """The typed redirect: names the owner and the epoch the shard observed."""
    host, port = table.address_of(owner)
    return Response(
        ok=False,
        error=(
            f"stream '{stream_uuid}' is owned by engine shard '{owner}' "
            f"(routing epoch {table.epoch})"
        ),
        error_type="WrongShardError",
        result={"owner": owner, "epoch": table.epoch, "address": [host, port]},
    )


class ShardedEngineDispatcher(RequestDispatcher):
    """A :class:`RequestDispatcher` that enforces shard ownership.

    Every engine-touching request is checked against the current routing
    table before dispatch; requests for foreign streams get the typed
    redirect instead of an answer.  The first request observed after an
    epoch bump drops the engine's cached stream state — a stream this shard
    just (re)gained may have advanced under its previous owner, so indexes
    rebuild lazily from shared storage.
    """

    _LOCK_FREE_OPS = RequestDispatcher._LOCK_FREE_OPS | {"routing_table"}

    def __init__(self, engine: ServerEngine, table_ref: RoutingTableRef, shard_name: str) -> None:
        super().__init__(engine)
        self._table_ref = table_ref
        self._shard_name = shard_name
        self._seen_epoch = table_ref.table.epoch

    def hello_extras(self) -> Dict:
        return {"routing": self._table_ref.table.to_payload(), "shard": self._shard_name}

    def _op_routing_table(self, _request: Request) -> Response:
        return Response.success({"routing": self._table_ref.table.to_payload()})

    def _dispatch_engine(self, request: Request) -> Response:
        table = self._table_ref.table
        if table.epoch != self._seen_epoch:
            logger.info(
                "shard '%s' observed routing epoch %d (was %d); dropping cached stream state",
                self._shard_name,
                table.epoch,
                self._seen_epoch,
            )
            self._engine.reset_stream_cache()
            self._seen_epoch = table.epoch
        for stream_uuid in _request_stream_uuids(request):
            owner = table.owner_of(stream_uuid) if len(table) else self._shard_name
            if owner != self._shard_name:
                return _wrong_shard_response(stream_uuid, owner, table)
        return super()._dispatch_engine(request)


class EngineShardServer:
    """One named engine shard: a :class:`ServerEngine` behind TCP."""

    def __init__(
        self,
        name: str,
        engine: ServerEngine,
        table_ref: RoutingTableRef,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 8,
    ) -> None:
        self.name = name
        self.engine = engine
        self._server = TimeCryptTCPServer(
            host=host,
            port=port,
            max_workers=max_workers,
            dispatcher=ShardedEngineDispatcher(engine, table_ref, name),
            node_name=f"engine:{name}",
        )

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.address

    def start(self) -> "EngineShardServer":
        self._server.start()
        return self

    def stop(self) -> None:
        self._server.stop()

    def __enter__(self) -> "EngineShardServer":
        return self.start()

    def __exit__(self, *_exc_info: object) -> None:
        self.stop()


#: Engine-tier operations the router will proxy (kv_* belongs to storage nodes;
#: the scrape ops describe the node answering them, so they are never proxied).
_PROXYABLE_OPS = (
    frozenset(OPERATIONS)
    - frozenset(KV_OPERATIONS)
    - {"hello", "ping", "routing_table", "stats", "trace_dump"}
)


class RouterDispatcher(WireDispatcher):
    """The router's dispatcher: advertises the table, proxies the rest.

    Routing-aware clients never send it stream traffic — they learn the
    table from ``hello`` and dial the owning engines directly.  For plain
    :class:`~repro.net.client.RemoteServerClient` users the router is a
    transparent proxy: it forwards each request to the owning shard over a
    pooled multiplexed connection, and splits the two cross-shard batch ops
    (``stat_range_multi``, ``put_grants``) across owners concurrently.
    Backpressure composes per hop: each upstream connection honours the
    credit window that shard advertised in ``hello``, so the router cannot
    flood a saturated engine on a proxied burst.
    """

    #: Concurrent per-owner sub-batches for the cross-shard split ops.  The
    #: pool is shared across requests (fan-out is I/O-bound waiting on
    #: shards, so a handful of threads covers many in-flight splits).
    _FANOUT_WORKERS = 8

    def __init__(self, table_ref: RoutingTableRef, timeout: float = 30.0) -> None:
        self._table_ref = table_ref
        self._timeout = timeout
        self._clients: Dict[str, Tuple[Tuple[str, int], RemoteServerClient]] = {}
        self._clients_lock = threading.Lock()
        self._fanout = ThreadPoolExecutor(
            max_workers=self._FANOUT_WORKERS, thread_name_prefix="tc-router-fanout"
        )

    def supported_operations(self) -> List[str]:
        # The proxy surface, not the handler list: a client negotiating
        # against the router must not downgrade to per-chunk ingest just
        # because the router itself has no _op_insert_chunks.
        return [op for op in OPERATIONS if op not in KV_OPERATIONS]

    def hello_extras(self) -> Dict:
        return {"routing": self._table_ref.table.to_payload(), "role": "router"}

    def _op_routing_table(self, _request: Request) -> Response:
        return Response.success({"routing": self._table_ref.table.to_payload()})

    def dispatch(self, request: Request) -> Response:
        if request.operation in ("hello", "ping", "routing_table", "stats", "trace_dump"):
            return super().dispatch(request)
        try:
            return self._proxy(request)
        except TimeCryptError as exc:
            return Response.failure(exc)
        except Exception as exc:  # noqa: BLE001 — the proxy must always answer
            return Response.failure(self._unexpected_error(exc))

    # -- engine connections -----------------------------------------------------

    def _engine_client(self, name: str) -> RemoteServerClient:
        address = self._table_ref.table.address_of(name)
        with self._clients_lock:
            cached = self._clients.get(name)
            if cached is not None and cached[0] == address:
                return cached[1]
        # Mirror the server-side tracing flag onto the outbound hop: a
        # proxied request forwarded from inside a traced handler then shows
        # up as a child span of the router's server span.
        client = RemoteServerClient(
            address[0], address[1], timeout=self._timeout, tracing=self.tracing
        )
        with self._clients_lock:
            stale = self._clients.get(name)
            self._clients[name] = (address, client)
        if stale is not None:
            stale[1].close()
        return client

    def _drop_engine_client(self, name: str) -> None:
        with self._clients_lock:
            cached = self._clients.pop(name, None)
        if cached is not None:
            cached[1].close()

    def close(self) -> None:
        self._fanout.shutdown(wait=True)
        with self._clients_lock:
            clients = [client for _address, client in self._clients.values()]
            self._clients.clear()
        for client in clients:
            client.close()

    def _fan_out(
        self, batches: Dict[str, List[Request]]
    ) -> Dict[str, List[Response]]:
        """Run one ``_forward_many`` per owner concurrently.

        ``_forward_many`` already degrades transport loss to per-request
        failure responses, so the futures only raise on programming errors —
        which the dispatch catch-all turns into a typed failure.  Owners'
        sub-batches ride separate pipelined connections, so a cross-shard
        split costs one round-trip *time*, not one per owner.

        The submitting thread's trace context is re-installed around each
        sub-batch — pool threads have no thread-local context of their own,
        and without this the split sub-requests would start fresh traces
        instead of joining the proxied request's tree.
        """
        parent = current_context()

        def forward(owner: str, requests: List[Request]) -> List[Response]:
            previous = set_context(parent)
            try:
                return self._forward_many(owner, requests)
            finally:
                set_context(previous)

        futures = {
            owner: self._fanout.submit(forward, owner, requests)
            for owner, requests in sorted(batches.items())
        }
        return {owner: future.result() for owner, future in futures.items()}

    # -- proxying ---------------------------------------------------------------

    def _proxy(self, request: Request) -> Response:
        table = self._table_ref.table
        if not len(table):
            return Response.failure(ProtocolError("the routing table has no engine shards"))
        if request.operation not in _PROXYABLE_OPS:
            return Response.failure(
                ProtocolError(f"unsupported operation '{request.operation}'")
            )
        stream_uuids = _request_stream_uuids(request)
        owners: Dict[str, List[str]] = {}
        for stream_uuid in stream_uuids:
            owners.setdefault(table.owner_of(stream_uuid), []).append(stream_uuid)
        if len(owners) <= 1:
            owner = next(iter(owners)) if owners else sorted(table.engine_names)[0]
            return self._forward_many(owner, [request])[0]
        if request.operation == "stat_range_multi":
            return self._split_stat_range_multi(request, table)
        if request.operation == "put_grants":
            return self._split_put_grants(request, table)
        return Response.failure(
            QueryError(
                f"'{request.operation}' addresses streams on several shards "
                "and cannot be split"
            )
        )

    def _forward_many(self, owner: str, requests: List[Request]) -> List[Response]:
        """Forward a batch to one shard; one reconnect attempt on transport loss."""
        last_error: Optional[Exception] = None
        for _attempt in range(2):
            try:
                client = self._engine_client(owner)
                return client.call_many(requests)
            except (TransportError, OSError) as exc:
                last_error = exc
                self._drop_engine_client(owner)
        return [
            Response.failure(
                TransportError(f"engine shard '{owner}' is unreachable: {last_error}")
            )
            for _request in requests
        ]

    def _split_stat_range_multi(self, request: Request, table: ShardRoutingTable) -> Response:
        """A cross-shard inter-stream query: per-stream ``stat_range`` sub-requests,
        pipelined per owner and fanned out to all owners concurrently,
        recombined exactly as a single engine would."""
        uuids = list(request.args["uuids"])
        start, end = request.args["start"], request.args["end"]
        by_owner: Dict[str, List[str]] = {}
        for stream_uuid in uuids:
            by_owner.setdefault(table.owner_of(stream_uuid), []).append(stream_uuid)
        responses_by_owner = self._fan_out(
            {
                owner: [
                    Request("stat_range", {"uuid": stream_uuid, "start": start, "end": end})
                    for stream_uuid in owned
                ]
                for owner, owned in by_owner.items()
            }
        )
        per_stream: Dict[str, Response] = {}
        for owner, owned in by_owner.items():
            per_stream.update(zip(owned, responses_by_owner[owner]))
        results = []
        for stream_uuid in uuids:  # combine in request order, as one engine would
            response = per_stream[stream_uuid]
            if not response.ok:
                return response
            results.append(RemoteServerClient._stat_from_json(response.result["stat"]))
        aggregate = MultiStreamAggregate.combine(results)
        return Response.success(
            {
                "values": list(aggregate.values),
                "component_names": list(aggregate.component_names),
                "per_stream_intervals": [list(item) for item in aggregate.per_stream_intervals],
            }
        )

    def _split_put_grants(self, request: Request, table: ShardRoutingTable) -> Response:
        """A cross-shard grant burst: one ``put_grants`` sub-batch per owner,
        fanned out to all owners concurrently, grant ids stitched back into
        input order."""
        targets = list(request.args["grants"])
        if len(targets) != len(request.attachments):
            return Response.failure(ProtocolError("put_grants targets and attachments must align"))
        slots_by_owner: Dict[str, List[int]] = {}
        for slot, target in enumerate(targets):
            slots_by_owner.setdefault(table.owner_of(target["uuid"]), []).append(slot)
        responses_by_owner = self._fan_out(
            {
                owner: [
                    Request(
                        "put_grants",
                        {"grants": [targets[slot] for slot in slots]},
                        [request.attachments[slot] for slot in slots],
                    )
                ]
                for owner, slots in slots_by_owner.items()
            }
        )
        grant_ids: List[Optional[int]] = [None] * len(targets)
        for owner in sorted(slots_by_owner):
            slots = slots_by_owner[owner]
            response = responses_by_owner[owner][0]
            if not response.ok:
                return response
            for slot, grant_id in zip(slots, response.result["grant_ids"]):
                grant_ids[slot] = int(grant_id)
        return Response.success({"grant_ids": grant_ids})


class StreamRouter:
    """The sharded tier's front door: routing table + proxy behind TCP."""

    def __init__(
        self,
        table_ref: Optional[RoutingTableRef] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 8,
        timeout: float = 30.0,
    ) -> None:
        self.table_ref = table_ref if table_ref is not None else RoutingTableRef()
        self._dispatcher = RouterDispatcher(self.table_ref, timeout=timeout)
        self._server = TimeCryptTCPServer(
            host=host,
            port=port,
            max_workers=max_workers,
            dispatcher=self._dispatcher,
            node_name="router",
        )

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.address

    @property
    def table(self) -> ShardRoutingTable:
        return self.table_ref.table

    def set_engines(self, engines) -> ShardRoutingTable:
        return self.table_ref.set_engines(engines)

    def add_engine(self, name: str, host: str, port: int) -> ShardRoutingTable:
        return self.table_ref.add_engine(name, host, port)

    def remove_engine(self, name: str) -> ShardRoutingTable:
        table = self.table_ref.remove_engine(name)
        self._dispatcher._drop_engine_client(name)
        return table

    def start(self) -> "StreamRouter":
        self._server.start()
        return self

    def stop(self) -> None:
        self._server.stop()
        self._dispatcher.close()

    def __enter__(self) -> "StreamRouter":
        return self.start()

    def __exit__(self, *_exc_info: object) -> None:
        self.stop()


def deploy_sharded_engines(
    engines: Mapping[str, ServerEngine],
    host: str = "127.0.0.1",
    max_workers: int = 8,
    timeout: float = 30.0,
    shard_factory: Optional[Callable[..., EngineShardServer]] = None,
) -> Tuple[StreamRouter, Dict[str, EngineShardServer]]:
    """Start one shard server per engine plus a router that fronts them.

    Shards bind ephemeral ports first, then the shared table is populated
    with the real addresses (epoch 1) and the router starts.  The caller
    owns shutdown: stop the router, then the shards.
    """
    if not engines:
        raise ValueError("a sharded deployment needs at least one engine")
    table_ref = RoutingTableRef()
    make_shard = shard_factory if shard_factory is not None else EngineShardServer
    shards: Dict[str, EngineShardServer] = {}
    router: Optional[StreamRouter] = None
    try:
        for name in sorted(engines):
            shards[name] = make_shard(
                name, engines[name], table_ref, host=host, max_workers=max_workers
            ).start()
        table_ref.set_engines(
            [(name, *shard.address) for name, shard in sorted(shards.items())]
        )
        router = StreamRouter(table_ref, host=host, max_workers=max_workers, timeout=timeout)
        router.start()
        return router, shards
    except BaseException:
        if router is not None:
            router.stop()
        for shard in shards.values():
            shard.stop()
        raise
