"""Key-value storage substrate (the Cassandra stand-in).

TimeCrypt persists encrypted chunks and index nodes in a distributed
key-value store (Cassandra in the paper's prototype).  This package provides
an embedded substitute with the same contract:

* :class:`~repro.storage.kv.KeyValueStore` — the abstract interface the
  server engine writes against.
* :class:`~repro.storage.memory.MemoryStore` — an in-memory store for tests
  and benchmarks.
* :class:`~repro.storage.disk.AppendLogStore` — a persistent append-only-log
  store with an in-memory index (a miniature LSM level).
* :class:`~repro.storage.cluster.StorageCluster` — consistent-hash
  partitioning over several virtual nodes with N-way replication, modelling
  the distributed deployment.
"""

from repro.storage.cluster import StorageCluster
from repro.storage.disk import AppendLogStore
from repro.storage.kv import KeyValueStore
from repro.storage.memory import MemoryStore
from repro.storage.partitioner import ConsistentHashRing

__all__ = [
    "KeyValueStore",
    "MemoryStore",
    "AppendLogStore",
    "ConsistentHashRing",
    "StorageCluster",
]
