"""Key-value storage substrate (the Cassandra stand-in).

TimeCrypt persists encrypted chunks and index nodes in a distributed
key-value store (Cassandra in the paper's prototype).  This package provides
an embedded substitute with the same contract:

* :class:`~repro.storage.kv.KeyValueStore` — the abstract interface the
  server engine writes against.
* :class:`~repro.storage.memory.MemoryStore` — an in-memory store for tests
  and benchmarks.
* :class:`~repro.storage.disk.AppendLogStore` — a persistent append-only-log
  store with an in-memory index (a miniature LSM level).
* :class:`~repro.storage.cluster.StorageCluster` — consistent-hash
  partitioning over several virtual nodes with N-way replication, modelling
  the distributed deployment; membership is elastic (``add_node`` /
  ``decommission_node`` stream only the moved key ranges, live) and writes
  that miss a downed replica park hints replayed on ``mark_up``.
* :class:`~repro.storage.node.StorageNodeServer` /
  :class:`~repro.storage.remote.RemoteKeyValueStore` — the remote storage
  tier: each node is a TCP server speaking the pipelined ``kv_*`` wire
  protocol, and the cluster's ``store_factory`` connects to them, so
  replication crosses real sockets.
"""

from repro.storage.cluster import HINT_PREFIX, StorageCluster
from repro.storage.disk import AppendLogStore
from repro.storage.kv import KeyValueStore
from repro.storage.memory import MemoryStore
from repro.storage.partitioner import ConsistentHashRing

#: The remote-tier classes live behind PEP 562 lazy attributes: their modules
#: pull in :mod:`repro.net` (and through it the server engine), which itself
#: imports this package — importing them eagerly here would be circular.
_LAZY_EXPORTS = {
    "StorageNodeServer": "repro.storage.node",
    "StorageNodeDispatcher": "repro.storage.node",
    "RemoteKeyValueStore": "repro.storage.remote",
}


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "KeyValueStore",
    "MemoryStore",
    "AppendLogStore",
    "ConsistentHashRing",
    "StorageCluster",
    "HINT_PREFIX",
    "StorageNodeServer",
    "StorageNodeDispatcher",
    "RemoteKeyValueStore",
]
