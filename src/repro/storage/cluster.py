"""A replicated storage cluster built from per-node stores and the token ring.

This is the "distributed" half of the Cassandra substitution: a
:class:`StorageCluster` owns one :class:`~repro.storage.kv.KeyValueStore`
per virtual node, places every key with consistent hashing, writes to all
replicas, and reads from the first healthy one.  Nodes can be marked down to
exercise replica failover in tests.

The cluster itself implements :class:`~repro.storage.kv.KeyValueStore`, so
the server engine does not care whether it talks to a single in-memory store
or a replicated cluster.

Batch operations scatter-gather: ``multi_put``/``multi_get``/``multi_delete``
group the keys by owning replica via the consistent-hash ring and issue one
batched call per healthy node, so a write set of n keys over an N-node
cluster costs at most N (typically ``replication_factor``-ish) backend round
trips instead of n·RF.  A node whose local store raises mid-``multi_put``/
``multi_get`` is marked down and its share of the batch is re-routed to the
surviving replicas — the same mark-down state that ``mark_up`` +
``repair_node`` later heal; ``multi_delete`` instead propagates node errors,
because a missed tombstone cannot be repaired after the fact.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import PartitionError, StorageError
from repro.storage.kv import KeyValueStore
from repro.storage.memory import MemoryStore
from repro.storage.partitioner import ConsistentHashRing

#: Exceptions treated as a node outage by the scatter-gather batch ops.
#: Deterministic caller errors (bad key/value types, logic bugs) propagate
#: unchanged instead of marking nodes down — a TypeError is not an outage.
_NODE_FAILURES = (OSError, StorageError)


class StorageCluster(KeyValueStore):
    """N-way replicated key-value store over multiple node-local stores."""

    def __init__(
        self,
        num_nodes: int = 3,
        replication_factor: int = 2,
        store_factory: Optional[Callable[[str], KeyValueStore]] = None,
        virtual_tokens: int = 64,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("the cluster needs at least one node")
        if replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        self._replication_factor = min(replication_factor, num_nodes)
        factory = store_factory or (lambda _name: MemoryStore())
        self._node_names = [f"node-{index}" for index in range(num_nodes)]
        self._stores: Dict[str, KeyValueStore] = {name: factory(name) for name in self._node_names}
        self._down: Set[str] = set()
        self._ring = ConsistentHashRing(self._node_names, virtual_tokens=virtual_tokens)

    # -- cluster management ---------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        return list(self._node_names)

    @property
    def replication_factor(self) -> int:
        return self._replication_factor

    def node_store(self, name: str) -> KeyValueStore:
        """Direct access to one node's local store (tests and inspection)."""
        return self._stores[name]

    def mark_down(self, name: str) -> None:
        """Simulate a node failure."""
        if name not in self._stores:
            raise ValueError(f"unknown node '{name}'")
        self._down.add(name)

    def mark_up(self, name: str) -> None:
        """Bring a failed node back (it may hold stale data until repaired)."""
        self._down.discard(name)

    def healthy_replicas(self, key: bytes) -> List[str]:
        return [node for node in self._ring.replicas(key, self._replication_factor) if node not in self._down]

    def _group_by_replica(self, keys: Iterable[bytes]) -> Dict[str, List[bytes]]:
        """Scatter phase: keys grouped by every healthy replica that owns them.

        Raises :class:`~repro.exceptions.PartitionError` as soon as any key
        has no healthy replica, matching the scalar ops.
        """
        groups: Dict[str, List[bytes]] = {}
        for key in keys:
            replicas = self.healthy_replicas(key)
            if not replicas:
                raise PartitionError(f"no healthy replica for key {key!r}")
            for node in replicas:
                groups.setdefault(node, []).append(key)
        return groups

    # -- KeyValueStore interface -------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        replicas = self.healthy_replicas(key)
        if not replicas:
            raise PartitionError(f"no healthy replica for key {key!r}")
        for node in replicas:
            value = self._stores[node].get(key)
            if value is not None:
                return value
        return None

    def put(self, key: bytes, value: bytes) -> None:
        replicas = self.healthy_replicas(key)
        if not replicas:
            raise PartitionError(f"no healthy replica for key {key!r}")
        for node in replicas:
            self._stores[node].put(key, value)

    def delete(self, key: bytes) -> bool:
        replicas = self.healthy_replicas(key)
        if not replicas:
            raise PartitionError(f"no healthy replica for key {key!r}")
        existed = False
        for node in replicas:
            existed = self._stores[node].delete(key) or existed
        return existed

    # -- batch primitives (scatter-gather) ----------------------------------------

    def multi_put(self, items: Iterable[Tuple[bytes, bytes]]) -> None:
        """Group the write set by owning replica; one ``multi_put`` per node.

        A node whose store raises is marked down; keys that reached no
        replica at all are re-routed to the survivors (the ring re-grouping
        excludes downed nodes).  Keys acked by at least one replica but
        under-replicated because of the failure are left for ``repair_node``,
        matching the state a scalar-write outage leaves behind.
        """
        pending: Dict[bytes, bytes] = {key: value for key, value in items}
        while pending:
            groups = self._group_by_replica(pending)
            acked: Set[bytes] = set()
            any_failure = False
            for node, keys in groups.items():
                try:
                    self._stores[node].multi_put([(key, pending[key]) for key in keys])
                except PartitionError:
                    raise
                except _NODE_FAILURES:
                    self.mark_down(node)
                    any_failure = True
                else:
                    acked.update(keys)
            if not any_failure:
                return
            pending = {key: value for key, value in pending.items() if key not in acked}

    def multi_get(self, keys: Iterable[bytes]) -> Dict[bytes, Optional[bytes]]:
        """Group reads by first healthy replica; one ``multi_get`` per node.

        Keys a node reports missing fall back to their next replica (batched
        with that node's other keys on the following round); a node that
        raises is marked down and its keys are re-routed.  A key resolves to
        ``None`` only once every healthy replica has denied it, and raises
        :class:`~repro.exceptions.PartitionError` when no healthy replica
        remains — both matching the scalar read path.
        """
        materialized = list(keys)
        result: Dict[bytes, Optional[bytes]] = {key: None for key in materialized}
        tried: Dict[bytes, Set[str]] = {key: set() for key in result}
        unresolved: Set[bytes] = set(result)
        while unresolved:
            groups: Dict[str, List[bytes]] = {}
            for key in list(unresolved):
                replicas = self.healthy_replicas(key)
                if not replicas:
                    raise PartitionError(f"no healthy replica for key {key!r}")
                untried = [node for node in replicas if node not in tried[key]]
                if not untried:
                    unresolved.discard(key)  # absent on every healthy replica
                    continue
                groups.setdefault(untried[0], []).append(key)
            for node, node_keys in groups.items():
                try:
                    found = self._stores[node].multi_get(node_keys)
                except PartitionError:
                    raise
                except _NODE_FAILURES:
                    self.mark_down(node)
                    continue
                for key in node_keys:
                    tried[key].add(node)
                    value = found.get(key)
                    if value is not None:
                        result[key] = value
                        unresolved.discard(key)
        return result

    def multi_delete(self, keys: Iterable[bytes]) -> Set[bytes]:
        """Group deletes by owning replica; one ``multi_delete`` per node.

        Unlike ``multi_put``, a node failure here propagates to the caller
        (matching the scalar ``delete``): the mark-down/repair machinery can
        backfill a missed *write*, but it cannot propagate a missed
        tombstone — ``repair_node`` would resurrect the key instead.  The
        caller must know the delete did not fully land so it can retry.
        """
        materialized = set(keys)
        if not materialized:
            return set()
        existed: Set[bytes] = set()
        for node, node_keys in self._group_by_replica(materialized).items():
            existed.update(self._stores[node].multi_delete(node_keys))
        return existed

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Merge prefix scans across nodes, deduplicating replicated keys."""
        seen: Set[bytes] = set()
        merged: List[Tuple[bytes, bytes]] = []
        for name, store in self._stores.items():
            if name in self._down:
                continue
            for key, value in store.scan_prefix(prefix):
                if key not in seen:
                    seen.add(key)
                    merged.append((key, value))
        merged.sort(key=lambda item: item[0])
        return iter(merged)

    def size_bytes(self) -> int:
        """Logical size (deduplicated across replicas)."""
        return sum(len(key) + len(value) for key, value in self.scan_prefix(b""))

    def physical_size_bytes(self) -> int:
        """Raw size including replication overhead."""
        return sum(store.size_bytes() for store in self._stores.values())

    def repair_node(self, name: str) -> int:
        """Copy any keys a recovered node is missing from its peers; returns count."""
        if name not in self._stores:
            raise ValueError(f"unknown node '{name}'")
        target = self._stores[name]
        missing = [
            (key, value)
            for key, value in self.scan_prefix(b"")
            if name in self._ring.replicas(key, self._replication_factor) and target.get(key) is None
        ]
        if missing:
            target.multi_put(missing)
        return len(missing)

    def close(self) -> None:
        for store in self._stores.values():
            store.close()
