"""A replicated storage cluster built from per-node stores and the token ring.

This is the "distributed" half of the Cassandra substitution: a
:class:`StorageCluster` owns one :class:`~repro.storage.kv.KeyValueStore`
per virtual node, places every key with consistent hashing, writes to all
replicas, and reads from the first healthy one.  Nodes can be marked down to
exercise replica failover in tests.

The cluster itself implements :class:`~repro.storage.kv.KeyValueStore`, so
the server engine does not care whether it talks to a single in-memory store
or a replicated cluster.  The nodes themselves are pluggable through
``store_factory``: in-process :class:`~repro.storage.memory.MemoryStore`
nodes for tests, or :class:`~repro.storage.remote.RemoteKeyValueStore`
clients dialing :class:`~repro.storage.node.StorageNodeServer` processes —
then every per-node batch below is one real wire round trip and
replication crosses sockets (socket failures surface as
:class:`~repro.exceptions.StorageError` and feed the same mark-down /
re-route / repair machinery).

Batch operations scatter-gather: ``multi_put``/``multi_get``/``multi_delete``
group the keys by owning replica via the consistent-hash ring and issue one
batched call per healthy node, so a write set of n keys over an N-node
cluster costs at most N (typically ``replication_factor``-ish) backend round
trips instead of n·RF.  The per-node calls **fan out concurrently** through
a shared :class:`~concurrent.futures.ThreadPoolExecutor` sized against the
*live* membership (it grows when ``add_node`` outgrows it); outcomes are
gathered and then applied in deterministic node order, so failure handling
behaves identically to a sequential loop.  A node whose local store raises
mid-``multi_put``/``multi_get`` is marked down and its share of the batch
is re-routed to the surviving replicas — the same mark-down state that
``mark_up`` + ``repair_node`` later heal; ``multi_delete`` instead
propagates node errors (deterministically: the lowest-named failing node's
error), because a missed tombstone cannot be repaired after the fact.

Two production behaviours of the real Cassandra tier ride on top:

* **Elastic membership** — :meth:`StorageCluster.add_node` and
  :meth:`StorageCluster.decommission_node` change the topology *live*.  The
  new ring is built as a copy and swapped in atomically; while the handoff
  streams the moved key ranges to their new owners (bounded batches, one
  ``multi_get`` asking each destination what it already holds, one batched
  read from the *old* owners, one ``multi_put`` per destination — the same
  shape as :meth:`repair_node`), every operation routes over the **union**
  of the old and new replica walks: reads fall back to the old owner of a
  not-yet-moved key, writes land on both owner sets, deletes tombstone
  both.  Only ~1/N of the keyspace moves on an add (± virtual-token
  variance), and a read issued mid-handoff is always served correctly.

* **Hinted handoff** — a write that misses a downed replica parks a *hint*
  (the key and value, under the reserved :data:`HINT_PREFIX` keyspace) on a
  surviving replica of the same key, and :meth:`mark_up` replays the parked
  hints straight onto the recovered node before reads return to it.  The
  hint lives in the surviving node's regular store, so it survives process
  restarts on persistent backends; :meth:`repair_node` becomes the backstop
  for cascaded failures (hint host lost too) instead of the only heal path.
  Hint keys never appear in cluster-level scans, sizes, or repairs, and
  writing a user key under ``hint/`` is rejected.
"""

from __future__ import annotations

import heapq
import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import ClusterMembershipError, PartitionError, StorageError
from repro.obs.tracing import current_context, set_context
from repro.storage.kv import KeyValueStore
from repro.storage.memory import MemoryStore
from repro.storage.partitioner import ConsistentHashRing

logger = logging.getLogger(__name__)

#: Exceptions treated as a node outage by the scatter-gather batch ops.
#: Deterministic caller errors (bad key/value types, logic bugs) propagate
#: unchanged instead of marking nodes down — a TypeError is not an outage.
_NODE_FAILURES = (OSError, StorageError)

#: Reserved keyspace for hinted handoff.  A hint for write ``key`` missed by
#: downed node ``target`` is stored as ``hint/<target>/<key>`` on a surviving
#: replica of ``key``.  User keys under this prefix are rejected, and cluster
#: scans / sizes / repair never surface it.
HINT_PREFIX = b"hint/"


def _hint_key(target: str, key: bytes) -> bytes:
    return HINT_PREFIX + target.encode("utf-8") + b"/" + key


def _hint_prefix_for(target: str) -> bytes:
    return HINT_PREFIX + target.encode("utf-8") + b"/"


def _parse_hint_key(hint_key: bytes) -> Tuple[Optional[str], bytes]:
    """``(target_node, original_key)`` for a hint key, ``(None, b"")`` if malformed."""
    body = hint_key[len(HINT_PREFIX):]
    separator = body.find(b"/")
    if separator < 1:
        return None, b""
    return body[:separator].decode("utf-8", "replace"), body[separator + 1:]


class _ReplayTargetDown(Exception):
    """Internal: the node being hint-replayed went down again mid-replay."""


class StorageCluster(KeyValueStore):
    """N-way replicated key-value store over multiple node-local stores."""

    def __init__(
        self,
        num_nodes: int = 3,
        replication_factor: int = 2,
        store_factory: Optional[Callable[[str], KeyValueStore]] = None,
        virtual_tokens: int = 64,
        max_fanout_workers: int = 8,
        hinted_handoff: bool = True,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("the cluster needs at least one node")
        if replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        if max_fanout_workers <= 0:
            raise ValueError("max_fanout_workers must be positive")
        self._requested_rf = replication_factor
        self._replication_factor = min(replication_factor, num_nodes)
        self._store_factory = store_factory or (lambda _name: MemoryStore())
        self._node_names = [f"node-{index}" for index in range(num_nodes)]
        self._stores: Dict[str, KeyValueStore] = {
            name: self._store_factory(name) for name in self._node_names
        }
        self._down: Set[str] = set()
        self._ring = ConsistentHashRing(self._node_names, virtual_tokens=virtual_tokens)
        #: ``(old_ring, old_rf)`` while a membership change streams its
        #: handoff; routing unions the old walk behind the new one so reads,
        #: writes, and deletes stay correct mid-rebalance.
        self._prev: Optional[Tuple[ConsistentHashRing, int]] = None
        #: Keys written while a handoff streams (union writes also land on
        #: range-losing old owners); the post-handoff sweep re-cleans them.
        self._rebalance_writes: Optional[Set[bytes]] = None
        self._hinted_handoff = hinted_handoff
        self._max_fanout_workers = max_fanout_workers
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_workers = 0
        self._executor_lock = threading.Lock()
        self._membership_lock = threading.RLock()
        #: Stats of the most recent ``add_node``/``decommission_node``
        #: (``action``, ``node``, ``moved_keys``, ``copied_keys``,
        #: ``handoff_batches``) — benchmarks and tests read it.
        self.last_rebalance: Optional[Dict[str, Any]] = None

    # -- cluster management ---------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        return list(self._node_names)

    @property
    def replication_factor(self) -> int:
        return self._replication_factor

    def node_store(self, name: str) -> KeyValueStore:
        """Direct access to one node's local store (tests and inspection)."""
        return self._stores[name]

    def mark_down(self, name: str) -> None:
        """Simulate a node failure."""
        if name not in self._stores:
            raise ValueError(f"unknown node '{name}'")
        logger.warning("storage node '%s' marked down", name)
        self._down.add(name)

    def _mark_failed(self, name: str) -> None:
        """Record an observed node failure (tolerates a just-detached node)."""
        if name in self._stores:
            if name not in self._down:
                logger.warning("storage node '%s' failed; marking down", name)
            self._down.add(name)

    def mark_up(self, name: str, replay_hints: bool = True) -> int:
        """Bring a failed node back and replay the hints parked for it.

        Returns the number of hinted writes applied.  With ``replay_hints``
        (the default, and ``hinted_handoff`` enabled), every surviving node
        is asked for the ``hint/<name>/...`` keys it parked while ``name``
        was down and the missed writes are applied straight to the
        recovered node in bounded batches — after which ``repair_node`` has
        nothing left to heal unless the hints themselves were lost to a
        cascaded failure.  The node may hold stale data for keys overwritten
        *before* it went down only if those writes predate the mark-down;
        hints cover exactly the down window.
        """
        if name not in self._stores:
            raise ValueError(f"unknown node '{name}'")
        self._down.discard(name)
        if not replay_hints or not self._hinted_handoff:
            logger.info("storage node '%s' marked up (hint replay skipped)", name)
            return 0
        replayed = self._replay_hints(name)
        logger.info("storage node '%s' marked up; %d hinted write(s) replayed", name, replayed)
        return replayed

    def healthy_replicas(self, key: bytes) -> List[str]:
        return [
            node
            for node in self._replica_walk(key)
            if node not in self._down and node in self._stores
        ]

    def _replica_walk(self, key: bytes) -> List[str]:
        """Ordered replica candidates: new-ring walk, then old-ring extras.

        Outside a rebalance this is exactly the ring's replica set.  During
        one, the previous topology's replicas are appended (deduplicated)
        so a key whose range is mid-handoff still resolves to its old owner
        on reads, still receives writes at both owner sets, and still
        tombstones both on delete.
        """
        replicas = self._ring.replicas(key, self._replication_factor)
        prev = self._prev
        if prev is not None:
            old_ring, old_rf = prev
            for node in old_ring.replicas(key, old_rf):
                if node not in replicas:
                    replicas.append(node)
        return replicas

    def _group_by_replica(self, keys: Iterable[bytes]) -> Dict[str, List[bytes]]:
        """Scatter phase: keys grouped by every healthy replica that owns them.

        Raises :class:`~repro.exceptions.PartitionError` as soon as any key
        has no healthy replica, matching the scalar ops.
        """
        groups: Dict[str, List[bytes]] = {}
        for key in keys:
            replicas = self.healthy_replicas(key)
            if not replicas:
                raise PartitionError(f"no healthy replica for key {key!r}")
            for node in replicas:
                groups.setdefault(node, []).append(key)
        return groups

    # -- elastic membership ---------------------------------------------------

    def _next_node_name(self) -> str:
        index = len(self._node_names)
        while f"node-{index}" in self._stores:
            index += 1
        return f"node-{index}"

    def add_node(
        self,
        name_or_store: Any = None,
        store: Optional[KeyValueStore] = None,
        handoff_batch_size: int = 256,
    ) -> str:
        """Grow the cluster by one node, live, and stream its ranges to it.

        ``name_or_store`` may be a node name (its store then comes from the
        cluster's ``store_factory``), a :class:`KeyValueStore` to adopt
        under an auto-assigned name, or ``None`` for both defaults; pass
        ``store=`` explicitly to name an adopted store.  Returns the node
        name.

        The ring gains the node's virtual tokens atomically (a copied ring
        is swapped in), then the handoff streams the deduplicated keyspace
        in ``handoff_batch_size``-bounded batches, copying to the new node
        only the ~1/N of keys whose replica set now includes it — per
        batch: one ``multi_get`` asking the destination what it already
        holds, one batched read of the missing values from the old owners,
        one ``multi_put`` of the backfill.  Traffic keeps flowing the whole
        time: reads consult the old owner as a fallback until the handoff
        completes, and writes land on both owner sets, so nothing is lost
        whichever side of the handoff a key is on.
        """
        if isinstance(name_or_store, KeyValueStore) and store is None:
            name: Optional[str] = None
            store = name_or_store
        else:
            name = name_or_store
        if handoff_batch_size < 1:
            raise ValueError("handoff_batch_size must be positive")
        with self._membership_lock:
            if name is None:
                name = self._next_node_name()
            if not isinstance(name, str) or not name or "/" in name:
                raise ClusterMembershipError(
                    f"invalid node name {name!r} (must be a non-empty string without '/')"
                )
            if name in self._stores:
                raise ClusterMembershipError(f"node '{name}' already in the cluster")
            new_store = store if store is not None else self._store_factory(name)
            new_ring = self._ring.copy()
            new_ring.add_node(name)
            # Publish order matters: the store must exist before any thread
            # can route to it, so register it, then swap the ring in.
            self._stores[name] = new_store
            self._node_names.append(name)
            old_ring, old_rf = self._ring, self._replication_factor
            self._rebalance_writes = set()
            self._prev = (old_ring, old_rf)
            self._ring = new_ring
            self._replication_factor = min(self._requested_rf, len(self._node_names))
            try:
                # repro: allow[REPRO004] membership changes are deliberately serialized: _membership_lock IS the rebalance critical section, and the fan-out pool it waits on never takes this lock (data ops read the published ring without it)
                stats = self._stream_handoff(handoff_batch_size)
            finally:
                recorded, self._rebalance_writes = self._rebalance_writes, None
                self._prev = None
            # With the old ring retired, writes stop touching the losing
            # old owners; sweep the copies that union writes re-created on
            # them mid-handoff, and re-park hints whose host fell off its
            # key's replica walk — both would otherwise go stale.
            # repro: allow[REPRO004] same serialized-rebalance design as _stream_handoff above
            self._sweep_rebalance_writes(recorded, old_ring, old_rf)
            # repro: allow[REPRO004] same serialized-rebalance design as _stream_handoff above
            self._rebalance_hints()
            self.last_rebalance = {"action": "add", "node": name, **stats}
            logger.info(
                "storage node '%s' added; %d key(s) moved in %d handoff batch(es)",
                name,
                stats.get("moved_keys", 0),
                stats.get("handoff_batches", 0),
            )
        return name

    def decommission_node(self, name: str, handoff_batch_size: int = 256) -> Dict[str, Any]:
        """Remove a node, live, streaming its ranges to their new owners first.

        The ring loses the node's tokens atomically; the handoff then
        copies every key range the survivors *gain* (for RF>1 most moved
        keys already have surviving replicas, so only the under-replicated
        remainder actually transfers) with the same bounded-batch shape as
        :meth:`add_node`.  The leaving node keeps serving reads and taking
        writes (old-ring fallback) until the handoff completes, after which
        it is detached and its store closed — its on-disk contents are left
        intact, like a Cassandra decommission.  Hints *hosted on* the
        leaving node are re-parked on survivors; hints *targeted at* it are
        dropped.  A node that is marked down may also be decommissioned
        (RF>1 survivors supply the data); whatever only it held is lost, as
        with any dead node.  Returns the rebalance stats.
        """
        if handoff_batch_size < 1:
            raise ValueError("handoff_batch_size must be positive")
        with self._membership_lock:
            if name not in self._stores:
                raise ClusterMembershipError(f"unknown node '{name}'")
            if len(self._node_names) <= 1:
                raise ClusterMembershipError("cannot decommission the last node")
            new_ring = self._ring.copy()
            new_ring.remove_node(name)
            old_ring, old_rf = self._ring, self._replication_factor
            self._rebalance_writes = set()
            self._prev = (old_ring, old_rf)
            self._ring = new_ring
            self._replication_factor = min(self._requested_rf, len(self._node_names) - 1)
            try:
                # repro: allow[REPRO004] membership changes are deliberately serialized under _membership_lock (see add_node); the awaited fan-out never takes it
                stats = self._stream_handoff(handoff_batch_size)
            finally:
                recorded, self._rebalance_writes = self._rebalance_writes, None
                self._prev = None
            # repro: allow[REPRO004] same serialized-rebalance design as _stream_handoff above
            self._sweep_rebalance_writes(recorded, old_ring, old_rf)
            # After _prev is cleared the leaving node is off every replica
            # walk, so the hint rebalance below moves every hint it hosts
            # onto the survivors and can never place one back on it.
            # repro: allow[REPRO004] same serialized-rebalance design as _stream_handoff above
            self._rebalance_hints()
            self._node_names.remove(name)
            leaving = self._stores.pop(name)
            self._down.discard(name)
            self._drop_hints_for(name)
            leaving.close()
            self.last_rebalance = {"action": "decommission", "node": name, **stats}
            logger.info(
                "storage node '%s' decommissioned; %d key(s) moved in %d handoff batch(es)",
                name,
                stats.get("moved_keys", 0),
                stats.get("handoff_batches", 0),
            )
            return dict(self.last_rebalance)

    def _stream_handoff(self, batch_size: int) -> Dict[str, int]:
        """Stream every moved key range to its new owners in bounded batches.

        Walks the deduplicated merged keyspace once (O(batch) memory, the
        same k-way scan :meth:`repair_node` uses) and compares each key's
        old and new replica sets; keys that gained owners are batched and
        copied by :meth:`_handoff_batch`.
        """
        assert self._prev is not None
        old_ring, old_rf = self._prev
        new_ring, new_rf = self._ring, self._replication_factor
        moved_keys = copied_keys = handoff_batches = 0
        batch: Dict[bytes, Tuple[List[str], List[str]]] = {}
        for key in self._merged_keys(b""):
            old_replicas = old_ring.replicas(key, old_rf)
            new_replicas = new_ring.replicas(key, new_rf)
            gained = [node for node in new_replicas if node not in old_replicas]
            lost = [node for node in old_replicas if node not in new_replicas]
            if not gained and not lost:
                continue
            moved_keys += 1
            batch[key] = (gained, lost)
            if len(batch) >= batch_size:
                copied_keys += self._handoff_batch(batch, old_ring, old_rf)
                handoff_batches += 1
                batch = {}
        if batch:
            copied_keys += self._handoff_batch(batch, old_ring, old_rf)
            handoff_batches += 1
        return {
            "moved_keys": moved_keys,
            "copied_keys": copied_keys,
            "handoff_batches": handoff_batches,
        }

    def _handoff_batch(
        self,
        batch: Dict[bytes, Tuple[List[str], List[str]]],
        old_ring: ConsistentHashRing,
        old_rf: int,
    ) -> int:
        """Copy one bounded batch of moved keys to the nodes that gained them.

        Per destination: one ``multi_get`` (what does it already hold — a
        fresher write that landed mid-rebalance must never be clobbered by
        the handoff copy), then one batched value read from the *old*
        owners for the union of missing keys, then one ``multi_put`` per
        destination.  A destination that fails is marked down and skipped
        (``repair_node`` is its backstop).  Once every gaining replica of a
        key confirmed holding it, the key is *cleaned up* from the nodes
        that lost the range (Cassandra's post-bootstrap cleanup, folded
        into the handoff): without it the loser's copy would go stale on
        the next overwrite and the deterministic scan tie-break could
        surface the stale value.  A node leaving the ring is never cleaned
        — a decommissioned node keeps its data — and a downed loser's copy
        is unreachable anyway.
        """
        wanted: Dict[str, List[bytes]] = {}
        for key, (gained, _lost) in batch.items():
            for destination in gained:
                if destination not in self._down and destination in self._stores:
                    wanted.setdefault(destination, []).append(key)
        # Keys safe to clean from the losing nodes: every gaining replica
        # ended up holding them.  A key with a skipped (downed) destination
        # is not settled — the loser's copy may be the only one left.
        settled: Set[bytes] = {
            key
            for key, (gained, _lost) in batch.items()
            if all(node in wanted for node in gained)
        }
        copied: Set[bytes] = set()
        if wanted:
            tasks = {
                node: (lambda store=self._stores[node], keys=list(node_keys): store.multi_get(keys))
                for node, node_keys in wanted.items()
            }
            outcomes = self._fan_out(tasks)
            missing: Dict[str, List[bytes]] = {}
            needed: Set[bytes] = set()
            for node in sorted(wanted):
                held, error = outcomes[node]
                if error is not None:
                    if isinstance(error, PartitionError):
                        raise error
                    if isinstance(error, _NODE_FAILURES):
                        self._mark_failed(node)
                        settled.difference_update(wanted[node])
                        continue
                    raise error
                gap = [key for key in wanted[node] if held.get(key) is None]
                if gap:
                    missing[node] = gap
                    needed.update(gap)
            if needed:
                values = self._multi_get_over(
                    sorted(needed),
                    lambda key: old_ring.replicas(key, old_rf),
                    strict=False,
                )
                puts: Dict[str, List[Tuple[bytes, bytes]]] = {}
                for node, keys in missing.items():
                    items: List[Tuple[bytes, bytes]] = []
                    for key in keys:
                        value = values.get(key)
                        if value is None:
                            settled.discard(key)  # no old owner could serve it
                        else:
                            items.append((key, value))
                    if items:
                        puts[node] = items
                if puts:
                    tasks = {
                        node: (
                            lambda store=self._stores[node], items=list(node_items): (
                                store.multi_put(items)
                            )
                        )
                        for node, node_items in puts.items()
                    }
                    outcomes = self._fan_out(tasks)
                    for node in sorted(puts):
                        _result, error = outcomes[node]
                        if error is None:
                            copied.update(key for key, _value in puts[node])
                        elif isinstance(error, PartitionError):
                            raise error
                        elif isinstance(error, _NODE_FAILURES):
                            self._mark_failed(node)
                            settled.difference_update(key for key, _value in puts[node])
                        else:
                            raise error
        self._cleanup_lost(batch, settled)
        return len(copied)

    def _cleanup_lost(
        self, batch: Dict[bytes, Tuple[List[str], List[str]]], settled: Set[bytes]
    ) -> None:
        """Delete settled moved keys from the nodes that lost their range."""
        still_in_ring = set(self._ring.nodes)
        removals: Dict[str, List[bytes]] = {}
        for key, (_gained, lost) in batch.items():
            if key not in settled:
                continue
            for node in lost:
                if node in still_in_ring and node not in self._down and node in self._stores:
                    removals.setdefault(node, []).append(key)
        if not removals:
            return
        tasks = {
            node: (lambda store=self._stores[node], keys=list(node_keys): store.multi_delete(keys))
            for node, node_keys in removals.items()
        }
        outcomes = self._fan_out(tasks)
        for node in sorted(removals):
            _result, error = outcomes[node]
            if error is not None:
                if isinstance(error, PartitionError):
                    raise error
                if isinstance(error, _NODE_FAILURES):
                    self._mark_failed(node)  # the stale copy dies with the outage
                else:
                    raise error

    # -- hinted handoff -------------------------------------------------------

    def _park_hints(self, hints: Dict[Tuple[str, bytes], bytes]) -> None:
        """Park ``(target, key) -> value`` hints on surviving replicas.

        Each hint is written to the first healthy replica of its *original*
        key (never the downed target itself), so the hint sits next to live
        data the recovered node will be read-repaired against and survives
        restarts on persistent backends.  A host failing mid-park is marked
        down and the hint re-picks the next survivor; a hint with no
        surviving host is dropped — ``repair_node`` remains the backstop.
        """
        pending = dict(hints)
        while pending:
            by_host: Dict[str, List[Tuple[Tuple[str, bytes], bytes]]] = {}
            unplaceable: List[Tuple[str, bytes]] = []
            for (target, key), value in pending.items():
                hosts = [node for node in self.healthy_replicas(key) if node != target]
                if not hosts:
                    unplaceable.append((target, key))
                    continue
                by_host.setdefault(hosts[0], []).append(((target, key), value))
            if unplaceable:
                logger.warning(
                    "dropping %d hint(s) with no surviving host (repair_node is the backstop)",
                    len(unplaceable),
                )
            for entry in unplaceable:
                pending.pop(entry)
            if by_host:
                logger.info(
                    "parking %d hinted write(s) on %d surviving host(s)",
                    sum(len(entries) for entries in by_host.values()),
                    len(by_host),
                )
            if not by_host:
                return
            tasks = {
                host: (
                    lambda store=self._stores[host], items=[
                        (_hint_key(target, key), value)
                        for (target, key), value in entries
                    ]: store.multi_put(items)
                )
                for host, entries in by_host.items()
            }
            outcomes = self._fan_out(tasks)
            progressed = False
            for host in sorted(by_host):
                _result, error = outcomes[host]
                if error is None:
                    for entry, _value in by_host[host]:
                        pending.pop(entry, None)
                    progressed = True
                elif isinstance(error, _NODE_FAILURES):
                    self._mark_failed(host)  # the retry loop re-picks hosts
                    progressed = True
                else:
                    # Deterministic error: drop rather than loop forever.
                    for entry, _value in by_host[host]:
                        pending.pop(entry, None)
            if not progressed:
                return

    def _replay_hints(self, name: str, batch_size: int = 256) -> int:
        """Apply every hint parked for ``name`` and delete the consumed hints.

        Scans each surviving node's local store for ``hint/<name>/...``
        (hints are host-placed, so no ring math applies) and applies the
        missed writes in bounded batches.  If the recovered node fails
        again mid-replay it is re-marked down and the unapplied hints stay
        parked for the next :meth:`mark_up`.
        """
        prefix = _hint_prefix_for(name)
        replayed = 0
        for host in list(self._node_names):
            if host == name or host in self._down:
                continue
            store = self._stores.get(host)
            if store is None:
                continue
            try:
                batch: List[Tuple[bytes, bytes]] = []
                for hint_key, value in store.scan_prefix(prefix):
                    batch.append((hint_key, value))
                    if len(batch) >= batch_size:
                        replayed += self._apply_hints(name, store, batch)
                        batch = []
                if batch:
                    replayed += self._apply_hints(name, store, batch)
            except _ReplayTargetDown:
                return replayed
            except PartitionError:
                raise
            except _NODE_FAILURES:
                self._mark_failed(host)  # host died mid-scan; its hints stay parked
        return replayed

    def _apply_hints(
        self, name: str, host_store: KeyValueStore, batch: List[Tuple[bytes, bytes]]
    ) -> int:
        """Apply one batch of hints to the recovered node, then consume them."""
        direct: List[Tuple[bytes, bytes]] = []
        rerouted: Dict[bytes, bytes] = {}
        for hint_key, value in batch:
            key = hint_key[len(_hint_prefix_for(name)):]
            if name in self._replica_walk(key):
                direct.append((key, value))
            else:
                # Membership changed while the node was down: the range
                # moved away from it, so route the write normally instead.
                rerouted[key] = value
        target_store = self._stores.get(name)
        if direct and target_store is not None:
            try:
                target_store.multi_put(direct)
            except PartitionError:
                raise
            except _NODE_FAILURES as exc:
                self._mark_failed(name)
                raise _ReplayTargetDown() from exc
        if rerouted:
            self._multi_put_core(rerouted)
        host_store.multi_delete([hint_key for hint_key, _value in batch])
        return len(batch)

    def _rebalance_hints(self) -> None:
        """Re-park hints whose host is no longer a replica of their key.

        Hints are host-placed on a replica of the original key, and
        :meth:`multi_delete` relies on that invariant to tombstone them:
        after a membership change shifts a key's replica walk, a hint
        stranded on an ex-replica would dodge those tombstones and a later
        replay could resurrect a deleted key.  So every topology change
        ends by walking each healthy node's (normally tiny) hint keyspace
        and moving mis-hosted hints onto a current replica; hints whose
        target no longer exists are dropped.  Hints sitting on a *downed*
        host cannot be moved (or tombstoned) until it returns — the one
        resurrection window left, closed for good only by per-write
        versions (see ROADMAP).
        """
        if not self._hinted_handoff:
            return
        for host in list(self._node_names):
            if host in self._down:
                continue
            store = self._stores.get(host)
            if store is None:
                continue
            moved: Dict[Tuple[str, bytes], bytes] = {}
            stale: List[bytes] = []
            try:
                for hint_key, value in store.scan_prefix(HINT_PREFIX):
                    target, key = _parse_hint_key(hint_key)
                    if target is None or target not in self._stores:
                        stale.append(hint_key)  # malformed or target gone
                        continue
                    walk = self._replica_walk(key)
                    if target not in walk:
                        # The key's range moved off the target: the current
                        # owners already hold its latest value (the handoff
                        # streamed it), so the hint is obsolete — and
                        # replaying it would redeliver a write the key may
                        # since have had deleted.
                        stale.append(hint_key)
                        continue
                    hosts = [
                        node
                        for node in walk
                        if node != target and node not in self._down and node in self._stores
                    ]
                    if host in hosts:
                        continue  # still correctly placed
                    moved[(target, key)] = value
                    stale.append(hint_key)
                if moved:
                    self._park_hints(moved)
                if stale:
                    store.multi_delete(stale)
            except _NODE_FAILURES:
                self._mark_failed(host)

    def _sweep_rebalance_writes(
        self, recorded: Optional[Set[bytes]], old_ring: ConsistentHashRing, old_rf: int
    ) -> None:
        """Re-clean keys written mid-handoff from the range-losing old owners.

        While a handoff streams, writes land on the union of old and new
        owners — including old owners whose handoff batch (and its cleanup)
        already passed.  Those copies would go permanently stale on the
        next post-handoff overwrite and the scan tie-break could surface
        them, so after the old ring retires the recorded write set is
        pushed back through :meth:`_handoff_batch`: the held-check confirms
        the new owners have each key (copying it if a destination outage
        left a gap) and the cleanup drops the loser copies.  Memory is
        bounded by the writes issued during the handoff window, not the
        keyspace.
        """
        if not recorded:
            return
        new_ring, new_rf = self._ring, self._replication_factor
        batch: Dict[bytes, Tuple[List[str], List[str]]] = {}
        for key in sorted(recorded):
            if key.startswith(HINT_PREFIX):
                continue
            old_replicas = old_ring.replicas(key, old_rf)
            new_replicas = new_ring.replicas(key, new_rf)
            gained = [node for node in new_replicas if node not in old_replicas]
            lost = [node for node in old_replicas if node not in new_replicas]
            if not gained and not lost:
                continue
            batch[key] = (gained, lost)
            if len(batch) >= 256:
                self._handoff_batch(batch, old_ring, old_rf)
                batch = {}
        if batch:
            self._handoff_batch(batch, old_ring, old_rf)

    def _drop_hints_for(self, name: str) -> None:
        """Delete hints targeted at a node that no longer exists."""
        prefix = _hint_prefix_for(name)
        for host in list(self._node_names):
            if host in self._down:
                continue
            store = self._stores.get(host)
            if store is None:
                continue
            try:
                stale = list(store.scan_keys(prefix))
                if stale:
                    store.multi_delete(stale)
            except _NODE_FAILURES:
                self._mark_failed(host)

    # -- concurrent per-node fan-out -----------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        """The shared fan-out executor, sized against the live membership.

        Created on first multi-node batch; when ``add_node`` grows the
        cluster past the current pool a wider one is swapped in (in-flight
        futures on the retiring pool run to completion), so a 3→8-node
        cluster really fans out 8 wide instead of keeping the width it was
        born with.
        """
        desired = min(self._max_fanout_workers, max(1, len(self._node_names)))
        with self._executor_lock:
            if self._executor is not None and self._executor_workers < desired:
                retiring, self._executor = self._executor, None
                retiring.shutdown(wait=False)
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=desired, thread_name_prefix="tc-cluster"
                )
                self._executor_workers = desired
            return self._executor

    def _fan_out(
        self, tasks: Dict[str, Callable[[], Any]]
    ) -> Dict[str, Tuple[Any, Optional[BaseException]]]:
        """Run one thunk per node concurrently; gather ``(result, error)`` pairs.

        Nothing is raised and no cluster state is mutated here — callers
        inspect the outcomes in sorted node order, so mark-downs and error
        propagation stay deterministic however the threads interleave.  A
        single-node batch runs inline (no pool hop for the common
        replication-factor-1 corner and tiny clusters).
        """
        outcomes: Dict[str, Tuple[Any, Optional[BaseException]]] = {}
        if len(tasks) <= 1:
            for node, thunk in tasks.items():
                try:
                    outcomes[node] = (thunk(), None)
                except Exception as exc:
                    outcomes[node] = (None, exc)
            return outcomes
        # Pool threads have no trace context of their own; re-install the
        # submitting thread's so remote-node spans join the request's tree.
        parent = current_context()

        def traced(thunk: Callable[[], Any]) -> Any:
            previous = set_context(parent)
            try:
                return thunk()
            finally:
                set_context(previous)

        pool = self._pool()
        futures = {}
        for node, thunk in tasks.items():
            while True:
                try:
                    futures[node] = pool.submit(traced, thunk)
                    break
                except RuntimeError:
                    # A concurrent add_node retired this pool between our
                    # _pool() call and the submit; take the replacement.
                    # Futures already submitted on the retiring pool still
                    # run to completion (shutdown cancels nothing queued).
                    pool = self._pool()
        for node, future in futures.items():
            try:
                outcomes[node] = (future.result(), None)
            except Exception as exc:
                outcomes[node] = (None, exc)
        return outcomes

    # -- KeyValueStore interface -------------------------------------------------
    #
    # The scalar ops are the batch ops with one key: they inherit the exact
    # same replica routing, mark-down on node failure, re-route to
    # survivors, and PartitionError semantics — a dead remote node degrades
    # a scalar read to its next replica instead of failing the call.

    def get(self, key: bytes) -> Optional[bytes]:
        return self.multi_get([key])[key]

    def put(self, key: bytes, value: bytes) -> None:
        self.multi_put([(key, value)])

    def delete(self, key: bytes) -> bool:
        return key in self.multi_delete([key])

    # -- batch primitives (scatter-gather) ----------------------------------------

    def multi_put(self, items: Iterable[Tuple[bytes, bytes]]) -> None:
        """Group the write set by owning replica; one ``multi_put`` per node.

        A node whose store raises is marked down; keys that reached no
        replica at all are re-routed to the survivors (the ring re-grouping
        excludes downed nodes).  Keys the downed replica missed — whether it
        was already down or failed mid-batch — get a *hint* parked on a
        surviving replica, replayed by :meth:`mark_up`; ``repair_node``
        remains the backstop when the hints themselves are lost.
        """
        pending: Dict[bytes, bytes] = {key: value for key, value in items}
        for key in pending:
            if key.startswith(HINT_PREFIX):
                raise ValueError(
                    f"key {key!r} is in the reserved hinted-handoff keyspace {HINT_PREFIX!r}"
                )
        self._multi_put_core(pending)

    def _multi_put_core(self, pending: Dict[bytes, bytes]) -> None:
        """The replicated write loop (assumes reserved-prefix validation done)."""
        recorded = self._rebalance_writes
        if recorded is not None:
            # A membership change is streaming its handoff: remember the
            # write set so the post-handoff sweep can clean the copies this
            # write leaves on range-losing old owners (see add_node).
            recorded.update(pending)
        hints: Dict[Tuple[str, bytes], bytes] = {}
        while pending:
            if self._hinted_handoff and self._down:
                # Replicas that are *already* marked down miss this write
                # entirely (grouping skips them): park a hint per miss.
                # Guarded on the down-set — with every node healthy this
                # pre-pass can never produce a hint, so the steady-state
                # write path skips the second ring walk per key.
                for key, value in pending.items():
                    if key.startswith(HINT_PREFIX):
                        continue
                    for node in self._replica_walk(key):
                        if node in self._down:
                            hints[(node, key)] = value
            groups = self._group_by_replica(pending)
            tasks = {
                node: (
                    lambda store=self._stores[node], batch=[(key, pending[key]) for key in keys]: (
                        store.multi_put(batch)
                    )
                )
                for node, keys in groups.items()
            }
            outcomes = self._fan_out(tasks)
            acked: Set[bytes] = set()
            any_failure = False
            for node in sorted(groups):
                _result, error = outcomes[node]
                if error is None:
                    acked.update(groups[node])
                elif isinstance(error, PartitionError):
                    raise error
                elif isinstance(error, _NODE_FAILURES):
                    self._mark_failed(node)
                    any_failure = True
                    if self._hinted_handoff:
                        # The node failed mid-batch: every key routed to it
                        # this round missed it.
                        for key in groups[node]:
                            if not key.startswith(HINT_PREFIX):
                                hints[(node, key)] = pending[key]
                else:
                    raise error
            if not any_failure:
                break
            pending = {key: value for key, value in pending.items() if key not in acked}
        if hints:
            self._park_hints(hints)

    def multi_get(self, keys: Iterable[bytes]) -> Dict[bytes, Optional[bytes]]:
        """Group reads by first healthy replica; one ``multi_get`` per node.

        Keys a node reports missing fall back to their next replica (batched
        with that node's other keys on the following round); a node that
        raises is marked down and its keys are re-routed.  A key resolves to
        ``None`` only once every healthy replica has denied it, and raises
        :class:`~repro.exceptions.PartitionError` when no healthy replica
        remains — both matching the scalar read path.  During a rebalance
        the fallback chain extends through the previous topology's owners,
        so a key whose range is still mid-handoff reads from where it lives.
        """
        return self._multi_get_over(list(keys), self._replica_walk, strict=True)

    def _multi_get_over(
        self,
        materialized: List[bytes],
        candidates_of: Callable[[bytes], List[str]],
        strict: bool,
    ) -> Dict[bytes, Optional[bytes]]:
        """The batched read loop over an arbitrary replica-candidate walk.

        ``candidates_of`` returns the ordered, *unfiltered* candidate list
        for a key; downed and detached nodes are filtered each round (so
        mid-loop mark-downs re-route).  ``strict`` raises
        :class:`PartitionError` when a key has no healthy candidate (the
        public read contract); the handoff's old-owner reads pass ``False``
        and let such keys resolve to ``None`` instead of failing the
        whole membership change.
        """
        result: Dict[bytes, Optional[bytes]] = {key: None for key in materialized}
        tried: Dict[bytes, Set[str]] = {key: set() for key in result}
        unresolved: Set[bytes] = set(result)
        while unresolved:
            groups: Dict[str, List[bytes]] = {}
            for key in list(unresolved):
                replicas = [
                    node
                    for node in candidates_of(key)
                    if node not in self._down and node in self._stores
                ]
                if not replicas:
                    if strict:
                        raise PartitionError(f"no healthy replica for key {key!r}")
                    unresolved.discard(key)
                    continue
                untried = [node for node in replicas if node not in tried[key]]
                if not untried:
                    unresolved.discard(key)  # absent on every healthy replica
                    continue
                groups.setdefault(untried[0], []).append(key)
            tasks = {
                node: (lambda store=self._stores[node], keys=list(node_keys): store.multi_get(keys))
                for node, node_keys in groups.items()
            }
            outcomes = self._fan_out(tasks)
            for node in sorted(groups):
                found, error = outcomes[node]
                if error is not None:
                    if isinstance(error, PartitionError):
                        raise error
                    if isinstance(error, _NODE_FAILURES):
                        self._mark_failed(node)
                        continue
                    raise error
                for key in groups[node]:
                    tried[key].add(node)
                    value = found.get(key)
                    if value is not None:
                        result[key] = value
                        unresolved.discard(key)
        return result

    def multi_delete(self, keys: Iterable[bytes]) -> Set[bytes]:
        """Group deletes by owning replica; one ``multi_delete`` per node.

        Unlike ``multi_put``, a node failure here propagates to the caller
        (matching the scalar ``delete``): the mark-down/repair machinery can
        backfill a missed *write*, but it cannot propagate a missed
        tombstone — ``repair_node`` would resurrect the key instead.  The
        caller must know the delete did not fully land so it can retry.
        With the concurrent fan-out several nodes may fail in one batch;
        the lowest-named node's error is the one raised, so the surfaced
        failure does not depend on thread timing.  During a rebalance the
        tombstone lands on both the old and new owner sets, so the old-ring
        read fallback cannot resurrect a deleted key.  Hints parked for the
        deleted keys (a downed replica missed an earlier write) are dropped
        in the same per-node batches, so a later hint replay cannot
        resurrect the value either.
        """
        materialized = set(keys)
        if not materialized:
            return set()
        groups = self._group_by_replica(materialized)
        if self._hinted_handoff and self._down:
            # A hint for (down_target, key) may sit on any healthy replica
            # of key; tombstone the candidate hint keys alongside the data.
            for key in materialized:
                walk = self._replica_walk(key)
                stale = [_hint_key(target, key) for target in walk if target in self._down]
                if stale:
                    for node in walk:
                        if node in groups:
                            groups[node].extend(stale)
        tasks = {
            node: (lambda store=self._stores[node], keys=list(node_keys): store.multi_delete(keys))
            for node, node_keys in groups.items()
        }
        outcomes = self._fan_out(tasks)
        existed: Set[bytes] = set()
        for node in sorted(groups):
            deleted, error = outcomes[node]
            if error is not None:
                raise error
            existed.update(key for key in deleted if key in materialized)
        return existed

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Merge prefix scans across nodes, deduplicating replicated keys.

        A streaming k-way heap merge over the per-node scans (each already
        sorted by key): duplicates of a replicated key arrive adjacently in
        the merged order, so dedup only has to remember the last yielded key
        — O(1) memory however large the keyspace, which is what lets
        :meth:`repair_node` and :meth:`size_bytes` walk a big (possibly
        remote) cluster without materializing it.  Keys in the reserved
        hinted-handoff keyspace are never surfaced.  Replica disagreements
        (a stale replica holding a different value after a partial failure)
        resolve deterministically: the *earliest node in cluster order*
        (``node-0``, ``node-1``, …, the ``_node_names`` construction order
        — not lexicographic) wins.  Note this tie-break differs from the
        scalar/batch ``get`` path, which reads replicas in consistent-hash
        ring order — after a partial failure the two may surface different
        replicas' values until ``repair_node`` (or an overwrite)
        reconverges them; scans just guarantee a deterministic choice, not
        read-your-ring-order.
        """
        yield from self._merged_scan(
            lambda store: store.scan_prefix(prefix), key_of=lambda item: item[0]
        )

    def scan_range(self, prefix: bytes, lo: bytes, hi: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Range-filtered merged scan: each node filters locally (or, for
        remote nodes, server-side), so only ``[lo, hi]`` keys reach the merge."""
        yield from self._merged_scan(
            lambda store: store.scan_range(prefix, lo, hi), key_of=lambda item: item[0]
        )

    def delete_prefix(self, prefix: bytes, batch_size: int = 4096) -> int:
        return self.delete_prefixes([prefix])

    def delete_prefixes(self, prefixes: Iterable[bytes]) -> int:
        """Erase whole keyspaces: one ``delete_prefixes`` per healthy node.

        The bulk-erase analogue of :meth:`multi_delete`, with the same
        loud-failure contract (a missed tombstone cannot be repaired, so a
        node error propagates — lowest-named node first — instead of a
        mark-down).  Every healthy node is asked, not just the current
        owners: replication, rings retired by membership changes, and
        not-yet-swept rebalance copies mean matching keys may sit anywhere.
        Hints parked for keys under the prefixes are erased alongside the
        data (the same ``hint/<target>/<key>`` tombstoning ``multi_delete``
        does, expressed as one hint-prefix per known node), so a later
        replay cannot resurrect erased keys.  Hints parked *on* a downed
        node remain the known resurrection window, exactly as for
        ``multi_delete``.  Returns the summed per-node physical deletion
        count (replica copies counted once per node holding them).
        """
        materialized = [bytes(prefix) for prefix in prefixes]
        if not materialized:
            return 0
        for prefix in materialized:
            if not prefix:
                raise ValueError("refusing to delete-prefix the entire keyspace")
            if prefix.startswith(HINT_PREFIX) or HINT_PREFIX.startswith(prefix):
                raise ValueError(
                    f"prefix {prefix!r} overlaps the reserved hinted-handoff keyspace {HINT_PREFIX!r}"
                )
        expanded = list(materialized)
        if self._hinted_handoff:
            expanded.extend(
                _hint_prefix_for(target) + prefix
                for target in self._node_names
                for prefix in materialized
            )
        names = [name for name in self._node_names if name not in self._down]
        if not names:
            raise PartitionError("no healthy node to delete from")
        tasks = {
            name: (
                lambda store=self._stores[name], targets=list(expanded): (
                    store.delete_prefixes(targets)
                )
            )
            for name in names
        }
        outcomes = self._fan_out(tasks)
        deleted = 0
        for name in sorted(names):
            count, error = outcomes[name]
            if error is not None:
                raise error
            deleted += int(count)
        return deleted

    def _merged_scan(self, make_iterator: Callable[[KeyValueStore], Iterator], key_of) -> Iterator:
        """Deduplicated merge over the healthy nodes, tolerating node outages.

        Each node's iterator is guarded with the same policy as the batch
        ops: a node that raises a :data:`_NODE_FAILURES` error mid-scan is
        marked down and simply stops contributing — the surviving replicas
        in the same merge cover its replicated keys, so ``size_bytes`` /
        ``repair_node`` keep working through a node outage rather than
        failing wholesale.  Like the batch ops, total loss is loud: if no
        healthy node exists up front, or *every* node scanned fails before
        the merge finishes, :class:`~repro.exceptions.PartitionError` is
        raised instead of quietly presenting an empty or truncated keyspace
        (a caller like engine recovery must not mistake a dead cluster for
        an empty one).  Keys whose entire replica set fails while other
        nodes survive are the one case that still slips through silently —
        the merge cannot know about keys it never saw.  Parked hint keys
        (the reserved :data:`HINT_PREFIX` keyspace) are filtered out: they
        are host-placed bookkeeping, not cluster data.  Deterministic
        caller errors propagate unchanged.
        """
        names = [name for name in self._node_names if name not in self._down]
        if not names:
            raise PartitionError("no healthy node to scan")
        failed: List[str] = []

        def guarded(name: str, iterator: Iterator) -> Iterator:
            try:
                yield from iterator
            except PartitionError:
                raise
            except _NODE_FAILURES:
                self._mark_failed(name)
                failed.append(name)

        for item in self._dedup_merge(
            [guarded(name, make_iterator(self._stores[name])) for name in names], key_of
        ):
            if key_of(item).startswith(HINT_PREFIX):
                continue
            yield item
        if len(failed) == len(names):
            raise PartitionError("every node failed mid-scan; the merged result is incomplete")

    @staticmethod
    def _dedup_merge(iterators: List[Iterator], key_of: Callable[[Any], bytes]) -> Iterator:
        """Streaming k-way merge dropping duplicate keys (first iterator wins).

        ``heapq.merge`` is stable: for equal keys the earlier iterator (the
        earlier node in cluster construction order) yields first, and the
        later duplicates are skipped by remembering only the last yielded
        key — O(1) memory.
        """
        last_key: Optional[bytes] = None
        for item in heapq.merge(*iterators, key=key_of):
            key = key_of(item)
            if key == last_key:
                continue
            last_key = key
            yield item

    def size_bytes(self) -> int:
        """Logical size (deduplicated across replicas); streams, never materializes.

        Uses the keys-plus-sizes scan flavour, so over remote nodes this
        ships key names and integer lengths — not every stored value — to
        compute one number.  Parked hints are bookkeeping, not data, and
        are excluded.
        """
        return sum(
            size
            for _key, size in self._merged_scan(
                lambda store: store.scan_key_sizes(b""), key_of=lambda item: item[0]
            )
        )

    def physical_size_bytes(self) -> int:
        """Raw size including replication overhead (and any parked hints)."""
        return sum(store.size_bytes() for store in self._stores.values())

    def _merged_keys(self, prefix: bytes) -> Iterator[bytes]:
        """Deduplicated key stream across healthy nodes — no value traffic.

        The keys-only analogue of :meth:`scan_prefix`: over remote nodes
        this pulls ``keys_only`` scan pages, so membership walks do not
        drag every value across the wire just to discard it.
        """
        yield from self._merged_scan(
            lambda store: store.scan_keys(prefix), key_of=lambda key: key
        )

    def repair_node(self, name: str, batch_size: int = 256) -> int:
        """Copy any keys a recovered node is missing from its peers; returns count.

        Streams the deduplicated *key* space (no values — see
        :meth:`_merged_keys`) and works in bounded batches: for every
        ``batch_size`` keys the ring assigns to the recovering node, one
        ``multi_get`` asks the node what it already holds, and only the
        confirmed-missing keys have their values fetched from the healthy
        replicas (one batched ``multi_get``) and backfilled (one
        ``multi_put``).  Repair traffic is therefore proportional to what
        the node actually lost, with O(batch) memory — not a full keyspace
        materialization or a value copy of everything it already holds.
        The node may still be marked down while it is repaired (its store
        just has to be reachable); mark it up before or after, reads only
        return to it once it is both up and healed.  With hinted handoff
        on, :meth:`mark_up` replays the down-window writes first, so this
        is the backstop for lost hints and cold disks, not the routine
        heal path.
        """
        if name not in self._stores:
            raise ValueError(f"unknown node '{name}'")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        target = self._stores[name]

        def backfill(batch: List[bytes]) -> int:
            held = target.multi_get(batch)
            missing = [key for key in batch if held.get(key) is None]
            if not missing:
                return 0
            values = self.multi_get(missing)
            recovered = [(key, values[key]) for key in missing if values[key] is not None]
            if recovered:
                target.multi_put(recovered)
            return len(recovered)

        repaired = 0
        batch: List[bytes] = []
        for key in self._merged_keys(b""):
            if name not in self._ring.replicas(key, self._replication_factor):
                continue
            batch.append(key)
            if len(batch) >= batch_size:
                repaired += backfill(batch)
                batch = []
        if batch:
            repaired += backfill(batch)
        return repaired

    def close(self) -> None:
        with self._executor_lock:
            executor, self._executor = self._executor, None
            self._executor_workers = 0
        if executor is not None:
            # Drain outside the lock: waiting on in-flight fan-out futures
            # while holding _executor_lock would deadlock any worker that
            # needs _pool() (and wedges concurrent close() callers).
            executor.shutdown(wait=True)
        for store in self._stores.values():
            store.close()
