"""A replicated storage cluster built from per-node stores and the token ring.

This is the "distributed" half of the Cassandra substitution: a
:class:`StorageCluster` owns one :class:`~repro.storage.kv.KeyValueStore`
per virtual node, places every key with consistent hashing, writes to all
replicas, and reads from the first healthy one.  Nodes can be marked down to
exercise replica failover in tests.

The cluster itself implements :class:`~repro.storage.kv.KeyValueStore`, so
the server engine does not care whether it talks to a single in-memory store
or a replicated cluster.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.exceptions import PartitionError
from repro.storage.kv import KeyValueStore
from repro.storage.memory import MemoryStore
from repro.storage.partitioner import ConsistentHashRing


class StorageCluster(KeyValueStore):
    """N-way replicated key-value store over multiple node-local stores."""

    def __init__(
        self,
        num_nodes: int = 3,
        replication_factor: int = 2,
        store_factory: Optional[Callable[[str], KeyValueStore]] = None,
        virtual_tokens: int = 64,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("the cluster needs at least one node")
        if replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        self._replication_factor = min(replication_factor, num_nodes)
        factory = store_factory or (lambda _name: MemoryStore())
        self._node_names = [f"node-{index}" for index in range(num_nodes)]
        self._stores: Dict[str, KeyValueStore] = {name: factory(name) for name in self._node_names}
        self._down: Set[str] = set()
        self._ring = ConsistentHashRing(self._node_names, virtual_tokens=virtual_tokens)

    # -- cluster management ---------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        return list(self._node_names)

    @property
    def replication_factor(self) -> int:
        return self._replication_factor

    def node_store(self, name: str) -> KeyValueStore:
        """Direct access to one node's local store (tests and inspection)."""
        return self._stores[name]

    def mark_down(self, name: str) -> None:
        """Simulate a node failure."""
        if name not in self._stores:
            raise ValueError(f"unknown node '{name}'")
        self._down.add(name)

    def mark_up(self, name: str) -> None:
        """Bring a failed node back (it may hold stale data until repaired)."""
        self._down.discard(name)

    def healthy_replicas(self, key: bytes) -> List[str]:
        return [node for node in self._ring.replicas(key, self._replication_factor) if node not in self._down]

    # -- KeyValueStore interface -------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        replicas = self.healthy_replicas(key)
        if not replicas:
            raise PartitionError(f"no healthy replica for key {key!r}")
        for node in replicas:
            value = self._stores[node].get(key)
            if value is not None:
                return value
        return None

    def put(self, key: bytes, value: bytes) -> None:
        replicas = self.healthy_replicas(key)
        if not replicas:
            raise PartitionError(f"no healthy replica for key {key!r}")
        for node in replicas:
            self._stores[node].put(key, value)

    def delete(self, key: bytes) -> bool:
        replicas = self.healthy_replicas(key)
        if not replicas:
            raise PartitionError(f"no healthy replica for key {key!r}")
        existed = False
        for node in replicas:
            existed = self._stores[node].delete(key) or existed
        return existed

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Merge prefix scans across nodes, deduplicating replicated keys."""
        seen: Set[bytes] = set()
        merged: List[Tuple[bytes, bytes]] = []
        for name, store in self._stores.items():
            if name in self._down:
                continue
            for key, value in store.scan_prefix(prefix):
                if key not in seen:
                    seen.add(key)
                    merged.append((key, value))
        merged.sort(key=lambda item: item[0])
        return iter(merged)

    def size_bytes(self) -> int:
        """Logical size (deduplicated across replicas)."""
        return sum(len(key) + len(value) for key, value in self.scan_prefix(b""))

    def physical_size_bytes(self) -> int:
        """Raw size including replication overhead."""
        return sum(store.size_bytes() for store in self._stores.values())

    def repair_node(self, name: str) -> int:
        """Copy any keys a recovered node is missing from its peers; returns count."""
        if name not in self._stores:
            raise ValueError(f"unknown node '{name}'")
        repaired = 0
        target = self._stores[name]
        for key, value in self.scan_prefix(b""):
            if name in self._ring.replicas(key, self._replication_factor) and target.get(key) is None:
                target.put(key, value)
                repaired += 1
        return repaired

    def close(self) -> None:
        for store in self._stores.values():
            store.close()
