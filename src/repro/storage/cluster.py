"""A replicated storage cluster built from per-node stores and the token ring.

This is the "distributed" half of the Cassandra substitution: a
:class:`StorageCluster` owns one :class:`~repro.storage.kv.KeyValueStore`
per virtual node, places every key with consistent hashing, writes to all
replicas, and reads from the first healthy one.  Nodes can be marked down to
exercise replica failover in tests.

The cluster itself implements :class:`~repro.storage.kv.KeyValueStore`, so
the server engine does not care whether it talks to a single in-memory store
or a replicated cluster.  The nodes themselves are pluggable through
``store_factory``: in-process :class:`~repro.storage.memory.MemoryStore`
nodes for tests, or :class:`~repro.storage.remote.RemoteKeyValueStore`
clients dialing :class:`~repro.storage.node.StorageNodeServer` processes —
then every per-node batch below is one real wire round trip and
replication crosses sockets (socket failures surface as
:class:`~repro.exceptions.StorageError` and feed the same mark-down /
re-route / repair machinery).

Batch operations scatter-gather: ``multi_put``/``multi_get``/``multi_delete``
group the keys by owning replica via the consistent-hash ring and issue one
batched call per healthy node, so a write set of n keys over an N-node
cluster costs at most N (typically ``replication_factor``-ish) backend round
trips instead of n·RF.  The per-node calls **fan out concurrently** through
a shared, lazily created :class:`~concurrent.futures.ThreadPoolExecutor`
(remote backends spend their round trip waiting on the network, so the
fan-out latency is the slowest node, not the sum); outcomes are gathered
and then applied in deterministic node order, so failure handling behaves
identically to the former sequential loop.  A node whose local store raises
mid-``multi_put``/``multi_get`` is marked down and its share of the batch
is re-routed to the surviving replicas — the same mark-down state that
``mark_up`` + ``repair_node`` later heal; ``multi_delete`` instead
propagates node errors (deterministically: the lowest-named failing node's
error), because a missed tombstone cannot be repaired after the fact.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import PartitionError, StorageError
from repro.storage.kv import KeyValueStore
from repro.storage.memory import MemoryStore
from repro.storage.partitioner import ConsistentHashRing

#: Exceptions treated as a node outage by the scatter-gather batch ops.
#: Deterministic caller errors (bad key/value types, logic bugs) propagate
#: unchanged instead of marking nodes down — a TypeError is not an outage.
_NODE_FAILURES = (OSError, StorageError)


class StorageCluster(KeyValueStore):
    """N-way replicated key-value store over multiple node-local stores."""

    def __init__(
        self,
        num_nodes: int = 3,
        replication_factor: int = 2,
        store_factory: Optional[Callable[[str], KeyValueStore]] = None,
        virtual_tokens: int = 64,
        max_fanout_workers: int = 8,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("the cluster needs at least one node")
        if replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        if max_fanout_workers <= 0:
            raise ValueError("max_fanout_workers must be positive")
        self._replication_factor = min(replication_factor, num_nodes)
        factory = store_factory or (lambda _name: MemoryStore())
        self._node_names = [f"node-{index}" for index in range(num_nodes)]
        self._stores: Dict[str, KeyValueStore] = {name: factory(name) for name in self._node_names}
        self._down: Set[str] = set()
        self._ring = ConsistentHashRing(self._node_names, virtual_tokens=virtual_tokens)
        self._max_fanout_workers = min(max_fanout_workers, num_nodes)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()

    # -- cluster management ---------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        return list(self._node_names)

    @property
    def replication_factor(self) -> int:
        return self._replication_factor

    def node_store(self, name: str) -> KeyValueStore:
        """Direct access to one node's local store (tests and inspection)."""
        return self._stores[name]

    def mark_down(self, name: str) -> None:
        """Simulate a node failure."""
        if name not in self._stores:
            raise ValueError(f"unknown node '{name}'")
        self._down.add(name)

    def mark_up(self, name: str) -> None:
        """Bring a failed node back (it may hold stale data until repaired)."""
        self._down.discard(name)

    def healthy_replicas(self, key: bytes) -> List[str]:
        return [node for node in self._ring.replicas(key, self._replication_factor) if node not in self._down]

    def _group_by_replica(self, keys: Iterable[bytes]) -> Dict[str, List[bytes]]:
        """Scatter phase: keys grouped by every healthy replica that owns them.

        Raises :class:`~repro.exceptions.PartitionError` as soon as any key
        has no healthy replica, matching the scalar ops.
        """
        groups: Dict[str, List[bytes]] = {}
        for key in keys:
            replicas = self.healthy_replicas(key)
            if not replicas:
                raise PartitionError(f"no healthy replica for key {key!r}")
            for node in replicas:
                groups.setdefault(node, []).append(key)
        return groups

    # -- concurrent per-node fan-out -----------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        """The shared fan-out executor (created on first multi-node batch)."""
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_fanout_workers, thread_name_prefix="tc-cluster"
                )
            return self._executor

    def _fan_out(
        self, tasks: Dict[str, Callable[[], Any]]
    ) -> Dict[str, Tuple[Any, Optional[BaseException]]]:
        """Run one thunk per node concurrently; gather ``(result, error)`` pairs.

        Nothing is raised and no cluster state is mutated here — callers
        inspect the outcomes in sorted node order, so mark-downs and error
        propagation stay deterministic however the threads interleave.  A
        single-node batch runs inline (no pool hop for the common
        replication-factor-1 corner and tiny clusters).
        """
        outcomes: Dict[str, Tuple[Any, Optional[BaseException]]] = {}
        if len(tasks) <= 1:
            for node, thunk in tasks.items():
                try:
                    outcomes[node] = (thunk(), None)
                except Exception as exc:
                    outcomes[node] = (None, exc)
            return outcomes
        pool = self._pool()
        futures = {node: pool.submit(thunk) for node, thunk in tasks.items()}
        for node, future in futures.items():
            try:
                outcomes[node] = (future.result(), None)
            except Exception as exc:
                outcomes[node] = (None, exc)
        return outcomes

    # -- KeyValueStore interface -------------------------------------------------
    #
    # The scalar ops are the batch ops with one key: they inherit the exact
    # same replica routing, mark-down on node failure, re-route to
    # survivors, and PartitionError semantics — a dead remote node degrades
    # a scalar read to its next replica instead of failing the call.

    def get(self, key: bytes) -> Optional[bytes]:
        return self.multi_get([key])[key]

    def put(self, key: bytes, value: bytes) -> None:
        self.multi_put([(key, value)])

    def delete(self, key: bytes) -> bool:
        return key in self.multi_delete([key])

    # -- batch primitives (scatter-gather) ----------------------------------------

    def multi_put(self, items: Iterable[Tuple[bytes, bytes]]) -> None:
        """Group the write set by owning replica; one ``multi_put`` per node.

        A node whose store raises is marked down; keys that reached no
        replica at all are re-routed to the survivors (the ring re-grouping
        excludes downed nodes).  Keys acked by at least one replica but
        under-replicated because of the failure are left for ``repair_node``,
        matching the state a scalar-write outage leaves behind.
        """
        pending: Dict[bytes, bytes] = {key: value for key, value in items}
        while pending:
            groups = self._group_by_replica(pending)
            tasks = {
                node: (
                    lambda store=self._stores[node], batch=[(key, pending[key]) for key in keys]: (
                        store.multi_put(batch)
                    )
                )
                for node, keys in groups.items()
            }
            outcomes = self._fan_out(tasks)
            acked: Set[bytes] = set()
            any_failure = False
            for node in sorted(groups):
                _result, error = outcomes[node]
                if error is None:
                    acked.update(groups[node])
                elif isinstance(error, PartitionError):
                    raise error
                elif isinstance(error, _NODE_FAILURES):
                    self.mark_down(node)
                    any_failure = True
                else:
                    raise error
            if not any_failure:
                return
            pending = {key: value for key, value in pending.items() if key not in acked}

    def multi_get(self, keys: Iterable[bytes]) -> Dict[bytes, Optional[bytes]]:
        """Group reads by first healthy replica; one ``multi_get`` per node.

        Keys a node reports missing fall back to their next replica (batched
        with that node's other keys on the following round); a node that
        raises is marked down and its keys are re-routed.  A key resolves to
        ``None`` only once every healthy replica has denied it, and raises
        :class:`~repro.exceptions.PartitionError` when no healthy replica
        remains — both matching the scalar read path.
        """
        materialized = list(keys)
        result: Dict[bytes, Optional[bytes]] = {key: None for key in materialized}
        tried: Dict[bytes, Set[str]] = {key: set() for key in result}
        unresolved: Set[bytes] = set(result)
        while unresolved:
            groups: Dict[str, List[bytes]] = {}
            for key in list(unresolved):
                replicas = self.healthy_replicas(key)
                if not replicas:
                    raise PartitionError(f"no healthy replica for key {key!r}")
                untried = [node for node in replicas if node not in tried[key]]
                if not untried:
                    unresolved.discard(key)  # absent on every healthy replica
                    continue
                groups.setdefault(untried[0], []).append(key)
            tasks = {
                node: (lambda store=self._stores[node], keys=list(node_keys): store.multi_get(keys))
                for node, node_keys in groups.items()
            }
            outcomes = self._fan_out(tasks)
            for node in sorted(groups):
                found, error = outcomes[node]
                if error is not None:
                    if isinstance(error, PartitionError):
                        raise error
                    if isinstance(error, _NODE_FAILURES):
                        self.mark_down(node)
                        continue
                    raise error
                for key in groups[node]:
                    tried[key].add(node)
                    value = found.get(key)
                    if value is not None:
                        result[key] = value
                        unresolved.discard(key)
        return result

    def multi_delete(self, keys: Iterable[bytes]) -> Set[bytes]:
        """Group deletes by owning replica; one ``multi_delete`` per node.

        Unlike ``multi_put``, a node failure here propagates to the caller
        (matching the scalar ``delete``): the mark-down/repair machinery can
        backfill a missed *write*, but it cannot propagate a missed
        tombstone — ``repair_node`` would resurrect the key instead.  The
        caller must know the delete did not fully land so it can retry.
        With the concurrent fan-out several nodes may fail in one batch;
        the lowest-named node's error is the one raised, so the surfaced
        failure does not depend on thread timing.
        """
        materialized = set(keys)
        if not materialized:
            return set()
        groups = self._group_by_replica(materialized)
        tasks = {
            node: (lambda store=self._stores[node], keys=list(node_keys): store.multi_delete(keys))
            for node, node_keys in groups.items()
        }
        outcomes = self._fan_out(tasks)
        existed: Set[bytes] = set()
        for node in sorted(groups):
            deleted, error = outcomes[node]
            if error is not None:
                raise error
            existed.update(deleted)
        return existed

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Merge prefix scans across nodes, deduplicating replicated keys.

        A streaming k-way heap merge over the per-node scans (each already
        sorted by key): duplicates of a replicated key arrive adjacently in
        the merged order, so dedup only has to remember the last yielded key
        — O(1) memory however large the keyspace, which is what lets
        :meth:`repair_node` and :meth:`size_bytes` walk a big (possibly
        remote) cluster without materializing it.  Replica disagreements
        (a stale replica holding a different value after a partial failure)
        resolve deterministically: the *earliest node in cluster order*
        (``node-0``, ``node-1``, …, the ``_node_names`` construction order
        — not lexicographic) wins.  Note this tie-break differs from the
        scalar/batch ``get`` path, which reads replicas in consistent-hash
        ring order — after a partial failure the two may surface different
        replicas' values until ``repair_node`` (or an overwrite)
        reconverges them; scans just guarantee a deterministic choice, not
        read-your-ring-order.
        """
        yield from self._merged_scan(
            lambda store: store.scan_prefix(prefix), key_of=lambda item: item[0]
        )

    def _merged_scan(self, make_iterator: Callable[[KeyValueStore], Iterator], key_of) -> Iterator:
        """Deduplicated merge over the healthy nodes, tolerating node outages.

        Each node's iterator is guarded with the same policy as the batch
        ops: a node that raises a :data:`_NODE_FAILURES` error mid-scan is
        marked down and simply stops contributing — the surviving replicas
        in the same merge cover its replicated keys, so ``size_bytes`` /
        ``repair_node`` keep working through a node outage rather than
        failing wholesale.  Like the batch ops, total loss is loud: if no
        healthy node exists up front, or *every* node scanned fails before
        the merge finishes, :class:`~repro.exceptions.PartitionError` is
        raised instead of quietly presenting an empty or truncated keyspace
        (a caller like engine recovery must not mistake a dead cluster for
        an empty one).  Keys whose entire replica set fails while other
        nodes survive are the one case that still slips through silently —
        the merge cannot know about keys it never saw.  Deterministic
        caller errors propagate unchanged.
        """
        names = [name for name in self._node_names if name not in self._down]
        if not names:
            raise PartitionError("no healthy node to scan")
        failed: List[str] = []

        def guarded(name: str, iterator: Iterator) -> Iterator:
            try:
                yield from iterator
            except PartitionError:
                raise
            except _NODE_FAILURES:
                self.mark_down(name)
                failed.append(name)

        yield from self._dedup_merge(
            [guarded(name, make_iterator(self._stores[name])) for name in names], key_of
        )
        if len(failed) == len(names):
            raise PartitionError("every node failed mid-scan; the merged result is incomplete")

    @staticmethod
    def _dedup_merge(iterators: List[Iterator], key_of: Callable[[Any], bytes]) -> Iterator:
        """Streaming k-way merge dropping duplicate keys (first iterator wins).

        ``heapq.merge`` is stable: for equal keys the earlier iterator (the
        earlier node in cluster construction order) yields first, and the
        later duplicates are skipped by remembering only the last yielded
        key — O(1) memory.
        """
        last_key: Optional[bytes] = None
        for item in heapq.merge(*iterators, key=key_of):
            key = key_of(item)
            if key == last_key:
                continue
            last_key = key
            yield item

    def size_bytes(self) -> int:
        """Logical size (deduplicated across replicas); streams, never materializes.

        Uses the keys-plus-sizes scan flavour, so over remote nodes this
        ships key names and integer lengths — not every stored value — to
        compute one number.
        """
        return sum(
            size
            for _key, size in self._merged_scan(
                lambda store: store.scan_key_sizes(b""), key_of=lambda item: item[0]
            )
        )

    def physical_size_bytes(self) -> int:
        """Raw size including replication overhead."""
        return sum(store.size_bytes() for store in self._stores.values())

    def _merged_keys(self, prefix: bytes) -> Iterator[bytes]:
        """Deduplicated key stream across healthy nodes — no value traffic.

        The keys-only analogue of :meth:`scan_prefix`: over remote nodes
        this pulls ``keys_only`` scan pages, so membership walks do not
        drag every value across the wire just to discard it.
        """
        yield from self._merged_scan(
            lambda store: store.scan_keys(prefix), key_of=lambda key: key
        )

    def repair_node(self, name: str, batch_size: int = 256) -> int:
        """Copy any keys a recovered node is missing from its peers; returns count.

        Streams the deduplicated *key* space (no values — see
        :meth:`_merged_keys`) and works in bounded batches: for every
        ``batch_size`` keys the ring assigns to the recovering node, one
        ``multi_get`` asks the node what it already holds, and only the
        confirmed-missing keys have their values fetched from the healthy
        replicas (one batched ``multi_get``) and backfilled (one
        ``multi_put``).  Repair traffic is therefore proportional to what
        the node actually lost, with O(batch) memory — not a full keyspace
        materialization or a value copy of everything it already holds.
        The node may still be marked down while it is repaired (its store
        just has to be reachable); mark it up before or after, reads only
        return to it once it is both up and healed.
        """
        if name not in self._stores:
            raise ValueError(f"unknown node '{name}'")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        target = self._stores[name]

        def backfill(batch: List[bytes]) -> int:
            held = target.multi_get(batch)
            missing = [key for key in batch if held.get(key) is None]
            if not missing:
                return 0
            values = self.multi_get(missing)
            recovered = [(key, values[key]) for key in missing if values[key] is not None]
            if recovered:
                target.multi_put(recovered)
            return len(recovered)

        repaired = 0
        batch: List[bytes] = []
        for key in self._merged_keys(b""):
            if name not in self._ring.replicas(key, self._replication_factor):
                continue
            batch.append(key)
            if len(batch) >= batch_size:
                repaired += backfill(batch)
                batch = []
        if batch:
            repaired += backfill(batch)
        return repaired

    def close(self) -> None:
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
        for store in self._stores.values():
            store.close()
