"""A persistent append-only-log key-value store.

This is the on-disk backend of the Cassandra stand-in: every ``put`` appends
a length-prefixed record to a log file, an in-memory hash index maps keys to
their latest log offset, and ``compact()`` rewrites the log dropping stale
versions and tombstones — a single-level, miniature LSM design that captures
the write path (sequential appends) and read path (index lookup + one random
read) of a log-structured store.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.exceptions import StorageError
from repro.storage.kv import KeyValueStore

_RECORD_HEADER = struct.Struct(">IIB")  # key length, value length, tombstone flag


class AppendLogStore(KeyValueStore):
    """Log-structured persistent store with an in-memory key index."""

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._index: Dict[bytes, Tuple[int, int]] = {}  # key -> (value offset, length)
        self._file = open(self._path, "a+b")
        self._rebuild_index()

    # -- recovery -------------------------------------------------------------

    def _rebuild_index(self) -> None:
        """Replay the log to rebuild the key index after a restart."""
        self._index.clear()
        self._file.seek(0)
        offset = 0
        while True:
            header = self._file.read(_RECORD_HEADER.size)
            if not header:
                break
            if len(header) < _RECORD_HEADER.size:
                # Torn final record (crash mid-write): truncate it away.
                self._file.truncate(offset)
                break
            key_len, value_len, tombstone = _RECORD_HEADER.unpack(header)
            key = self._file.read(key_len)
            value_offset = offset + _RECORD_HEADER.size + key_len
            payload = self._file.read(value_len)
            if len(key) < key_len or len(payload) < value_len:
                self._file.truncate(offset)
                break
            if tombstone:
                self._index.pop(key, None)
            else:
                self._index[key] = (value_offset, value_len)
            offset = value_offset + value_len
        self._file.seek(0, os.SEEK_END)

    # -- KeyValueStore interface -------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        entry = self._index.get(key)
        if entry is None:
            return None
        offset, length = entry
        position = self._file.tell()
        try:
            self._file.seek(offset)
            value = self._file.read(length)
        finally:
            self._file.seek(position)
        if len(value) != length:
            raise StorageError(f"truncated value for key {key!r}")
        return value

    def put(self, key: bytes, value: bytes) -> None:
        self._append(key, value, tombstone=False)
        offset = self._file.tell() - len(value)
        self._index[key] = (offset, len(value))

    def delete(self, key: bytes) -> bool:
        existed = key in self._index
        if existed:
            self._append(key, b"", tombstone=True)
            self._index.pop(key, None)
        return existed

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        for key in sorted(self._index):
            if key.startswith(prefix):
                value = self.get(key)
                if value is not None:
                    yield key, value

    def size_bytes(self) -> int:
        return sum(len(key) + length for key, (_offset, length) in self._index.items())

    def __len__(self) -> int:
        return len(self._index)

    # -- maintenance ----------------------------------------------------------------

    def _append(self, key: bytes, value: bytes, tombstone: bool) -> None:
        record = _RECORD_HEADER.pack(len(key), len(value), int(tombstone)) + key + value
        self._file.seek(0, os.SEEK_END)
        self._file.write(record)
        self._file.flush()

    def compact(self) -> None:
        """Rewrite the log keeping only the live version of each key."""
        compact_path = self._path.with_suffix(self._path.suffix + ".compact")
        live = [(key, self.get(key)) for key in sorted(self._index)]
        with open(compact_path, "wb") as target:
            new_index: Dict[bytes, Tuple[int, int]] = {}
            offset = 0
            for key, value in live:
                assert value is not None
                record = _RECORD_HEADER.pack(len(key), len(value), 0) + key + value
                target.write(record)
                new_index[key] = (offset + _RECORD_HEADER.size + len(key), len(value))
                offset += len(record)
        self._file.close()
        os.replace(compact_path, self._path)
        self._file = open(self._path, "a+b")
        self._index = new_index

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "AppendLogStore":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()
